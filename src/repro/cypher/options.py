"""Structured per-query execution options.

One :class:`QueryOptions` value replaces the accretion of positional
parameters on ``Frappe.query()`` / ``CypherEngine.run()``::

    frappe.query("MATCH (n:function) RETURN n.short_name",
                 options=QueryOptions(timeout=2.0, max_rows=100,
                                      profile=True))

Explicit keyword arguments (``parameters=``, ``timeout=``) win over
the same field inside ``options``, so callers can share one options
value and override per call.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping


@dataclasses.dataclass(frozen=True)
class QueryOptions:
    """Execution options for one Cypher query run.

    timeout
        Wall-clock budget in seconds (None = the engine default).
    max_rows
        Truncate the result to this many rows after execution;
        ``result.stats.truncated`` records that it happened.
    profile
        Collect an operator-level execution profile on
        ``result.profile`` (same effect as a ``PROFILE`` prefix on
        the query text).
    parameters
        Query parameters, ``$name`` -> value.
    use_reachability_rewrite
        Tri-state override of the engine's reachability-rewrite gate
        for this run: ``None`` (default) inherits the engine setting,
        ``True``/``False`` force the var-length BFS rewrite on or off
        (the Section 6.1 ablation knob).
    execution_mode
        Per-run override of the engine's execution mode: ``None``
        (default) inherits the engine setting; ``"auto"`` picks
        batch execution when every clause has a batch kernel,
        ``"batch"`` forces morsel-at-a-time execution (clauses
        without a kernel fall back per clause), ``"rows"`` forces the
        row-at-a-time generator pipeline.
    morsel_size
        Rows per batch in batch execution; ``None`` inherits the
        engine's morsel size (default 1024).
    parallelism
        Worker tasks for the morsel-driven parallel pipeline in batch
        execution: ``None`` inherits the engine setting, ``0`` means
        auto (the serving pool's worker count when one is attached,
        else serial), ``1`` forces serial, ``N > 1`` runs up to N
        morsel tasks concurrently on the shared Executor pool. Output
        rows, row order and PROFILE db-hit counts are identical at
        every setting.
    use_compiled_kernels
        Tri-state override of compiled expression kernels in batch
        execution: ``None`` inherits the engine setting (on), ``False``
        falls back to the interpreted ``evaluate()`` walker — the
        compiled-vs-interpreted ablation knob.
    """

    timeout: float | None = None
    max_rows: int | None = None
    profile: bool = False
    parameters: Mapping[str, Any] | None = None
    use_reachability_rewrite: bool | None = None
    execution_mode: str | None = None
    morsel_size: int | None = None
    parallelism: int | None = None
    use_compiled_kernels: bool | None = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.max_rows is not None and self.max_rows < 0:
            raise ValueError("max_rows must be >= 0")
        if self.execution_mode is not None and \
                self.execution_mode not in ("auto", "batch", "rows"):
            raise ValueError(
                "execution_mode must be 'auto', 'batch' or 'rows'")
        if self.morsel_size is not None and self.morsel_size < 1:
            raise ValueError("morsel_size must be >= 1")
        if self.parallelism is not None and self.parallelism < 0:
            raise ValueError("parallelism must be >= 0")

    @classmethod
    def resolve(cls, options: "QueryOptions | None" = None, *,
                parameters: Mapping[str, Any] | None = None,
                timeout: float | None = None,
                profile: bool | None = None) -> "QueryOptions":
        """The one canonical options value for a query run.

        Every public entry point (``Frappe.query``,
        ``CypherEngine.run``, ``Frappe.query_async``, the HTTP wire)
        funnels its convenience keywords through here, so there is a
        single precedence rule: an explicit keyword wins over the same
        field inside ``options``, and ``options=None`` means defaults.
        """
        merged = options if options is not None else cls()
        overrides: dict[str, Any] = {}
        if parameters is not None:
            overrides["parameters"] = parameters
        if timeout is not None:
            overrides["timeout"] = timeout
        if profile is not None:
            overrides["profile"] = profile
        if overrides:
            merged = dataclasses.replace(merged, **overrides)
        return merged

    # -- wire format (the HTTP tier's request schema) ------------------

    def to_dict(self) -> dict[str, Any]:
        """Non-default fields as a JSON-compatible mapping.

        The inverse of :meth:`from_dict`; the HTTP client sends this
        as the request's ``options`` object.
        """
        payload: dict[str, Any] = {}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value != field.default:
                if field.name == "parameters" and value is not None:
                    value = dict(value)
                payload[field.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QueryOptions":
        """Build options from a wire mapping; unknown keys are errors.

        Raises :class:`ValueError` (never a silent drop) so a client
        typo like ``max_row`` comes back as a structured 400 instead
        of an ignored knob.
        """
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                "unknown query option(s): "
                + ", ".join(sorted(str(key) for key in unknown)))
        return cls(**dict(payload))


#: Default options: no timeout override, no truncation, no profiling.
DEFAULT_OPTIONS = QueryOptions()
