"""Ring-buffer slow-query log.

Queries whose wall time crosses a threshold (or that hit their timeout
budget) are remembered, newest-evicts-oldest, so an operator can ask a
long-lived Frappé instance "what has been slow lately?" without any
external infrastructure.

Appends are thread-safe: the serving layer records from many worker
threads, and the entry sequence number is a read-modify-write that
must pair atomically with its ring-buffer append.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import deque

#: Queries at or above this many seconds are logged by default.
DEFAULT_THRESHOLD_SECONDS = 0.25


@dataclasses.dataclass(frozen=True)
class SlowQueryEntry:
    """One logged query execution."""

    query: str
    elapsed_seconds: float
    rows: int | None
    timed_out: bool
    #: monotonically increasing across the log's lifetime, so callers
    #: can tell how many slow queries scrolled out of the ring
    sequence: int
    #: wall-clock time the entry was recorded (``time.time()``)
    at: float

    def __str__(self) -> str:
        outcome = "TIMEOUT" if self.timed_out else \
            f"{self.rows if self.rows is not None else '?'} rows"
        return (f"[{self.elapsed_seconds * 1000:8.1f} ms] "
                f"{outcome:>12}  {self.query}")


class SlowQueryLog:
    """Bounded log of slow query executions."""

    def __init__(self, capacity: int = 128,
                 threshold_seconds: float = DEFAULT_THRESHOLD_SECONDS,
                 ) -> None:
        if capacity < 1:
            raise ValueError("slow-query log capacity must be >= 1")
        if threshold_seconds < 0:
            raise ValueError("slow-query threshold must be >= 0")
        self.capacity = capacity
        self.threshold_seconds = threshold_seconds
        self._entries: deque[SlowQueryEntry] = deque(maxlen=capacity)
        self._sequence = 0
        self._lock = threading.Lock()

    def observe(self, query: str, elapsed_seconds: float,
                rows: int | None = None,
                timed_out: bool = False) -> bool:
        """Log the execution if it qualifies; returns True if logged."""
        if not timed_out and elapsed_seconds < self.threshold_seconds:
            return False
        with self._lock:
            self._entries.append(SlowQueryEntry(
                query=query, elapsed_seconds=elapsed_seconds, rows=rows,
                timed_out=timed_out, sequence=self._sequence,
                at=time.time()))
            self._sequence += 1
        return True

    def entries(self) -> list[SlowQueryEntry]:
        """Logged entries, oldest first."""
        with self._lock:
            return list(self._entries)

    @property
    def total_observed(self) -> int:
        """Slow queries ever logged, including evicted ones."""
        return self._sequence

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (f"SlowQueryLog({len(self._entries)}/{self.capacity} "
                f"entries, threshold={self.threshold_seconds}s)")
