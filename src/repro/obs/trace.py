"""Nestable trace spans.

A :class:`Tracer` records a tree of timed spans per top-level
operation (one root span per query, with child spans for parse /
execute / store phases as components opt in). Finished root spans are
kept in a bounded ring so a long-lived Frappé instance never grows
without bound.

The open-span stack is thread-local: concurrent queries on the
serving layer's worker threads each build their own span tree instead
of nesting into each other. The finished ring is shared (appends go
through the GIL-atomic ``deque.append``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator


class Span:
    """One timed operation; children nest inside the parent's window."""

    __slots__ = ("name", "attributes", "children", "start_ns", "end_ns")

    def __init__(self, name: str, attributes: dict[str, Any]) -> None:
        self.name = name
        self.attributes = attributes
        self.children: list[Span] = []
        self.start_ns = time.perf_counter_ns()
        self.end_ns: int | None = None

    @property
    def finished(self) -> bool:
        return self.end_ns is not None

    @property
    def duration_seconds(self) -> float:
        end = self.end_ns if self.end_ns is not None \
            else time.perf_counter_ns()
        return (end - self.start_ns) / 1e9

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal, self first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        state = f"{self.duration_seconds * 1000:.2f}ms" \
            if self.finished else "open"
        return f"Span({self.name}, {state}, {len(self.children)} children)"


class Tracer:
    """Builds span trees via a context-manager API.

    ::

        with tracer.span("cypher.query", query=text):
            with tracer.span("parse"):
                ...
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self._local = threading.local()
        self._finished: deque[Span] = deque(maxlen=capacity)

    @property
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        stack = self._stack
        span = Span(name, attributes)
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        try:
            yield span
        finally:
            span.end_ns = time.perf_counter_ns()
            stack.pop()
            if not stack:
                self._finished.append(span)

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any (on the calling thread)."""
        stack = self._stack
        return stack[-1] if stack else None

    def recent(self) -> list[Span]:
        """Finished root spans, oldest first."""
        return list(self._finished)

    def clear(self) -> None:
        self._finished.clear()
