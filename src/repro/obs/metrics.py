"""Metrics registry: counters, gauges and histograms.

One :class:`MetricsRegistry` spans the whole read path of a Frappé
instance: the Cypher engine counts queries and timeouts, the page
cache counts hits/misses/evictions, the store reader counts record
faults and object-cache hits, the indexes count lookups, and the
traversal framework counts expansions. A :class:`MetricsSnapshot`
freezes all of it at once, which is what the benchmark harness reads
to print per-row cache hit ratios (paper Table 5's cold/warm split).

Instruments are thread-safe: the serving layer
(:mod:`repro.server`) increments them from many worker threads at
once, so every read-modify-write (``inc``, ``observe``) happens under
a per-instrument lock, and the registry's get-or-create paths are
locked too. Hot paths still pre-bind :class:`Counter` objects and call
``inc()`` — one lock acquire plus one attribute add.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Iterator, Mapping

#: Default histogram bucket upper bounds, in the unit observed
#: (seconds for query latencies): sub-ms through tens of seconds.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0)


class Counter:
    """A monotonically increasing count (reset only via the registry).

    ``inc`` is a read-modify-write, which CPython does not make atomic
    (``+=`` is a LOAD/ADD/STORE triple that threads can interleave),
    so it runs under a per-counter lock.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that can go up and down (e.g. resident pages)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


@dataclasses.dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable view of a histogram's accumulated distribution."""

    count: int
    total: float
    min: float | None
    max: float | None
    #: bucket upper bound -> number of observations at or under it
    #: (cumulative, Prometheus-style); the implicit +inf bucket is
    #: ``count``.
    buckets: tuple[tuple[float, int], ...]

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None


class Histogram:
    """Fixed-bucket distribution of observed values."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "min", "max", "_lock")

    def __init__(self, name: str,
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be ascending")
        self.name = name
        self.bounds = tuple(buckets)
        self.bucket_counts = [0] * len(self.bounds)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[index] += 1

    def reset(self) -> None:
        with self._lock:
            self.bucket_counts = [0] * len(self.bounds)
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            return HistogramSnapshot(
                count=self.count, total=self.total, min=self.min,
                max=self.max,
                buckets=tuple(zip(self.bounds, self.bucket_counts)))

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count})"


@dataclasses.dataclass(frozen=True)
class MetricsSnapshot:
    """A point-in-time copy of every metric in one registry."""

    counters: Mapping[str, int]
    gauges: Mapping[str, float]
    histograms: Mapping[str, HistogramSnapshot]

    def counter(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self.gauges.get(name, default)

    def histogram(self, name: str) -> HistogramSnapshot | None:
        return self.histograms.get(name)

    def ratio(self, hits_name: str, misses_name: str) -> float:
        """hits / (hits + misses); 0.0 when there was no traffic."""
        hits = self.counters.get(hits_name, 0)
        misses = self.counters.get(misses_name, 0)
        total = hits + misses
        return hits / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        """Flat name -> value mapping (histograms become dicts)."""
        merged: dict[str, Any] = dict(self.counters)
        merged.update(self.gauges)
        for name, hist in self.histograms.items():
            merged[name] = {"count": hist.count, "total": hist.total,
                            "min": hist.min, "max": hist.max,
                            "mean": hist.mean}
        return merged

    def __contains__(self, name: object) -> bool:
        return (name in self.counters or name in self.gauges
                or name in self.histograms)

    def __getitem__(self, name: str) -> Any:
        if name in self.counters:
            return self.counters[name]
        if name in self.gauges:
            return self.gauges[name]
        if name in self.histograms:
            return self.histograms[name]
        raise KeyError(name)

    def __iter__(self) -> Iterator[str]:
        yield from self.counters
        yield from self.gauges
        yield from self.histograms


class MetricsRegistry:
    """Named counters/gauges/histograms with get-or-create semantics.

    Component code binds its instruments once (``counter(name)``) and
    increments the returned object on the hot path; accessor names are
    stable so :meth:`snapshot` keys can be documented and asserted on.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.get(name)
                if instrument is None:
                    self._check_free(name, self._counters)
                    instrument = Counter(name)
                    self._counters[name] = instrument
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.get(name)
                if instrument is None:
                    self._check_free(name, self._gauges)
                    instrument = Gauge(name)
                    self._gauges[name] = instrument
        return instrument

    def histogram(self, name: str,
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                  ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.get(name)
                if instrument is None:
                    self._check_free(name, self._histograms)
                    instrument = Histogram(name, buckets)
                    self._histograms[name] = instrument
        return instrument

    def _check_free(self, name: str, own: Mapping[str, Any]) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ValueError(
                    f"metric {name!r} already registered with a "
                    "different type")

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters={name: c.value
                      for name, c in sorted(self._counters.items())},
            gauges={name: g.value
                    for name, g in sorted(self._gauges.items())},
            histograms={name: h.snapshot()
                        for name, h in sorted(self._histograms.items())})

    def reset(self) -> None:
        """Zero every instrument (the cold-run measurement lever)."""
        for counter in self._counters.values():
            counter.reset()
        for gauge in self._gauges.values():
            gauge.reset()
        for histogram in self._histograms.values():
            histogram.reset()

    def __repr__(self) -> str:
        return (f"MetricsRegistry({len(self._counters)} counters, "
                f"{len(self._gauges)} gauges, "
                f"{len(self._histograms)} histograms)")
