"""Observability for the query engine and storage stack.

One :class:`Observability` bundle per Frappé instance ties together:

- a :class:`~repro.obs.metrics.MetricsRegistry` every component on the
  read path (page cache, store reader, indexes, traversals, Cypher
  engine) emits counters into,
- a :class:`~repro.obs.slowlog.SlowQueryLog` ring buffer,
- a :class:`~repro.obs.trace.Tracer` for nestable spans, and
- :class:`~repro.obs.profile.QueryProfiler`, which powers
  ``PROFILE <query>`` / ``Result.profile``.
"""

from __future__ import annotations

from repro.obs.metrics import (Counter, Gauge, Histogram,
                               HistogramSnapshot, MetricsRegistry,
                               MetricsSnapshot)
from repro.obs.profile import (OperatorStats, QueryProfiler,
                               merge_operator_stats)
from repro.obs.slowlog import (DEFAULT_THRESHOLD_SECONDS, SlowQueryEntry,
                               SlowQueryLog)
from repro.obs.trace import Span, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "HistogramSnapshot",
    "MetricsRegistry", "MetricsSnapshot", "Observability",
    "OperatorStats", "QueryProfiler", "SlowQueryEntry", "SlowQueryLog",
    "merge_operator_stats",
    "Span", "Tracer", "DEFAULT_THRESHOLD_SECONDS",
]


class Observability:
    """The per-instance bundle of registry + slow log + tracer."""

    def __init__(self, registry: MetricsRegistry | None = None,
                 slow_log: SlowQueryLog | None = None,
                 tracer: Tracer | None = None) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.slow_log = slow_log if slow_log is not None \
            else SlowQueryLog()
        self.tracer = tracer if tracer is not None else Tracer()

    def record_query(self, query: str, elapsed_seconds: float,
                     rows: int | None = None,
                     timed_out: bool = False) -> None:
        """Book one query execution into counters, histogram and log."""
        self.registry.counter("query.count").inc()
        if timed_out:
            self.registry.counter("query.timeouts").inc()
        self.registry.histogram("query.seconds").observe(elapsed_seconds)
        if self.slow_log.observe(query, elapsed_seconds, rows,
                                 timed_out):
            self.registry.counter("query.slow").inc()
