"""Operator-level query profiler (the engine behind ``PROFILE``).

The Cypher executor is a pipeline of generators, so an operator's cost
is smeared across every ``next()`` call that pulls rows through it. The
profiler measures *self time* (exclusive wall time) with a clock
stack: entering an operator's frame pauses the frame below it, so time
spent deeper in the pipeline — or inside a var-length expansion's DFS —
is attributed to the operator doing the work, not to whoever happened
to be draining it.

``db_hits`` follow the same stack: a record/property/adjacency access
is charged to whichever operator frame is open at that moment.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterable, Iterator


class OperatorStats:
    """Mutable per-operator accumulator; converts to PlanDescription."""

    __slots__ = ("name", "args", "rows", "batches", "db_hits",
                 "time_ns", "estimated_rows", "children",
                 "_child_index")

    def __init__(self, name: str, args: dict[str, Any]) -> None:
        self.name = name
        self.args = args
        self.rows = 0
        #: morsels produced under batch execution (0 in row mode)
        self.batches = 0
        self.db_hits = 0
        self.time_ns = 0
        #: planner's cardinality estimate, when it costed this operator
        self.estimated_rows: int | None = None
        self.children: list[OperatorStats] = []
        self._child_index: dict[Any, OperatorStats] = {}

    @property
    def time_ms(self) -> float:
        return self.time_ns / 1e6

    def __repr__(self) -> str:
        return (f"OperatorStats({self.name}, rows={self.rows}, "
                f"db_hits={self.db_hits}, {self.time_ms:.2f}ms)")


def merge_operator_stats(target: OperatorStats,
                         source: OperatorStats) -> None:
    """Fold *source*'s subtree into *target* (matching children by
    operator key, recursively).

    This is how the parallel batch driver keeps PROFILE output
    byte-identical to serial execution: each worker task profiles into
    its own tree with the *same operator keys* the serial pipeline
    uses, and the driver merges the task trees back in task order.
    Counters (rows, batches, db_hits, time_ns) sum; name/args/estimate
    follow the first-visit-wins rule :meth:`QueryProfiler.operator`
    already applies within one tree. Per-operator totals are therefore
    schedule-independent: every task's same-keyed stats land in one
    node regardless of which worker ran which morsel.
    """
    target.rows += source.rows
    target.batches += source.batches
    target.db_hits += source.db_hits
    target.time_ns += source.time_ns
    if target.estimated_rows is None:
        target.estimated_rows = source.estimated_rows
    for key, child in source._child_index.items():
        mine = target._child_index.get(key)
        if mine is None:
            mine = OperatorStats(child.name, dict(child.args))
            mine.estimated_rows = child.estimated_rows
            target._child_index[key] = mine
            target.children.append(mine)
        merge_operator_stats(mine, child)


class QueryProfiler:
    """Builds an annotated operator tree while a query executes."""

    def __init__(self) -> None:
        self.root = OperatorStats("Query", {})
        # each frame is [operator, started_ns]; entering a child frame
        # flushes the parent's elapsed time and pauses its clock
        self._stack: list[list[Any]] = []

    # -- tree construction ------------------------------------------------------

    def operator(self, parent: OperatorStats | None, key: Any,
                 name: str, estimated: float | None = None,
                 **args: Any) -> OperatorStats:
        """Get or create a child operator of ``parent`` (root if None).

        ``key`` identifies the operator across repeated visits (a
        pattern matched once per incoming row still profiles as one
        operator); the first visit's ``name``/``args``/``estimated``
        win. ``estimated`` is the planner's cardinality estimate, shown
        next to the measured rows so misestimates are visible.
        """
        parent = parent if parent is not None else self.root
        child = parent._child_index.get(key)
        if child is None:
            child = OperatorStats(
                name, {k: v for k, v in args.items() if v is not None})
            if estimated is not None:
                child.estimated_rows = int(estimated)
            parent._child_index[key] = child
            parent.children.append(child)
        return child

    # -- accounting ------------------------------------------------------------

    def hit(self, count: int = 1) -> None:
        """Charge db-hits to the operator whose frame is open."""
        target = self._stack[-1][0] if self._stack else self.root
        target.db_hits += count

    def _enter(self, operator: OperatorStats) -> None:
        now = time.perf_counter_ns()
        if self._stack:
            frame = self._stack[-1]
            frame[0].time_ns += now - frame[1]
        self._stack.append([operator, now])

    def _exit(self) -> None:
        now = time.perf_counter_ns()
        operator, started = self._stack.pop()
        operator.time_ns += now - started
        if self._stack:
            self._stack[-1][1] = now

    @contextmanager
    def timed(self, operator: OperatorStats) -> Iterator[OperatorStats]:
        """Attribute the body's (self) time and db-hits to operator."""
        self._enter(operator)
        try:
            yield operator
        finally:
            self._exit()

    def iterate(self, operator: OperatorStats, iterable: Iterable[Any],
                hits_per_row: int = 0) -> Iterator[Any]:
        """Wrap a pipeline stage: time each pull, count each row."""
        iterator = iter(iterable)
        while True:
            self._enter(operator)
            try:
                try:
                    item = next(iterator)
                except StopIteration:
                    return
            finally:
                self._exit()
            operator.rows += 1
            if hits_per_row:
                operator.db_hits += hits_per_row
            yield item

    def iterate_batches(self, operator: OperatorStats,
                        iterable: Iterable[Any]) -> Iterator[Any]:
        """Wrap a batch pipeline stage: time each pull, count the
        rows inside each morsel and the morsels themselves."""
        iterator = iter(iterable)
        while True:
            self._enter(operator)
            try:
                try:
                    batch = next(iterator)
                except StopIteration:
                    return
            finally:
                self._exit()
            operator.rows += batch.count
            operator.batches += 1
            yield batch

    # -- output ----------------------------------------------------------------

    def finish(self, rows: int, elapsed_seconds: float) -> None:
        """Stamp the root with end-to-end figures before to_plan()."""
        self.root.rows = rows
        self.root.time_ns = int(elapsed_seconds * 1e9)

    def to_plan(self) -> Any:
        """Convert the accumulated tree to a PlanDescription."""
        # imported lazily: repro.cypher.plan is import-free of obs, but
        # repro.cypher's package __init__ pulls in the engine, which
        # imports this package
        from repro.cypher.plan import PlanDescription

        def convert(op: OperatorStats) -> PlanDescription:
            return PlanDescription(
                name=op.name, args=dict(op.args),
                children=tuple(convert(child) for child in op.children),
                estimated_rows=op.estimated_rows,
                rows=op.rows, db_hits=op.db_hits, time_ms=op.time_ms,
                batches=op.batches or None)

        return convert(self.root)
