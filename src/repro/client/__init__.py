"""The blocking HTTP client for a ``frappe serve --http`` tier.

:class:`FrappeClient` speaks the versioned wire protocol
(:mod:`repro.server.wire`) over one keep-alive connection and gives
back the same objects the in-process API does: ``query()`` returns a
:class:`~repro.cypher.Result` (rebuilt from the canonical
ResultPayload), and server-side failures raise the same exception
classes — :class:`~repro.errors.AdmissionError` for a 429,
:class:`~repro.errors.QueryTimeoutError` for a 504,
:class:`~repro.errors.ServerClosedError` for a 503 — so code written
against ``Frappe.query`` ports to the network tier by swapping the
object it calls.

Quick start::

    from repro.client import FrappeClient

    with FrappeClient(port=8127) as client:
        result = client.query(
            "MATCH (n:function) RETURN count(*)")
        print(result.value())
"""

from repro.client.client import FrappeClient

__all__ = ["FrappeClient"]
