"""Blocking wire-protocol client (stdlib ``http.client`` only)."""

from __future__ import annotations

import http.client
import json
from typing import Any, Iterator, Mapping

from repro.cypher.options import QueryOptions
from repro.cypher.result import Result, decode_value
from repro.errors import ServerError
from repro.server import wire

DEFAULT_PORT = 8127


class FrappeClient:
    """One connection to an HTTP serving tier.

    Parameters
    ----------
    host, port:
        Where ``frappe serve --http`` listens.
    client_id:
        The fair-share quota identity sent as ``X-Frappe-Client``;
        every request from this object is charged to it.
    timeout:
        Socket-level timeout in seconds for connect/read. This bounds
        a *hung* server; a slow query should instead carry its own
        ``QueryOptions.timeout``, which the server enforces and
        reports as a structured 504.

    Not thread-safe (one underlying connection); give each thread its
    own client — connections are cheap and keep-alive.
    """

    def __init__(self, host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT, *,
                 client_id: str = "anonymous",
                 timeout: float | None = 60.0) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # -- plumbing ------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def _request(self, method: str, path: str,
                 body: bytes | None = None
                 ) -> http.client.HTTPResponse:
        headers = {"X-Frappe-Client": self.client_id}
        if body is not None:
            headers["Content-Type"] = "application/json"
        try:
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            return conn.getresponse()
        except (http.client.RemoteDisconnected, BrokenPipeError,
                ConnectionResetError):
            # a keep-alive connection the server aged out; one
            # reconnect retry on a fresh socket
            self.close()
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            return conn.getresponse()

    @staticmethod
    def _raise_for_status(response: http.client.HTTPResponse,
                          data: bytes) -> None:
        if response.status == 200:
            return
        try:
            payload = json.loads(data)
            error = payload["error"]
        except (json.JSONDecodeError, KeyError, TypeError):
            raise ServerError(
                f"HTTP {response.status}: "
                f"{data[:200]!r}") from None
        raise wire.exception_from_dict(error)

    # -- the public surface --------------------------------------------

    def query(self, text: str,
              parameters: Mapping[str, Any] | None = None, *,
              timeout: float | None = None,
              options: QueryOptions | None = None) -> Result:
        """Run Cypher on the server; returns a materialized
        :class:`~repro.cypher.Result` (same precedence rules as
        ``Frappe.query``)."""
        opts = QueryOptions.resolve(options, parameters=parameters,
                                    timeout=timeout)
        response = self._request("POST", "/v1/query",
                                 wire.query_request(text, opts))
        data = response.read()
        self._raise_for_status(response, data)
        return wire.result_from_ndjson(data)

    def stream(self, text: str,
               parameters: Mapping[str, Any] | None = None, *,
               timeout: float | None = None,
               options: QueryOptions | None = None
               ) -> Iterator[dict[str, Any]]:
        """Incrementally yield rows (as column->value dicts) while the
        server is still streaming them.

        The generator must be fully consumed (or ``close()``d) before
        the next request on this client. The trailing summary frame is
        exposed afterwards on :attr:`last_stats`.
        """
        opts = QueryOptions.resolve(options, parameters=parameters,
                                    timeout=timeout)
        response = self._request("POST", "/v1/query",
                                 wire.query_request(text, opts))
        if response.status != 200:
            self._raise_for_status(response, response.read())
        columns: list[str] | None = None
        self.last_stats: dict[str, Any] | None = None
        for raw in response:
            line = raw.strip()
            if not line:
                continue
            frame = json.loads(line)
            if "columns" in frame and columns is None:
                columns = frame["columns"]
            elif "row" in frame:
                assert columns is not None, "row frame before header"
                yield dict(zip(columns,
                               (decode_value(value)
                                for value in frame["row"])))
            elif "summary" in frame:
                self.last_stats = frame["summary"].get("stats")
            elif "error" in frame:
                raise wire.exception_from_dict(frame["error"])

    def health(self) -> dict[str, Any]:
        response = self._request("GET", "/v1/health")
        data = response.read()
        self._raise_for_status(response, data)
        return json.loads(data)

    def metrics(self) -> dict[str, Any]:
        response = self._request("GET", "/v1/metrics")
        data = response.read()
        self._raise_for_status(response, data)
        return json.loads(data)

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "FrappeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"FrappeClient(http://{self.host}:{self.port}, "
                f"client_id={self.client_id!r})")
