"""A small SQL parser for the relational baseline.

Supported grammar (enough to express the paper's workloads
relationally, including recursive reachability)::

    statement   := [WITH [RECURSIVE] cte (',' cte)*] select
    cte         := name ['(' columns ')'] AS '(' select ')'
    select      := core (UNION [ALL] core)* [ORDER BY ...] [LIMIT n]
    core        := SELECT [DISTINCT] items FROM source
                   (JOIN source ON expr)* [WHERE expr]
                   [GROUP BY expr (',' expr)*]
    items       := '*' | expr [AS alias] (',' expr [AS alias])*
    source      := table_name [alias]

Expressions support comparisons, AND/OR/NOT, arithmetic, column
references (bare or alias-qualified), literals, and the aggregates
COUNT(*)/COUNT/SUM/MIN/MAX/AVG.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Any, Optional

from repro.errors import SqlError

# --------------------------------------------------------------------------
# Lexer
# --------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|--[^\n]*)
  | (?P<float>\d+\.\d+)
  | (?P<int>\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct><=|>=|<>|!=|=|<|>|\(|\)|,|\.|\*|\+|-|/|%|;)
    """,
    re.VERBOSE,
)


@dataclasses.dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    value: Any


def _tokenize(text: str) -> list[_Token]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise SqlError(f"bad character {text[position]!r} at offset "
                           f"{position}")
        kind = match.lastgroup or ""
        lexeme = match.group()
        if kind == "ws":
            pass
        elif kind == "int":
            tokens.append(_Token("int", lexeme, int(lexeme)))
        elif kind == "float":
            tokens.append(_Token("float", lexeme, float(lexeme)))
        elif kind == "string":
            tokens.append(_Token("string", lexeme,
                                 lexeme[1:-1].replace("''", "'")))
        elif kind == "ident":
            tokens.append(_Token("ident", lexeme, lexeme))
        else:
            tokens.append(_Token("punct", lexeme, lexeme))
        position = match.end()
    tokens.append(_Token("eof", "", None))
    return tokens


# --------------------------------------------------------------------------
# AST
# --------------------------------------------------------------------------

class SqlExpr:
    """Marker base for SQL expressions."""


@dataclasses.dataclass(frozen=True)
class SqlLiteral(SqlExpr):
    value: Any


@dataclasses.dataclass(frozen=True)
class ColumnRef(SqlExpr):
    table: Optional[str]  # alias, lowercased
    column: str           # lowercased


@dataclasses.dataclass(frozen=True)
class SqlUnary(SqlExpr):
    op: str
    operand: SqlExpr


@dataclasses.dataclass(frozen=True)
class SqlBinary(SqlExpr):
    op: str
    left: SqlExpr
    right: SqlExpr


@dataclasses.dataclass(frozen=True)
class SqlCall(SqlExpr):
    name: str
    args: tuple[SqlExpr, ...]
    star: bool = False
    distinct: bool = False

    AGGREGATES = frozenset({"count", "sum", "min", "max", "avg"})

    @property
    def is_aggregate(self) -> bool:
        return self.name in self.AGGREGATES


def sql_contains_aggregate(expr: SqlExpr) -> bool:
    if isinstance(expr, SqlCall):
        return expr.is_aggregate or any(sql_contains_aggregate(arg)
                                        for arg in expr.args)
    if isinstance(expr, SqlUnary):
        return sql_contains_aggregate(expr.operand)
    if isinstance(expr, SqlBinary):
        return (sql_contains_aggregate(expr.left)
                or sql_contains_aggregate(expr.right))
    return False


@dataclasses.dataclass(frozen=True)
class SelectItem:
    expression: SqlExpr
    alias: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class TableSource:
    name: str
    alias: str


@dataclasses.dataclass(frozen=True)
class Join:
    source: TableSource
    condition: SqlExpr


@dataclasses.dataclass(frozen=True)
class SelectCore:
    items: tuple[SelectItem, ...]
    star: bool
    source: TableSource
    joins: tuple[Join, ...]
    where: Optional[SqlExpr]
    group_by: tuple[SqlExpr, ...]
    distinct: bool


@dataclasses.dataclass(frozen=True)
class OrderItem:
    expression: SqlExpr
    ascending: bool = True


@dataclasses.dataclass(frozen=True)
class Select:
    cores: tuple[SelectCore, ...]      # UNIONed
    union_all: bool
    order_by: tuple[OrderItem, ...]
    limit: Optional[int]


@dataclasses.dataclass(frozen=True)
class Cte:
    name: str
    columns: tuple[str, ...]
    select: Select
    recursive: bool


@dataclasses.dataclass(frozen=True)
class Statement:
    ctes: tuple[Cte, ...]
    select: Select


# --------------------------------------------------------------------------
# Parser
# --------------------------------------------------------------------------

_KEYWORDS = {"SELECT", "FROM", "WHERE", "JOIN", "ON", "AS", "AND", "OR",
             "NOT", "UNION", "ALL", "WITH", "RECURSIVE", "DISTINCT",
             "GROUP", "ORDER", "BY", "LIMIT", "ASC", "DESC", "NULL",
             "TRUE", "FALSE", "IN", "INNER"}


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = _tokenize(text)
        self._index = 0

    def _peek(self, offset: int = 0) -> _Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token.kind == "ident" and token.text.upper() == word

    def _accept_keyword(self, word: str) -> bool:
        if self._at_keyword(word):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise SqlError(f"expected {word}, found "
                           f"{self._peek().text or 'end of input'!r}")

    def _at_punct(self, text: str) -> bool:
        token = self._peek()
        return token.kind == "punct" and token.text == text

    def _expect_punct(self, text: str) -> None:
        if not self._at_punct(text):
            raise SqlError(f"expected {text!r}, found "
                           f"{self._peek().text or 'end of input'!r}")
        self._advance()

    def _expect_ident(self, what: str = "identifier") -> str:
        token = self._peek()
        if token.kind != "ident" or token.text.upper() in _KEYWORDS:
            raise SqlError(f"expected {what}, found "
                           f"{token.text or 'end of input'!r}")
        self._advance()
        return token.text.lower()

    # statement -----------------------------------------------------------------

    def parse(self) -> Statement:
        ctes: list[Cte] = []
        if self._accept_keyword("WITH"):
            recursive = self._accept_keyword("RECURSIVE")
            ctes.append(self._cte(recursive))
            while self._at_punct(","):
                self._advance()
                ctes.append(self._cte(recursive))
        select = self._select()
        if self._at_punct(";"):
            self._advance()
        if self._peek().kind != "eof":
            raise SqlError(f"trailing input at {self._peek().text!r}")
        return Statement(tuple(ctes), select)

    def _cte(self, recursive: bool) -> Cte:
        name = self._expect_ident("CTE name")
        columns: list[str] = []
        if self._at_punct("("):
            self._advance()
            columns.append(self._expect_ident("column name"))
            while self._at_punct(","):
                self._advance()
                columns.append(self._expect_ident("column name"))
            self._expect_punct(")")
        self._expect_keyword("AS")
        self._expect_punct("(")
        select = self._select()
        self._expect_punct(")")
        return Cte(name, tuple(columns), select, recursive)

    def _select(self) -> Select:
        cores = [self._select_core()]
        union_all = False
        while self._at_keyword("UNION"):
            self._advance()
            union_all = self._accept_keyword("ALL")
            cores.append(self._select_core())
        order_by: list[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._order_item())
            while self._at_punct(","):
                self._advance()
                order_by.append(self._order_item())
        limit = None
        if self._accept_keyword("LIMIT"):
            token = self._peek()
            if token.kind != "int":
                raise SqlError("LIMIT needs an integer")
            self._advance()
            limit = int(token.value)
        return Select(tuple(cores), union_all, tuple(order_by), limit)

    def _order_item(self) -> OrderItem:
        expression = self._expression()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return OrderItem(expression, ascending)

    def _select_core(self) -> SelectCore:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        star = False
        items: list[SelectItem] = []
        if self._at_punct("*"):
            self._advance()
            star = True
        else:
            items.append(self._select_item())
            while self._at_punct(","):
                self._advance()
                items.append(self._select_item())
        self._expect_keyword("FROM")
        source = self._table_source()
        joins: list[Join] = []
        while self._at_keyword("JOIN") or self._at_keyword("INNER"):
            self._accept_keyword("INNER")
            self._expect_keyword("JOIN")
            join_source = self._table_source()
            self._expect_keyword("ON")
            joins.append(Join(join_source, self._expression()))
        where = None
        if self._accept_keyword("WHERE"):
            where = self._expression()
        group_by: list[SqlExpr] = []
        if self._at_keyword("GROUP"):
            self._advance()
            self._expect_keyword("BY")
            group_by.append(self._expression())
            while self._at_punct(","):
                self._advance()
                group_by.append(self._expression())
        return SelectCore(tuple(items), star, source, tuple(joins), where,
                          tuple(group_by), distinct)

    def _select_item(self) -> SelectItem:
        expression = self._expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident("alias")
        elif (self._peek().kind == "ident"
              and self._peek().text.upper() not in _KEYWORDS):
            alias = self._advance().text.lower()
        return SelectItem(expression, alias)

    def _table_source(self) -> TableSource:
        name = self._expect_ident("table name")
        alias = name
        if self._accept_keyword("AS"):
            alias = self._expect_ident("alias")
        elif (self._peek().kind == "ident"
              and self._peek().text.upper() not in _KEYWORDS):
            alias = self._advance().text.lower()
        return TableSource(name, alias)

    # expressions ----------------------------------------------------------------

    def _expression(self) -> SqlExpr:
        return self._or_expr()

    def _or_expr(self) -> SqlExpr:
        left = self._and_expr()
        while self._at_keyword("OR"):
            self._advance()
            left = SqlBinary("or", left, self._and_expr())
        return left

    def _and_expr(self) -> SqlExpr:
        left = self._not_expr()
        while self._at_keyword("AND"):
            self._advance()
            left = SqlBinary("and", left, self._not_expr())
        return left

    def _not_expr(self) -> SqlExpr:
        if self._accept_keyword("NOT"):
            return SqlUnary("not", self._not_expr())
        return self._comparison()

    _COMPARISONS = ("=", "<>", "!=", "<=", ">=", "<", ">")

    def _comparison(self) -> SqlExpr:
        left = self._additive()
        token = self._peek()
        if token.kind == "punct" and token.text in self._COMPARISONS:
            self._advance()
            op = "<>" if token.text == "!=" else token.text
            return SqlBinary(op, left, self._additive())
        return left

    def _additive(self) -> SqlExpr:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.kind == "punct" and token.text in ("+", "-"):
                self._advance()
                left = SqlBinary(token.text, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> SqlExpr:
        left = self._unary()
        while True:
            token = self._peek()
            if token.kind == "punct" and token.text in ("*", "/", "%"):
                self._advance()
                left = SqlBinary(token.text, left, self._unary())
            else:
                return left

    def _unary(self) -> SqlExpr:
        if self._at_punct("-"):
            self._advance()
            return SqlUnary("-", self._unary())
        return self._primary()

    def _primary(self) -> SqlExpr:
        token = self._peek()
        if token.kind in ("int", "float", "string"):
            self._advance()
            return SqlLiteral(token.value)
        if self._at_keyword("NULL"):
            self._advance()
            return SqlLiteral(None)
        if self._at_keyword("TRUE"):
            self._advance()
            return SqlLiteral(True)
        if self._at_keyword("FALSE"):
            self._advance()
            return SqlLiteral(False)
        if self._at_punct("("):
            self._advance()
            inner = self._expression()
            self._expect_punct(")")
            return inner
        if token.kind == "ident":
            name = token.text
            if self._peek(1).kind == "punct" and self._peek(1).text == "(":
                self._advance()
                self._advance()  # '('
                if self._at_punct("*"):
                    self._advance()
                    self._expect_punct(")")
                    return SqlCall(name.lower(), (), star=True)
                distinct = self._accept_keyword("DISTINCT")
                args = [self._expression()]
                while self._at_punct(","):
                    self._advance()
                    args.append(self._expression())
                self._expect_punct(")")
                return SqlCall(name.lower(), tuple(args), distinct=distinct)
            if name.upper() in _KEYWORDS:
                raise SqlError(f"unexpected keyword {name!r}")
            self._advance()
            if self._at_punct("."):
                self._advance()
                column = self._expect_ident("column name")
                return ColumnRef(name.lower(), column)
            return ColumnRef(None, name.lower())
        raise SqlError(f"expected expression, found "
                       f"{token.text or 'end of input'!r}")


def parse_sql(text: str) -> Statement:
    """Parse one SQL statement."""
    if not text or not text.strip():
        raise SqlError("empty SQL statement")
    return _Parser(text).parse()
