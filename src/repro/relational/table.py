"""Tables and the database catalog for the relational baseline."""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.errors import SqlError


class Table:
    """A named relation: a column list and a list of row tuples."""

    def __init__(self, name: str, columns: Sequence[str],
                 rows: Iterable[Sequence[Any]] | None = None) -> None:
        if not columns:
            raise SqlError(f"table {name!r} needs at least one column")
        lowered = [column.lower() for column in columns]
        if len(set(lowered)) != len(lowered):
            raise SqlError(f"table {name!r} has duplicate column names")
        self.name = name.lower()
        self.columns = lowered
        self.rows: list[tuple[Any, ...]] = []
        if rows is not None:
            for row in rows:
                self.insert(row)

    @property
    def arity(self) -> int:
        return len(self.columns)

    def insert(self, row: Sequence[Any]) -> None:
        if len(row) != self.arity:
            raise SqlError(
                f"table {self.name!r} expects {self.arity} values, "
                f"got {len(row)}")
        self.rows.append(tuple(row))

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.insert(row)

    def column_index(self, column: str) -> int:
        try:
            return self.columns.index(column.lower())
        except ValueError:
            raise SqlError(
                f"no column {column!r} in table {self.name!r}") from None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows)

    def __repr__(self) -> str:
        return (f"Table({self.name!r}, columns={self.columns}, "
                f"rows={len(self.rows)})")


class Database:
    """A catalog of tables."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def create_table(self, name: str, columns: Sequence[str],
                     rows: Iterable[Sequence[Any]] | None = None) -> Table:
        key = name.lower()
        if key in self._tables:
            raise SqlError(f"table {name!r} already exists")
        table = Table(key, columns, rows)
        self._tables[key] = table
        return table

    def drop_table(self, name: str) -> None:
        if name.lower() not in self._tables:
            raise SqlError(f"no such table {name!r}")
        del self._tables[name.lower()]

    def table(self, name: str) -> Table:
        table = self._tables.get(name.lower())
        if table is None:
            raise SqlError(f"no such table {name!r}")
        return table

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return self.has_table(str(name))
