"""Mini relational engine: the paper's Section 2 baseline.

The paper argues that relational DBMSs "would work well for some of
the simpler use cases" but that transitive closure "results in verbose
recursive queries that ... often suffer performance issues due to
repeated join operations". This package makes that claim testable:

* :mod:`~repro.relational.table` — typed tables and a database catalog,
* :mod:`~repro.relational.engine` — select / project / hash-join /
  union / aggregate operators plus semi-naive fixpoint evaluation,
* :mod:`~repro.relational.sql` — a small SQL parser supporting
  ``SELECT``/``JOIN``/``WHERE``/``GROUP BY``/``ORDER BY``/``UNION`` and
  ``WITH RECURSIVE``, enough to express the dependency-graph workloads
  relationally.

Benchmark E10 loads the dependency graph into ``nodes``/``edges``
tables and runs the same reachability workloads both ways.
"""

from repro.relational.engine import SqlEngine
from repro.relational.table import Database, Table

__all__ = ["Database", "SqlEngine", "Table"]
