"""Executor for the mini-SQL dialect.

Joins are hash joins when the ON condition contains at least one
equality between the two sides (the rest of the condition filters the
candidates); otherwise nested loops. ``WITH RECURSIVE`` is evaluated
semi-naively: each iteration joins only the previous delta, which is
the textbook strategy — and still loses badly to a graph traversal on
closure workloads, which is exactly the paper's Section 2 argument.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.errors import SqlError
from repro.relational import sql as ast
from repro.relational.table import Database, Table

_MAX_RECURSION_ROUNDS = 1_000_000


class SqlResult:
    """Materialized result of a SELECT."""

    def __init__(self, columns: list[str],
                 rows: list[tuple[Any, ...]]) -> None:
        self.columns = columns
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        for row in self.rows:
            yield dict(zip(self.columns, row))

    def value(self) -> Any:
        if not self.rows:
            raise SqlError("result is empty")
        return self.rows[0][0]

    def values(self, column: int | str = 0) -> list[Any]:
        index = column if isinstance(column, int) \
            else self.columns.index(column)
        return [row[index] for row in self.rows]

    def __repr__(self) -> str:
        return f"SqlResult(columns={self.columns}, rows={len(self.rows)})"


class SqlEngine:
    """Runs SQL text against a :class:`~repro.relational.table.Database`."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self.join_rows_examined = 0  # counter for benchmark reporting

    def run(self, text: str) -> SqlResult:
        """Parse and execute one SQL statement."""
        statement = ast.parse_sql(text)
        ctes: dict[str, Table] = {}
        for cte in statement.ctes:
            ctes[cte.name] = self._evaluate_cte(cte, ctes)
        columns, rows = self._select(statement.select, ctes)
        return SqlResult(columns, rows)

    # -- CTEs / recursion ---------------------------------------------------------

    def _evaluate_cte(self, cte: ast.Cte, ctes: dict[str, Table]) -> Table:
        if not cte.recursive or not self._references(cte.select, cte.name):
            columns, rows = self._select(cte.select, ctes)
            names = list(cte.columns) or columns
            return Table(cte.name, names, rows)
        if len(cte.select.cores) < 2:
            raise SqlError(
                f"recursive CTE {cte.name!r} needs base UNION recursive "
                f"part")
        base_cores = [core for core in cte.select.cores
                      if not self._core_references(core, cte.name)]
        recursive_cores = [core for core in cte.select.cores
                           if self._core_references(core, cte.name)]
        if not base_cores or not recursive_cores:
            raise SqlError(
                f"recursive CTE {cte.name!r} needs a non-recursive base "
                f"and a recursive part")
        base_select = ast.Select(tuple(base_cores), cte.select.union_all,
                                 (), None)
        columns, base_rows = self._select(base_select, ctes)
        names = list(cte.columns) or columns
        total: set[tuple[Any, ...]] = set(base_rows)
        ordered = list(dict.fromkeys(base_rows))
        delta = Table(cte.name, names, ordered)
        for _ in range(_MAX_RECURSION_ROUNDS):
            if not delta.rows:
                break
            scope = dict(ctes)
            scope[cte.name] = delta  # semi-naive: join the delta only
            new_rows: list[tuple[Any, ...]] = []
            for core in recursive_cores:
                _, produced = self._select(
                    ast.Select((core,), False, (), None), scope)
                new_rows.extend(produced)
            fresh = [row for row in dict.fromkeys(new_rows)
                     if row not in total]
            total.update(fresh)
            ordered.extend(fresh)
            delta = Table(cte.name, names, fresh)
        else:
            raise SqlError(
                f"recursive CTE {cte.name!r} did not converge")
        return Table(cte.name, names, ordered)

    def _references(self, select: ast.Select, name: str) -> bool:
        return any(self._core_references(core, name)
                   for core in select.cores)

    @staticmethod
    def _core_references(core: ast.SelectCore, name: str) -> bool:
        if core.source.name == name:
            return True
        return any(join.source.name == name for join in core.joins)

    # -- SELECT ---------------------------------------------------------------------

    def _select(self, select: ast.Select, ctes: Mapping[str, Table],
                ) -> tuple[list[str], list[tuple[Any, ...]]]:
        columns: list[str] | None = None
        rows: list[tuple[Any, ...]] = []
        for core in select.cores:
            core_columns, core_rows = self._select_core(core, ctes)
            if columns is None:
                columns = core_columns
            elif len(columns) != len(core_columns):
                raise SqlError("UNION arms have different arity")
            rows.extend(core_rows)
        assert columns is not None
        if len(select.cores) > 1 and not select.union_all:
            rows = list(dict.fromkeys(rows))
        if select.order_by:
            rows = self._order(rows, columns, select.order_by)
        if select.limit is not None:
            rows = rows[:select.limit]
        return columns, rows

    def _select_core(self, core: ast.SelectCore,
                     ctes: Mapping[str, Table],
                     ) -> tuple[list[str], list[tuple[Any, ...]]]:
        envs = self._from_and_joins(core, ctes)
        if core.where is not None:
            envs = [env for env in envs
                    if self._eval(core.where, env) is True]
        if core.group_by or any(ast.sql_contains_aggregate(item.expression)
                                for item in core.items):
            return self._aggregate_core(core, envs)
        if core.star:
            columns = self._star_columns(core, ctes)
            rows = [tuple(env[column] for column in columns)
                    for env in envs]
        else:
            columns = [self._item_name(item, index)
                       for index, item in enumerate(core.items)]
            rows = [tuple(self._eval(item.expression, env)
                          for item in core.items) for env in envs]
        if core.distinct:
            rows = list(dict.fromkeys(rows))
        return columns, rows

    def _from_and_joins(self, core: ast.SelectCore,
                        ctes: Mapping[str, Table],
                        ) -> list[dict[str, Any]]:
        base = self._resolve(core.source.name, ctes)
        envs = [self._env_for(core.source.alias, base, row)
                for row in base.rows]
        for join in core.joins:
            right = self._resolve(join.source.name, ctes)
            envs = self._join(envs, right, join.source.alias,
                              join.condition)
        return envs

    def _resolve(self, name: str, ctes: Mapping[str, Table]) -> Table:
        if name in ctes:
            return ctes[name]
        return self.database.table(name)

    @staticmethod
    def _env_for(alias: str, table: Table,
                 row: tuple[Any, ...]) -> dict[str, Any]:
        env: dict[str, Any] = {}
        for column, value in zip(table.columns, row):
            env[f"{alias}.{column}"] = value
            # bare name: first binding wins; qualified always available
            env.setdefault(column, value)
        return env

    def _join(self, envs: list[dict[str, Any]], right: Table, alias: str,
              condition: ast.SqlExpr) -> list[dict[str, Any]]:
        equalities = self._equi_keys(condition, envs, right, alias)
        result: list[dict[str, Any]] = []
        if equalities is not None:
            left_keys, right_columns = equalities
            index: dict[tuple[Any, ...], list[tuple[Any, ...]]] = {}
            positions = [right.column_index(column)
                         for column in right_columns]
            for row in right.rows:
                key = tuple(row[position] for position in positions)
                index.setdefault(key, []).append(row)
            for env in envs:
                key = tuple(self._eval(expr, env) for expr in left_keys)
                for row in index.get(key, ()):
                    self.join_rows_examined += 1
                    merged = dict(env)
                    merged.update(self._env_for(alias, right, row))
                    if self._eval(condition, merged) is True:
                        result.append(merged)
            return result
        for env in envs:  # nested loop fallback
            for row in right.rows:
                self.join_rows_examined += 1
                merged = dict(env)
                merged.update(self._env_for(alias, right, row))
                if self._eval(condition, merged) is True:
                    result.append(merged)
        return result

    def _equi_keys(self, condition: ast.SqlExpr,
                   envs: list[dict[str, Any]], right: Table, alias: str,
                   ) -> tuple[list[ast.SqlExpr], list[str]] | None:
        """Extract hashable equi-join keys from a conjunction, if any."""
        left_keys: list[ast.SqlExpr] = []
        right_columns: list[str] = []

        def right_side_column(expr: ast.SqlExpr) -> str | None:
            if isinstance(expr, ast.ColumnRef):
                if expr.table == alias:
                    return expr.column
                if expr.table is None and expr.column in right.columns:
                    # bare column that exists on the right and not on the
                    # left side environments
                    sample = envs[0] if envs else {}
                    if expr.column not in sample:
                        return expr.column
            return None

        def refers_only_left(expr: ast.SqlExpr) -> bool:
            if isinstance(expr, ast.ColumnRef):
                if expr.table == alias:
                    return False
                if expr.table is None:
                    sample = envs[0] if envs else {}
                    return expr.column in sample
                return True
            if isinstance(expr, ast.SqlLiteral):
                return True
            if isinstance(expr, ast.SqlUnary):
                return refers_only_left(expr.operand)
            if isinstance(expr, ast.SqlBinary):
                return (refers_only_left(expr.left)
                        and refers_only_left(expr.right))
            return False

        def walk(expr: ast.SqlExpr) -> None:
            if isinstance(expr, ast.SqlBinary) and expr.op == "and":
                walk(expr.left)
                walk(expr.right)
                return
            if isinstance(expr, ast.SqlBinary) and expr.op == "=":
                for left, right_expr in ((expr.left, expr.right),
                                         (expr.right, expr.left)):
                    column = right_side_column(right_expr)
                    if column is not None and refers_only_left(left):
                        left_keys.append(left)
                        right_columns.append(column)
                        return

        walk(condition)
        if not left_keys:
            return None
        return left_keys, right_columns

    def _star_columns(self, core: ast.SelectCore,
                      ctes: Mapping[str, Table]) -> list[str]:
        columns = []
        sources = [core.source] + [join.source for join in core.joins]
        for source in sources:
            table = self._resolve(source.name, ctes)
            columns.extend(f"{source.alias}.{column}"
                           for column in table.columns)
        return columns

    @staticmethod
    def _item_name(item: ast.SelectItem, index: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expression, ast.ColumnRef):
            return item.expression.column
        return f"column_{index}"

    # -- aggregation --------------------------------------------------------------

    def _aggregate_core(self, core: ast.SelectCore,
                        envs: list[dict[str, Any]],
                        ) -> tuple[list[str], list[tuple[Any, ...]]]:
        if core.star:
            raise SqlError("SELECT * cannot be combined with aggregates")
        columns = [self._item_name(item, index)
                   for index, item in enumerate(core.items)]
        groups: dict[Any, list[dict[str, Any]]] = {}
        keys_in_order: list[Any] = []
        for env in envs:
            key = tuple(self._eval(expr, env) for expr in core.group_by)
            if key not in groups:
                groups[key] = []
                keys_in_order.append(key)
            groups[key].append(env)
        if not groups and not core.group_by:
            groups[()] = []
            keys_in_order.append(())
        rows = []
        for key in keys_in_order:
            group = groups[key]
            rows.append(tuple(self._eval_aggregate(item.expression, group)
                              for item in core.items))
        if core.distinct:
            rows = list(dict.fromkeys(rows))
        return columns, rows

    def _eval_aggregate(self, expr: ast.SqlExpr,
                        group: list[dict[str, Any]]) -> Any:
        if isinstance(expr, ast.SqlCall) and expr.is_aggregate:
            return self._apply_aggregate(expr, group)
        if isinstance(expr, ast.SqlBinary):
            left = self._eval_aggregate(expr.left, group)
            right = self._eval_aggregate(expr.right, group)
            return self._binary(expr.op, left, right)
        if isinstance(expr, ast.SqlUnary):
            inner = self._eval_aggregate(expr.operand, group)
            return self._unary(expr.op, inner)
        return self._eval(expr, group[0]) if group else None

    def _apply_aggregate(self, call: ast.SqlCall,
                         group: list[dict[str, Any]]) -> Any:
        if call.star:
            return len(group)
        if len(call.args) != 1:
            raise SqlError(f"{call.name}() takes one argument")
        values = [self._eval(call.args[0], env) for env in group]
        values = [value for value in values if value is not None]
        if call.distinct:
            values = list(dict.fromkeys(values))
        if call.name == "count":
            return len(values)
        if call.name == "sum":
            return sum(values) if values else None
        if call.name == "min":
            return min(values) if values else None
        if call.name == "max":
            return max(values) if values else None
        if call.name == "avg":
            return sum(values) / len(values) if values else None
        raise SqlError(f"unknown aggregate {call.name}()")

    # -- expression evaluation ------------------------------------------------------

    def _eval(self, expr: ast.SqlExpr, env: Mapping[str, Any]) -> Any:
        if isinstance(expr, ast.SqlLiteral):
            return expr.value
        if isinstance(expr, ast.ColumnRef):
            key = f"{expr.table}.{expr.column}" if expr.table \
                else expr.column
            if key not in env:
                raise SqlError(f"unknown column {key!r}")
            return env[key]
        if isinstance(expr, ast.SqlUnary):
            return self._unary(expr.op, self._eval(expr.operand, env))
        if isinstance(expr, ast.SqlBinary):
            if expr.op in ("and", "or"):
                return self._logical(expr, env)
            return self._binary(expr.op, self._eval(expr.left, env),
                                self._eval(expr.right, env))
        if isinstance(expr, ast.SqlCall):
            raise SqlError(
                f"aggregate {expr.name}() outside SELECT items")
        raise SqlError(f"cannot evaluate {expr!r}")

    def _logical(self, expr: ast.SqlBinary, env: Mapping[str, Any]) -> Any:
        left = self._eval(expr.left, env)
        if expr.op == "and":
            if left is False:
                return False
            right = self._eval(expr.right, env)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if left is True:
            return True
        right = self._eval(expr.right, env)
        if right is True:
            return True
        if left is None or right is None:
            return None
        return False

    @staticmethod
    def _unary(op: str, value: Any) -> Any:
        if value is None:
            return None
        if op == "not":
            return not value
        if op == "-":
            return -value
        raise SqlError(f"unknown unary operator {op!r}")

    @staticmethod
    def _binary(op: str, left: Any, right: Any) -> Any:
        if left is None or right is None:
            return None
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                if right == 0:
                    raise SqlError("division by zero")
                return left // right
            return left / right
        if op == "%":
            return left % right
        raise SqlError(f"unknown operator {op!r}")

    @staticmethod
    def _order(rows: list[tuple[Any, ...]], columns: list[str],
               order_by: tuple[ast.OrderItem, ...],
               ) -> list[tuple[Any, ...]]:
        ordered = list(rows)
        for item in reversed(order_by):
            if not isinstance(item.expression, ast.ColumnRef):
                raise SqlError("ORDER BY supports column references only")
            name = item.expression.column
            qualified = (f"{item.expression.table}.{name}"
                         if item.expression.table else name)
            try:
                index = columns.index(qualified)
            except ValueError:
                try:
                    index = columns.index(name)
                except ValueError:
                    raise SqlError(
                        f"ORDER BY column {qualified!r} not in result"
                    ) from None
            ordered.sort(key=lambda row: (row[index] is None, row[index]),
                         reverse=not item.ascending)
        return ordered


def load_graph_tables(database: Database, view: Any,
                      node_properties: Iterable[str] = ("type",
                                                        "short_name"),
                      edge_properties: Iterable[str] = (),
                      ) -> None:
    """Load a :class:`~repro.graphdb.view.GraphView` into SQL tables.

    Creates ``nodes(id, <props>...)`` and
    ``edges(src, dst, type, <props>...)`` — the straightforward
    relational encoding of the dependency graph that benchmark E10
    queries with recursive SQL.
    """
    node_props = list(node_properties)
    edge_props = list(edge_properties)
    nodes = database.create_table("nodes", ["id"] + node_props)
    for node_id in view.node_ids():
        properties = view.node_properties(node_id)
        nodes.insert([node_id] + [properties.get(key)
                                  for key in node_props])
    edges = database.create_table("edges",
                                  ["src", "dst", "type"] + edge_props)
    for edge_id in view.edge_ids():
        properties = view.edge_properties(edge_id)
        edges.insert([view.edge_source(edge_id), view.edge_target(edge_id),
                      view.edge_type(edge_id)]
                     + [properties.get(key) for key in edge_props])
