"""Structured open-time configuration for a Frappé store.

One :class:`StoreConfig` value replaces the keyword sprawl that had
accreted on ``Frappe.open`` (page cache, mmap flag, execution mode,
morsel size, planner gates)::

    frappe = Frappe.open("/var/lib/frappe/kernel",
                         config=StoreConfig(mmap=True,
                                            execution_mode="batch"))

The old keywords still work behind a :class:`DeprecationWarning` shim,
and a config value is picklable (when ``page_cache`` is left to its
default), which is what lets the multi-process replica tier ship one
config to every worker it spawns.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.graphdb.storage import PageCache


@dataclasses.dataclass(frozen=True)
class StoreConfig:
    """How to open (and query) a saved store.

    page_cache
        An explicit :class:`~repro.graphdb.storage.PageCache` to read
        through; fixes the caching mode, so ``mmap`` is ignored when
        it is set.
    mmap
        Memory-map the store files and serve reads as zero-copy
        slices (files that cannot be mapped fall back to the buffered
        LRU per file).
    default_timeout
        Engine-wide per-query budget in seconds (None = unbounded);
        overridable per query via ``QueryOptions``.
    execution_mode
        Engine-wide default: ``"auto"`` picks batch execution when
        every clause has a batch kernel, ``"batch"``/``"rows"`` force
        one engine. Per-query override via ``QueryOptions``.
    morsel_size
        Rows per batch under batch execution (None = engine default).
    parallelism
        Engine-wide default for intra-query parallelism under batch
        execution: 0 = auto (the serving pool's worker count when one
        is running, serial otherwise), 1 = serial, N = up to N morsel
        tasks per query. Per-query override via ``QueryOptions``.
    use_compiled_kernels
        Run batch WHERE/projection expressions through precompiled
        closure kernels (off = the interpreted baseline; the
        compiled-vs-interpreted ablation gate).
    use_csr_adjacency
        Promote the CSR adjacency snapshot (lazily built) to the
        default read format for batch execution.
    use_compiled_csr
        Serve adjacency and resolved neighbors from the store's
        persistent compiled CSR segments when the store carries them
        (format 3); off = decode record-by-record at runtime (the
        cold-start ablation gate, ``--no-csr`` on the CLI). Stores
        without compiled segments always use the record path.
    use_reachability_rewrite
        Run endpoint-distinct var-length patterns as visited-set BFS
        (the Section 6.1 ablation gate).
    use_cost_based_planner
        Cost anchors and expansion order from graph statistics and
        push WHERE equality conjuncts into MATCH.
    """

    page_cache: PageCache | None = None
    mmap: bool = False
    default_timeout: float | None = None
    execution_mode: str = "auto"
    morsel_size: int | None = None
    parallelism: int = 0
    use_compiled_kernels: bool = True
    use_csr_adjacency: bool = True
    use_compiled_csr: bool = True
    use_reachability_rewrite: bool = True
    use_cost_based_planner: bool = True

    def __post_init__(self) -> None:
        if self.execution_mode not in ("auto", "batch", "rows"):
            raise ValueError(
                "execution_mode must be 'auto', 'batch' or 'rows'")
        if self.morsel_size is not None and self.morsel_size < 1:
            raise ValueError("morsel_size must be >= 1")
        if self.parallelism < 0:
            raise ValueError("parallelism must be >= 0")
        if self.default_timeout is not None and self.default_timeout <= 0:
            raise ValueError("default_timeout must be positive")

    def make_page_cache(self) -> PageCache | None:
        """The cache to open the store with: the explicit one, a fresh
        mmap-mode cache when ``mmap=True``, else None (store default)."""
        if self.page_cache is not None:
            return self.page_cache
        if self.mmap:
            return PageCache(mode="mmap")
        return None

    def to_dict(self) -> dict[str, Any]:
        """JSON/pickle-friendly encoding (drops ``page_cache``, which
        is process-local); the replica tier sends this to workers."""
        return {field.name: getattr(self, field.name)
                for field in dataclasses.fields(self)
                if field.name != "page_cache"}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "StoreConfig":
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError("unknown store config key(s): "
                             + ", ".join(sorted(unknown)))
        return cls(**payload)


#: Open with every default: buffered LRU page cache, auto execution.
DEFAULT_CONFIG = StoreConfig()
