"""Program-slice approximations over the dependency graph.

Paper Section 4.4: "One of the simplest approximations of a program
slice is the transitive closure of the call graph ... The same idea
can be applied to other edge types too, such as file includes, or to
macro expansions to see all code potentially affected by the seed
macro."

Direction convention (following the paper's text): the *backward*
slice of a function is the closure of its **outgoing** calls — all
functions that, if modified, could alter its behaviour; the *forward*
slice is the closure of **incoming** calls — all code that may be
affected if the seed changes.
"""

from __future__ import annotations

from typing import Collection

from repro.core import model
from repro.graphdb import algo
from repro.graphdb.view import Direction, GraphView


def backward_slice(view: GraphView, seed: int,
                   edge_types: Collection[str] = (model.CALLS,),
                   max_depth: int | None = None) -> set[int]:
    """Everything *seed* transitively depends on."""
    return algo.reachable_nodes(view, seed, tuple(edge_types),
                                Direction.OUT, max_depth)


def forward_slice(view: GraphView, seed: int,
                  edge_types: Collection[str] = (model.CALLS,),
                  max_depth: int | None = None) -> set[int]:
    """Everything that may be affected if *seed* changes."""
    return algo.reachable_nodes(view, seed, tuple(edge_types),
                                Direction.IN, max_depth)


def include_slice(view: GraphView, file_node: int,
                  forward: bool = True) -> set[int]:
    """Files affected by (or affecting) a header, via includes edges.

    ``forward=True`` answers "who would rebuild if this header
    changed" (closure of incoming ``includes``).
    """
    direction = Direction.IN if forward else Direction.OUT
    return algo.reachable_nodes(view, file_node, (model.INCLUDES,),
                                direction)


def macro_impact(view: GraphView, macro_node: int,
                 through_calls: bool = False) -> set[int]:
    """Code potentially affected by changing a macro.

    The direct impact is every entity with an ``expands_macro`` or
    ``interrogates_macro`` edge to the macro; with
    ``through_calls=True`` the impact is widened by the forward call
    slice of each affected function ("How much code could be affected
    if I change this macro?" — the paper's introduction).
    """
    direct: set[int] = set()
    for edge_id in view.edges_of(macro_node, Direction.IN,
                                 (model.EXPANDS_MACRO,
                                  model.INTERROGATES_MACRO)):
        direct.add(view.edge_source(edge_id))
    if not through_calls:
        return direct
    widened = set(direct)
    for node_id in direct:
        if model.FUNCTION in view.node_labels(node_id):
            widened |= forward_slice(view, node_id)
    return widened


def slice_size_by_depth(view: GraphView, seed: int,
                        edge_types: Collection[str] = (model.CALLS,),
                        direction: Direction = Direction.OUT,
                        max_depth: int = 10) -> list[int]:
    """Cumulative slice size at each depth (for impact profiling)."""
    sizes = []
    for depth in range(1, max_depth + 1):
        sizes.append(len(algo.reachable_nodes(view, seed,
                                              tuple(edge_types),
                                              direction, depth)))
        if len(sizes) > 1 and sizes[-1] == sizes[-2]:
            break  # converged early
    return sizes
