"""Building the dependency graph from a finished build.

This is the synthesis step of paper Section 3: information from the
preprocessor (macros, includes, expansions), the ASTs (symbols, types,
references), the directory structure and the linker is merged into one
labeled property graph using the Table 1/2 vocabulary.

Cross-unit identity: nodes are deduplicated by ``(node type, USR)``,
so a struct defined in a shared header becomes one node no matter how
many translation units include it, while two ``static`` functions with
the same name in different files stay distinct (their USRs embed the
unit path).

Reference edges carry Table 2's two source ranges: ``USE_*`` spans the
whole mention (the complete call site for a ``calls`` edge) and
``NAME_*`` spans the representative name token — go-to-definition
(Figure 4) filters on the latter.
"""

from __future__ import annotations

import bisect
import posixpath
from typing import Optional

from repro.build.buildsys import Build
from repro.build.compiler import ObjectFile
from repro.core import model
from repro.graphdb import PropertyGraph
from repro.lang import cast as c
from repro.lang import ctypes_ as ct
from repro.lang import sema
from repro.lang.source import SourceRange


class DependencyGraphExtractor:
    """Accumulates one dependency graph from build artifacts."""

    def __init__(self) -> None:
        self.graph = PropertyGraph(auto_index_keys=model.AUTO_INDEX_KEYS)
        self._node_by_key: dict[tuple[str, str], int] = {}
        self._file_nodes: dict[int, int] = {}       # file_id -> node
        self._dir_nodes: dict[str, int] = {}
        self._macro_nodes: dict[str, int] = {}      # name -> node
        self._typedef_by_name: dict[str, int] = {}  # name -> node
        self._symbol_nodes: dict[int, int] = {}     # id(symbol) -> node
        # per-file sorted function extents for enclosing-entity lookup:
        # file_id -> (sorted start lines, [(start, end, node)])
        self._function_extents: dict[int, list[tuple[int, int, int]]] = {}

    # ==================================================================
    # public API
    # ==================================================================

    def extract_build(self, build: Build) -> PropertyGraph:
        """Extract everything a finished build knows."""
        self._extract_filesystem(build)
        self._tag_failed_units(build)
        for obj in build.objects.values():
            self.extract_unit(obj)
        self._index_function_extents()
        for obj in build.objects.values():
            self._extract_macro_uses(obj)
        for module in build.modules:
            self.extract_module(module, build)
        self._redirect_references_to_definitions()
        return self.graph

    # ==================================================================
    # files and directories
    # ==================================================================

    def _extract_filesystem(self, build: Build) -> None:
        for source in build.registry.known_files():
            self._file_node(source.file_id, source.path)

    def _tag_failed_units(self, build: Build) -> None:
        """Mark file nodes whose translation unit failed to index.

        A keep-going build yields a partial graph; queries must be able
        to tell an unreferenced file from an unindexed one, so failed
        sources carry ``index_status='failed'`` and the first
        diagnostic's text.
        """
        report = getattr(build, "report", None)
        if report is None:
            return
        by_path = {source.path: source.file_id
                   for source in build.registry.known_files()}
        for outcome in report.failed_units:
            file_id = by_path.get(outcome.source_path)
            node = self._file_nodes.get(file_id)
            if node is None:
                continue
            self.graph.set_node_property(node, model.P_INDEX_STATUS,
                                         "failed")
            if outcome.diagnostics:
                self.graph.set_node_property(node, model.P_INDEX_ERROR,
                                             str(outcome.diagnostics[0]))

    def _file_node(self, file_id: int, path: str) -> int:
        existing = self._file_nodes.get(file_id)
        if existing is not None:
            return existing
        node = self.graph.add_node(
            *model.labels_for(model.FILE),
            properties={
                model.P_TYPE: model.FILE,
                model.P_SHORT_NAME: posixpath.basename(path),
                model.P_NAME: path,
                model.P_LONG_NAME: path,
            })
        self._file_nodes[file_id] = node
        parent = self._dir_node(posixpath.dirname(path))
        self.graph.add_edge(parent, node, model.DIR_CONTAINS)
        return node

    def _dir_node(self, path: str) -> int:
        key = path or "."
        existing = self._dir_nodes.get(key)
        if existing is not None:
            return existing
        node = self.graph.add_node(
            *model.labels_for(model.DIRECTORY),
            properties={
                model.P_TYPE: model.DIRECTORY,
                model.P_SHORT_NAME: posixpath.basename(key) or key,
                model.P_NAME: key,
                model.P_LONG_NAME: key,
            })
        self._dir_nodes[key] = node
        if key != ".":
            parent = self._dir_node(posixpath.dirname(path))
            self.graph.add_edge(parent, node, model.DIR_CONTAINS)
        return node

    # ==================================================================
    # one translation unit
    # ==================================================================

    def extract_unit(self, obj: ObjectFile) -> None:
        """Symbols, types and references of one compilation unit."""
        info = obj.info
        # includes first, so every seen file has its node
        for include in obj.unit.includes:
            self.graph.add_edge(
                self._file_nodes[include.including_file_id],
                self._file_nodes[include.included_file_id],
                model.INCLUDES,
                properties=model.range_properties(
                    "use", _point_range(include.location)))
        for definition in obj.unit.macro_definitions:
            self._macro_node(definition.name, definition.name_range)
        for symbol in info.symbols:
            self._symbol_node(symbol)
        for symbol in info.functions:
            decl = symbol.decl
            if isinstance(decl, c.FunctionDef) and \
                    symbol.name_range is not None:
                self.register_function_extent(
                    symbol.name_range.file_id,
                    symbol.name_range.start_line,
                    max(decl.body_end_line,
                        symbol.name_range.start_line),
                    self._symbol_nodes[id(symbol)])
        self._structure_edges(info)
        self._reference_edges(obj)

    # -- nodes ------------------------------------------------------------------

    def _symbol_node(self, symbol: sema.Symbol) -> int:
        cached = self._symbol_nodes.get(id(symbol))
        if cached is not None:
            return cached
        node_type = _node_type_for(symbol)
        key = (node_type, symbol.usr)
        node = self._node_by_key.get(key)
        if node is None:
            properties = {
                model.P_TYPE: node_type,
                model.P_SHORT_NAME: symbol.name,
                model.P_NAME: symbol.qualified_name,
                model.P_LONG_NAME: _long_name(symbol),
            }
            if symbol.kind == sema.KIND_ENUMERATOR and \
                    symbol.value is not None:
                properties[model.P_VALUE] = symbol.value
            if symbol.variadic:
                properties[model.P_VARIADIC] = True
            if getattr(symbol.decl, "in_macro", False):
                properties[model.P_IN_MACRO] = True
            node = self.graph.add_node(*model.labels_for(node_type),
                                       properties=properties)
            self._node_by_key[key] = node
            if node_type == model.TYPEDEF:
                self._typedef_by_name.setdefault(symbol.name, node)
            if symbol.name_range is not None:
                file_node = self._file_nodes.get(
                    symbol.name_range.file_id)
                # parameters and locals are contained via their
                # function; everything else (incl. fields — paper
                # Figure 3 matches file_contains into :field nodes)
                # hangs off its defining file
                if file_node is not None and symbol.kind not in (
                        sema.KIND_PARAMETER, sema.KIND_LOCAL,
                        sema.KIND_STATIC_LOCAL):
                    self.graph.add_edge(file_node, node,
                                        model.FILE_CONTAINS)
        self._symbol_nodes[id(symbol)] = node
        return node

    def _macro_node(self, name: str,
                    name_range: SourceRange | None) -> int:
        node = self._macro_nodes.get(name)
        if node is None:
            node = self.graph.add_node(
                *model.labels_for(model.MACRO),
                properties={
                    model.P_TYPE: model.MACRO,
                    model.P_SHORT_NAME: name,
                    model.P_NAME: name,
                    model.P_LONG_NAME: name,
                })
            self._macro_nodes[name] = node
            if name_range is not None:
                file_node = self._file_nodes.get(name_range.file_id)
                if file_node is not None:
                    self.graph.add_edge(file_node, node,
                                        model.FILE_CONTAINS)
        return node

    def _type_node(self, ctype: ct.CType) -> Optional[int]:
        """The node a type reference resolves to (Table 1 type kinds)."""
        if isinstance(ctype, ct.TypedefType):
            declared = self._typedef_by_name.get(ctype.name)
            if declared is not None:
                return declared
            key = (model.TYPEDEF, f"typedef@{ctype.name}")
            node = self._node_by_key.get(key)
            if node is None:
                node = self.graph.add_node(
                    *model.labels_for(model.TYPEDEF),
                    properties={model.P_TYPE: model.TYPEDEF,
                                model.P_SHORT_NAME: ctype.name,
                                model.P_NAME: ctype.name,
                                model.P_LONG_NAME: ctype.name})
                self._node_by_key[key] = node
            return node
        base = ct.base_type(ctype)
        if isinstance(base, ct.Primitive):
            key = (model.PRIMITIVE, base.name)
            node = self._node_by_key.get(key)
            if node is None:
                node = self.graph.add_node(
                    *model.labels_for(model.PRIMITIVE),
                    properties={model.P_TYPE: model.PRIMITIVE,
                                model.P_SHORT_NAME: base.name,
                                model.P_NAME: base.name,
                                model.P_LONG_NAME: base.name})
                self._node_by_key[key] = node
            return node
        if isinstance(base, ct.RecordType):
            node_type = model.STRUCT if base.kind == "struct" \
                else model.UNION
            found = self._find_tag_node(node_type, base.tag)
            if found is not None:
                return found
            # forward-declared only: emit a *_decl node
            decl_type = model.STRUCT_DECL if base.kind == "struct" \
                else model.UNION_DECL
            return self._tag_decl_node(decl_type, base.tag)
        if isinstance(base, ct.EnumType):
            found = self._find_tag_node(model.ENUM_DEF, base.tag)
            if found is not None:
                return found
            return self._tag_decl_node(model.ENUM_DEF, base.tag)
        if isinstance(base, ct.FunctionType):
            signature = base.spelled()
            key = (model.FUNCTION_TYPE, signature)
            node = self._node_by_key.get(key)
            if node is None:
                node = self.graph.add_node(
                    *model.labels_for(model.FUNCTION_TYPE),
                    properties={model.P_TYPE: model.FUNCTION_TYPE,
                                model.P_SHORT_NAME: signature,
                                model.P_NAME: signature,
                                model.P_LONG_NAME: signature})
                self._node_by_key[key] = node
            return node
        return None

    def _find_tag_node(self, node_type: str,
                       tag: Optional[str]) -> Optional[int]:
        if tag is None:
            return None
        for prefix in ("S", "U", "E"):
            node = self._node_by_key.get((node_type, f"c:@{prefix}@{tag}"))
            if node is not None:
                return node
        return None

    def _tag_decl_node(self, node_type: str, tag: Optional[str]) -> int:
        name = tag or "<anonymous>"
        key = (node_type, f"fwd@{node_type}@{name}")
        node = self._node_by_key.get(key)
        if node is None:
            node = self.graph.add_node(
                *model.labels_for(node_type),
                properties={model.P_TYPE: node_type,
                            model.P_SHORT_NAME: name,
                            model.P_NAME: name,
                            model.P_LONG_NAME: name})
            self._node_by_key[key] = node
        return node

    # -- structural edges ------------------------------------------------------------

    def _structure_edges(self, info: sema.UnitInfo) -> None:
        for symbol in info.symbols:
            node = self._symbol_nodes[id(symbol)]
            if symbol.kind in (sema.KIND_FUNCTION, sema.KIND_FUNCTION_DECL):
                self._function_type_edges(symbol, node)
            elif symbol.kind in (sema.KIND_GLOBAL, sema.KIND_GLOBAL_DECL,
                                 sema.KIND_LOCAL, sema.KIND_STATIC_LOCAL,
                                 sema.KIND_PARAMETER):
                self._isa_type_edge(node, symbol)
                if symbol.kind == sema.KIND_PARAMETER and \
                        symbol.parent is not None:
                    parent = self._symbol_nodes.get(id(symbol.parent))
                    if parent is not None:
                        self.graph.add_edge(
                            parent, node, model.HAS_PARAM,
                            properties={model.P_INDEX: symbol.position})
                elif symbol.kind in (sema.KIND_LOCAL,
                                     sema.KIND_STATIC_LOCAL) and \
                        symbol.parent is not None:
                    parent = self._symbol_nodes.get(id(symbol.parent))
                    if parent is not None:
                        self.graph.add_edge(parent, node, model.HAS_LOCAL)
            elif symbol.kind == sema.KIND_FIELD:
                if symbol.parent is not None:
                    parent = self._symbol_nodes.get(id(symbol.parent))
                    if parent is not None and not self._has_edge(
                            parent, node, model.CONTAINS):
                        self.graph.add_edge(parent, node, model.CONTAINS)
                self._isa_type_edge(node, symbol)
            elif symbol.kind == sema.KIND_ENUMERATOR:
                if symbol.parent is not None:
                    parent = self._symbol_nodes.get(id(symbol.parent))
                    if parent is not None and not self._has_edge(
                            parent, node, model.CONTAINS):
                        self.graph.add_edge(parent, node, model.CONTAINS)
            elif symbol.kind == sema.KIND_TYPEDEF and \
                    symbol.type is not None:
                target = self._type_node(symbol.type)
                if target is not None and not self._has_edge(
                        node, target, model.ISA_TYPE):
                    self.graph.add_edge(node, target, model.ISA_TYPE)
            if symbol.matched_definition is not None:
                target = self._symbol_nodes.get(
                    id(symbol.matched_definition))
                if target is not None and not self._has_edge(
                        node, target, model.DECLARES):
                    self.graph.add_edge(node, target, model.DECLARES)

    def _function_type_edges(self, symbol: sema.Symbol, node: int) -> None:
        ftype = ct.strip_typedefs(symbol.type) if symbol.type else None
        if not isinstance(ftype, ct.FunctionType):
            return
        if self.graph.degree(node, types=(model.HAS_RET_TYPE,)):
            return  # same node already wired (shared header decl)
        return_node = self._type_node(ftype.return_type)
        if return_node is not None:
            self.graph.add_edge(
                node, return_node, model.HAS_RET_TYPE,
                properties=_type_use_properties(ftype.return_type))
        for index, param_type in enumerate(ftype.parameters):
            param_node = self._type_node(param_type)
            if param_node is not None:
                properties = _type_use_properties(param_type)
                properties[model.P_INDEX] = index
                self.graph.add_edge(node, param_node,
                                    model.HAS_PARAM_TYPE,
                                    properties=properties)

    def _isa_type_edge(self, node: int, symbol: sema.Symbol) -> None:
        if symbol.type is None:
            return
        if self.graph.degree(node, types=(model.ISA_TYPE,)):
            return
        target = self._type_node(symbol.type)
        if target is None:
            return
        properties = _type_use_properties(symbol.type)
        if symbol.bit_width is not None:
            properties[model.P_BIT_WIDTH] = symbol.bit_width
        self.graph.add_edge(node, target, model.ISA_TYPE,
                            properties=properties)

    def _has_edge(self, source: int, target: int, edge_type: str) -> bool:
        return any(self.graph.edge_target(edge_id) == target
                   for edge_id in self.graph.edges_of(
                       source, types=(edge_type,)))

    # -- reference edges --------------------------------------------------------------

    def _reference_edges(self, obj: ObjectFile) -> None:
        for decl in obj.info.tu.declarations:
            if isinstance(decl, c.FunctionDef):
                owner_symbol = next(
                    (s for s in obj.info.functions
                     if s.decl is decl), None)
                if owner_symbol is None:
                    continue
                owner = self._symbol_nodes[id(owner_symbol)]
                self._emit_stmt(decl.body, owner)
            elif isinstance(decl, c.VarDecl) and decl.initializer:
                owner_symbol = next(
                    (s for s in obj.info.symbols if s.decl is decl), None)
                if owner_symbol is None:
                    continue
                owner = self._symbol_nodes[id(owner_symbol)]
                self._emit_expr(decl.initializer, owner)

    def _emit_stmt(self, node: c.Node, owner: int) -> None:
        if isinstance(node, c.CompoundStmt):
            for item in node.body:
                self._emit_stmt(item, owner)
        elif isinstance(node, c.DeclStmt):
            for var in node.declarations:
                if var.initializer is not None:
                    self._emit_expr(var.initializer, owner)
        elif isinstance(node, c.ExprStmt):
            self._emit_expr(node.expression, owner)
        elif isinstance(node, c.IfStmt):
            self._emit_expr(node.condition, owner)
            self._emit_stmt(node.then_branch, owner)
            if node.else_branch is not None:
                self._emit_stmt(node.else_branch, owner)
        elif isinstance(node, c.WhileStmt):
            self._emit_expr(node.condition, owner)
            self._emit_stmt(node.body, owner)
        elif isinstance(node, c.DoStmt):
            self._emit_stmt(node.body, owner)
            self._emit_expr(node.condition, owner)
        elif isinstance(node, c.ForStmt):
            if node.init is not None:
                self._emit_stmt(node.init, owner)
            if node.condition is not None:
                self._emit_expr(node.condition, owner)
            if node.step is not None:
                self._emit_expr(node.step, owner)
            self._emit_stmt(node.body, owner)
        elif isinstance(node, c.ReturnStmt):
            if node.value is not None:
                self._emit_expr(node.value, owner)
        elif isinstance(node, c.SwitchStmt):
            self._emit_expr(node.condition, owner)
            self._emit_stmt(node.body, owner)
        elif isinstance(node, c.CaseStmt):
            if node.value is not None:
                self._emit_expr(node.value, owner)
            if node.body is not None:
                self._emit_stmt(node.body, owner)
        elif isinstance(node, c.LabelStmt):
            self._emit_stmt(node.body, owner)

    def _emit_expr(self, expr: c.Expr, owner: int,
                   writing: bool = False) -> None:
        """Emit reference edges for one expression tree.

        ``writing`` marks store context (assignment targets and
        ++/-- operands); compound assignments emit both directions.
        """
        if isinstance(expr, c.Identifier):
            self._emit_identifier(expr, owner, writing)
        elif isinstance(expr, c.Call):
            self._emit_call(expr, owner)
        elif isinstance(expr, c.Member):
            self._emit_member(expr, owner, writing)
        elif isinstance(expr, c.Index):
            self._emit_expr(expr.base, owner, writing)
            self._emit_expr(expr.index, owner)
        elif isinstance(expr, c.Assignment):
            compound = expr.op != "="
            self._emit_expr(expr.target, owner, writing=True)
            if compound:
                self._emit_expr(expr.target, owner)  # also reads
            self._emit_expr(expr.value, owner)
        elif isinstance(expr, c.Unary):
            self._emit_unary(expr, owner)
        elif isinstance(expr, c.SizeofType):
            edge_type = model.GETS_SIZE_OF if expr.op == "sizeof" \
                else model.GETS_ALIGN_OF
            target = self._type_node(expr.type)
            if target is not None:
                self.graph.add_edge(
                    owner, target, edge_type,
                    properties=model.range_properties("use", expr.range))
        elif isinstance(expr, c.Cast):
            target = self._type_node(expr.type)
            if target is not None:
                self.graph.add_edge(
                    owner, target, model.CASTS_TO,
                    properties=model.range_properties("use", expr.range))
            self._emit_expr(expr.operand, owner)
        elif isinstance(expr, c.Binary):
            self._emit_expr(expr.left, owner)
            self._emit_expr(expr.right, owner)
        elif isinstance(expr, c.Conditional):
            self._emit_expr(expr.condition, owner)
            self._emit_expr(expr.then_value, owner)
            self._emit_expr(expr.else_value, owner)
        elif isinstance(expr, c.Comma):
            self._emit_expr(expr.left, owner)
            self._emit_expr(expr.right, owner)
        elif isinstance(expr, c.InitList):
            for item in expr.items:
                self._emit_expr(item, owner)
        # literals: no edges

    def _emit_identifier(self, expr: c.Identifier, owner: int,
                         writing: bool) -> None:
        symbol = expr.symbol
        if symbol is None:
            return
        target = self._symbol_nodes.get(id(symbol))
        if target is None:
            return
        if symbol.kind == sema.KIND_ENUMERATOR:
            edge_type = model.USES_ENUMERATOR
        elif symbol.kind in (sema.KIND_FUNCTION, sema.KIND_FUNCTION_DECL):
            # a function name in value position is an implicit &f
            edge_type = model.TAKES_ADDRESS_OF
        elif writing:
            edge_type = model.WRITES
        else:
            edge_type = model.READS
        self._reference(owner, target, edge_type, expr.range, expr.range)

    def _emit_call(self, expr: c.Call, owner: int) -> None:
        callee = expr.callee
        if isinstance(callee, c.Identifier) and callee.symbol is not None \
                and callee.symbol.kind in (sema.KIND_FUNCTION,
                                           sema.KIND_FUNCTION_DECL):
            target = self._symbol_nodes.get(id(callee.symbol))
            if target is not None:
                # USE = the complete call site; NAME = the callee token
                self._reference(owner, target, model.CALLS, expr.range,
                                callee.range)
        else:
            # call through an expression (function pointer etc.)
            self._emit_expr(callee, owner)
        for argument in expr.arguments:
            self._emit_expr(argument, owner)

    def _emit_member(self, expr: c.Member, owner: int,
                     writing: bool) -> None:
        field = expr.resolved_field
        if field is not None:
            target = self._symbol_nodes.get(id(field))
            if target is not None:
                if writing:
                    edge_type = model.WRITES_MEMBER
                elif expr.arrow:
                    edge_type = model.DEREFERENCES_MEMBER
                else:
                    edge_type = model.READS_MEMBER
                self._reference(owner, target, edge_type, expr.range,
                                expr.name_range)
                if expr.arrow and not writing:
                    # p->x also reads the member value
                    self._reference(owner, target, model.READS_MEMBER,
                                    expr.range, expr.name_range)
        self._emit_expr(expr.base, owner)

    def _emit_unary(self, expr: c.Unary, owner: int) -> None:
        operand = expr.operand
        if expr.op == "&":
            if isinstance(operand, c.Identifier) and operand.symbol and \
                    operand.symbol.kind not in (sema.KIND_FUNCTION,
                                                sema.KIND_FUNCTION_DECL):
                target = self._symbol_nodes.get(id(operand.symbol))
                if target is not None:
                    self._reference(owner, target,
                                    model.TAKES_ADDRESS_OF, expr.range,
                                    operand.range)
                    return
            if isinstance(operand, c.Member) and operand.resolved_field:
                target = self._symbol_nodes.get(
                    id(operand.resolved_field))
                if target is not None:
                    self._reference(owner, target,
                                    model.TAKES_ADDRESS_OF_MEMBER,
                                    expr.range, operand.name_range)
                    self._emit_expr(operand.base, owner)
                    return
            self._emit_expr(operand, owner)
        elif expr.op == "*":
            if isinstance(operand, c.Identifier) and operand.symbol:
                target = self._symbol_nodes.get(id(operand.symbol))
                if target is not None:
                    self._reference(owner, target, model.DEREFERENCES,
                                    expr.range, operand.range)
                    self._reference(owner, target, model.READS,
                                    operand.range, operand.range)
                    return
            self._emit_expr(operand, owner)
        elif expr.op in ("++", "--", "post++", "post--"):
            self._emit_expr(operand, owner, writing=True)
            self._emit_expr(operand, owner)
        else:
            self._emit_expr(operand, owner)

    def _reference(self, owner: int, target: int, edge_type: str,
                   use_range: SourceRange, name_range: SourceRange) -> None:
        properties = model.range_properties("use", use_range)
        properties.update(model.range_properties("name", name_range))
        self.graph.add_edge(owner, target, edge_type,
                            properties=properties)

    # ==================================================================
    # macro uses (needs all function extents first)
    # ==================================================================

    def _index_function_extents(self) -> None:
        for extents in self._function_extents.values():
            extents.sort()

    def register_function_extent(self, file_id: int, start: int, end: int,
                                 node: int) -> None:
        self._function_extents.setdefault(file_id, []).append(
            (start, end, node))

    def _enclosing_entity(self, file_id: int, line: int) -> int | None:
        extents = self._function_extents.get(file_id)
        if extents:
            position = bisect.bisect_right(extents,
                                           (line, float("inf"),
                                            float("inf"))) - 1
            if position >= 0:
                start, end, node = extents[position]
                if start <= line <= end:
                    return node
        return self._file_nodes.get(file_id)

    def _extract_macro_uses(self, obj: ObjectFile) -> None:
        for expansion in obj.unit.expansions:
            if expansion.parent_macro is not None:
                continue  # nested expansions attribute to the outer use
            macro = self._macro_nodes.get(expansion.macro_name)
            if macro is None:
                continue
            owner = self._enclosing_entity(expansion.use_range.file_id,
                                           expansion.use_range.start_line)
            if owner is not None:
                self._reference(owner, macro, model.EXPANDS_MACRO,
                                expansion.use_range, expansion.use_range)
        for interrogation in obj.unit.interrogations:
            macro = self._macro_nodes.get(interrogation.macro_name)
            if macro is None:
                macro = self._macro_node(interrogation.macro_name, None)
            owner = self._enclosing_entity(
                interrogation.use_range.file_id,
                interrogation.use_range.start_line)
            if owner is not None:
                self._reference(owner, macro, model.INTERROGATES_MACRO,
                                interrogation.use_range,
                                interrogation.use_range)

    # ==================================================================
    # link layer
    # ==================================================================

    def extract_module(self, module, build: Build) -> None:
        module_node = self._module_node(module.path)
        link_order = 0
        for obj in module.objects:
            source_node = self._file_nodes.get(
                build.registry.open(obj.source_path).file_id)
            if obj.path in module.implicit_object_paths:
                # compiled inline on the link line: paper Figure 2 shows
                # prog -compiled_from-> main.c with no main.o node
                if source_node is not None:
                    self.graph.add_edge(module_node, source_node,
                                        model.COMPILED_FROM)
                continue
            object_node = self._module_node(obj.path)
            if source_node is not None and not self._has_edge(
                    object_node, source_node, model.COMPILED_FROM):
                self.graph.add_edge(object_node, source_node,
                                    model.COMPILED_FROM)
            self.graph.add_edge(
                module_node, object_node, model.LINKED_FROM,
                properties={model.P_LINK_ORDER: link_order})
            link_order += 1
        for library in module.libraries:
            library_node = self._module_node(f"lib{library}",
                                             is_library=True)
            self.graph.add_edge(module_node, library_node,
                                model.LINKED_FROM_LIB)
        for resolution in module.resolutions.values():
            definition_node = self._symbol_nodes.get(
                id(resolution.definition))
            if definition_node is None:
                continue
            if not self._has_edge(module_node, definition_node,
                                  model.LINK_DECLARES):
                self.graph.add_edge(module_node, definition_node,
                                    model.LINK_DECLARES)
            for reference_symbol, _obj in resolution.references:
                reference_node = self._symbol_nodes.get(
                    id(reference_symbol))
                if reference_node is not None and not self._has_edge(
                        reference_node, definition_node,
                        model.LINK_MATCHES):
                    self.graph.add_edge(reference_node, definition_node,
                                        model.LINK_MATCHES)

    def _redirect_references_to_definitions(self) -> None:
        """Cross-link references to resolved definitions.

        Inside one translation unit a call site can only see the
        prototype, so reference edges initially target ``*_decl``
        nodes. Once ``declares`` (in-unit) and ``link_matches``
        (cross-unit) pairings are known, every reference into a decl
        node with exactly one definition is re-pointed at the
        definition — this is the "cross-linking of information" the
        paper credits its extractor with, and what makes Figure 2 show
        ``main -calls-> bar`` (the definition) directly.
        """
        graph = self.graph
        decl_types = (model.FUNCTION_DECL, model.GLOBAL_DECL)
        for decl_type in decl_types:
            for decl_node in list(graph.nodes_with_label(decl_type)):
                definitions = {
                    graph.edge_target(edge_id)
                    for edge_id in graph.edges_of(
                        decl_node, types=(model.DECLARES,
                                          model.LINK_MATCHES))
                    if graph.edge_source(edge_id) == decl_node}
                if len(definitions) != 1:
                    continue
                definition = next(iter(definitions))
                incoming = [
                    edge_id for edge_id in graph.edges_of(
                        decl_node, types=model.REFERENCE_EDGE_TYPES)
                    if graph.edge_target(edge_id) == decl_node]
                for edge_id in incoming:
                    source = graph.edge_source(edge_id)
                    edge_type = graph.edge_type(edge_id)
                    properties = graph.edge_properties(edge_id)
                    graph.remove_edge(edge_id)
                    graph.add_edge(source, definition, edge_type,
                                   properties=properties)

    def _module_node(self, path: str, is_library: bool = False) -> int:
        key = (model.MODULE, f"module@{path}")
        node = self._node_by_key.get(key)
        if node is None:
            node = self.graph.add_node(
                *model.labels_for(model.MODULE),
                properties={
                    model.P_TYPE: model.MODULE,
                    model.P_SHORT_NAME: posixpath.basename(path),
                    model.P_NAME: path,
                    model.P_LONG_NAME: path,
                })
            self._node_by_key[key] = node
        return node


def _node_type_for(symbol: sema.Symbol) -> str:
    mapping = {
        sema.KIND_FUNCTION: model.FUNCTION,
        sema.KIND_FUNCTION_DECL: model.FUNCTION_DECL,
        sema.KIND_GLOBAL: model.GLOBAL,
        sema.KIND_GLOBAL_DECL: model.GLOBAL_DECL,
        sema.KIND_LOCAL: model.LOCAL,
        sema.KIND_STATIC_LOCAL: model.STATIC_LOCAL,
        sema.KIND_PARAMETER: model.PARAMETER,
        sema.KIND_FIELD: model.FIELD,
        sema.KIND_ENUMERATOR: model.ENUMERATOR,
        sema.KIND_TYPEDEF: model.TYPEDEF,
        sema.KIND_STRUCT: model.STRUCT,
        sema.KIND_STRUCT_DECL: model.STRUCT_DECL,
        sema.KIND_UNION: model.UNION,
        sema.KIND_UNION_DECL: model.UNION_DECL,
        sema.KIND_ENUM: model.ENUM_DEF,
        sema.KIND_ENUM_DECL: model.ENUM_DEF,
    }
    return mapping[symbol.kind]


def _long_name(symbol: sema.Symbol) -> str:
    stripped = ct.strip_typedefs(symbol.type) if symbol.type else None
    if isinstance(stripped, ct.FunctionType) and symbol.kind in (
            sema.KIND_FUNCTION, sema.KIND_FUNCTION_DECL):
        params = ",".join(param.spelled()
                          for param in stripped.parameters)
        return f"{symbol.qualified_name}({params})"
    return symbol.qualified_name


def _type_use_properties(ctype: ct.CType) -> dict:
    properties: dict = {}
    qualifiers = ct.qualifier_code(ctype)
    if qualifiers:
        properties[model.P_QUALIFIERS] = qualifiers
    lengths = ct.array_lengths(ctype)
    if lengths:
        properties[model.P_ARRAY_LENGTHS] = lengths
    return properties


def _point_range(location) -> SourceRange:
    return SourceRange(location.file_id, location.line, location.column,
                       location.line, location.column)


def extract_build(build: Build) -> PropertyGraph:
    """One-shot: dependency graph of a finished build."""
    extractor = DependencyGraphExtractor()
    return extractor.extract_build(build)
