"""The Frappé graph model vocabulary (paper Tables 1, 2 and 6).

Property keys are stored lower-case; the paper's queries spell them in
both cases (``SHORT_NAME`` in Figure 5, ``short_name`` in Figure 3)
and our Cypher parser normalizes to lower case. One deliberate
normalization: the paper's Figure 4 writes ``NAME_START_COLUMN`` while
its own Table 2 lists ``NAME_START_COL``; we follow Table 2 and note
the discrepancy in EXPERIMENTS.md.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Node types (Table 1)
# --------------------------------------------------------------------------

DIRECTORY = "directory"
ENUM_DEF = "enum_def"
ENUMERATOR = "enumerator"
FIELD = "field"
FILE = "file"
FUNCTION = "function"
FUNCTION_DECL = "function_decl"
FUNCTION_TYPE = "function_type"
GLOBAL = "global"
GLOBAL_DECL = "global_decl"
LOCAL = "local"
MACRO = "macro"
MODULE = "module"
PARAMETER = "parameter"
PRIMITIVE = "primitive"
STATIC_LOCAL = "static_local"
STRUCT = "struct"
STRUCT_DECL = "struct_decl"
TYPEDEF = "typedef"
UNION = "union"
UNION_DECL = "union_decl"

NODE_TYPES = (
    DIRECTORY, ENUM_DEF, ENUMERATOR, FIELD, FILE, FUNCTION, FUNCTION_DECL,
    FUNCTION_TYPE, GLOBAL, GLOBAL_DECL, LOCAL, MACRO, MODULE, PARAMETER,
    PRIMITIVE, STATIC_LOCAL, STRUCT, STRUCT_DECL, TYPEDEF, UNION,
    UNION_DECL,
)

# --------------------------------------------------------------------------
# Edge types (Table 1)
# --------------------------------------------------------------------------

CALLS = "calls"
CASTS_TO = "casts_to"
COMPILED_FROM = "compiled_from"
CONTAINS = "contains"
DECLARES = "declares"
DEREFERENCES = "dereferences"
DEREFERENCES_MEMBER = "dereferences_member"
DIR_CONTAINS = "dir_contains"
EXPANDS_MACRO = "expands_macro"
FILE_CONTAINS = "file_contains"
GETS_ALIGN_OF = "gets_align_of"
GETS_SIZE_OF = "gets_size_of"
HAS_LOCAL = "has_local"
HAS_PARAM = "has_param"
HAS_PARAM_TYPE = "has_param_type"
HAS_RET_TYPE = "has_ret_type"
INCLUDES = "includes"
INTERROGATES_MACRO = "interrogates_macro"
ISA_TYPE = "isa_type"
LINK_DECLARES = "link_declares"
LINK_MATCHES = "link_matches"
LINKED_FROM = "linked_from"
LINKED_FROM_LIB = "linked_from_lib"
READS = "reads"
READS_MEMBER = "reads_member"
TAKES_ADDRESS_OF = "takes_address_of"
TAKES_ADDRESS_OF_MEMBER = "takes_address_of_member"
USES_ENUMERATOR = "uses_enumerator"
WRITES = "writes"
WRITES_MEMBER = "writes_member"

EDGE_TYPES = (
    CALLS, CASTS_TO, COMPILED_FROM, CONTAINS, DECLARES, DEREFERENCES,
    DEREFERENCES_MEMBER, DIR_CONTAINS, EXPANDS_MACRO, FILE_CONTAINS,
    GETS_ALIGN_OF, GETS_SIZE_OF, HAS_LOCAL, HAS_PARAM, HAS_PARAM_TYPE,
    HAS_RET_TYPE, INCLUDES, INTERROGATES_MACRO, ISA_TYPE, LINK_DECLARES,
    LINK_MATCHES, LINKED_FROM, LINKED_FROM_LIB, READS, READS_MEMBER,
    TAKES_ADDRESS_OF, TAKES_ADDRESS_OF_MEMBER, USES_ENUMERATOR, WRITES,
    WRITES_MEMBER,
)

#: reference edges whose USE_*/NAME_* properties locate a code mention.
REFERENCE_EDGE_TYPES = (
    CALLS, CASTS_TO, DEREFERENCES, DEREFERENCES_MEMBER, EXPANDS_MACRO,
    GETS_ALIGN_OF, GETS_SIZE_OF, INTERROGATES_MACRO, READS, READS_MEMBER,
    TAKES_ADDRESS_OF, TAKES_ADDRESS_OF_MEMBER, USES_ENUMERATOR, WRITES,
    WRITES_MEMBER,
)

# --------------------------------------------------------------------------
# Property keys (Table 2)
# --------------------------------------------------------------------------

P_TYPE = "type"
P_SHORT_NAME = "short_name"
P_NAME = "name"
P_LONG_NAME = "long_name"
P_VALUE = "value"
P_VARIADIC = "variadic"
P_VIRTUAL = "virtual"
P_IN_MACRO = "in_macro"

P_USE_FILE_ID = "use_file_id"
P_USE_START_LINE = "use_start_line"
P_USE_START_COL = "use_start_col"
P_USE_END_LINE = "use_end_line"
P_USE_END_COL = "use_end_col"
P_NAME_FILE_ID = "name_file_id"
P_NAME_START_LINE = "name_start_line"
P_NAME_START_COL = "name_start_col"
P_NAME_END_LINE = "name_end_line"
P_NAME_END_COL = "name_end_col"
P_ARRAY_LENGTHS = "array_lengths"
P_BIT_WIDTH = "bit_width"
P_QUALIFIERS = "qualifiers"
P_INDEX = "index"
P_LINK_ORDER = "link_order"
#: set on file nodes whose unit failed under a keep-going build.
P_INDEX_STATUS = "index_status"
P_INDEX_ERROR = "index_error"

#: the keys kept in the lucene-style node auto index.
AUTO_INDEX_KEYS = (P_SHORT_NAME, P_NAME, P_LONG_NAME, P_TYPE)

# --------------------------------------------------------------------------
# Grouped labels (Table 6 / paper Section 6.2)
# --------------------------------------------------------------------------

#: named program entities — Table 6's :symbol group.
SYMBOL_GROUP = frozenset({
    FUNCTION, FUNCTION_DECL, GLOBAL, GLOBAL_DECL, LOCAL, STATIC_LOCAL,
    PARAMETER, FIELD, ENUMERATOR, MACRO, TYPEDEF, STRUCT, STRUCT_DECL,
    UNION, UNION_DECL, ENUM_DEF,
})

#: things usable as a type — the :type group.
TYPE_GROUP = frozenset({
    STRUCT, STRUCT_DECL, UNION, UNION_DECL, ENUM_DEF, TYPEDEF, PRIMITIVE,
    FUNCTION_TYPE,
})

#: things that contain other entities — the :container group
#: (the paper's example: "struct, union, enum").
CONTAINER_GROUP = frozenset({
    STRUCT, UNION, ENUM_DEF, FILE, DIRECTORY, MODULE,
})

GROUP_LABELS = {
    "symbol": SYMBOL_GROUP,
    "type": TYPE_GROUP,
    "container": CONTAINER_GROUP,
}


def labels_for(node_type: str) -> tuple[str, ...]:
    """All labels of a node: its type plus its Table 6 groups."""
    labels = [node_type]
    for group, members in GROUP_LABELS.items():
        if node_type in members:
            labels.append(group)
    return tuple(labels)


def range_properties(prefix: str, source_range) -> dict[str, int]:
    """USE_*/NAME_* edge properties from a source range (Table 2)."""
    return {
        f"{prefix}_file_id": source_range.file_id,
        f"{prefix}_start_line": source_range.start_line,
        f"{prefix}_start_col": source_range.start_column,
        f"{prefix}_end_line": source_range.end_line,
        f"{prefix}_end_col": source_range.end_column,
    }
