"""The Section 4 use cases as a typed Python API.

Each helper mirrors one of the paper's figures, implemented directly
against the :class:`~repro.graphdb.view.GraphView` (the "embedded
mode" the paper resorts to for performance); the benchmark harness
runs the same workloads through Cypher text as well, so the two paths
can be cross-checked.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional

from repro.core import model
from repro.graphdb import algo
from repro.graphdb.view import Direction, GraphView


@dataclasses.dataclass(frozen=True)
class Reference:
    """One code mention of a symbol (a reference edge)."""

    edge_id: int
    from_node: int
    to_node: int
    edge_type: str
    use_file_id: Optional[int]
    use_start_line: Optional[int]
    use_start_col: Optional[int]

    @classmethod
    def from_edge(cls, view: GraphView, edge_id: int) -> "Reference":
        properties = view.edge_properties(edge_id)
        return cls(edge_id, view.edge_source(edge_id),
                   view.edge_target(edge_id), view.edge_type(edge_id),
                   properties.get(model.P_USE_FILE_ID),
                   properties.get(model.P_USE_START_LINE),
                   properties.get(model.P_USE_START_COL))


# --------------------------------------------------------------------------
# 4.1 Code search (Figure 3)
# --------------------------------------------------------------------------

def code_search(view: GraphView, name: str,
                node_type: Optional[str] = None,
                module: Optional[str] = None) -> list[int]:
    """Find symbols by name, optionally filtered by type and module.

    ``name`` supports Lucene wildcards (``*``, ``?``) and fuzzy
    (``term~``) syntax, as the paper's auto-index search does. The
    module filter keeps only entities contained in files reachable
    from the module via ``compiled_from``/``linked_from`` edges —
    exactly the paper's Figure 3 shape.
    """
    query = f"short_name: {name}"
    if node_type:
        query = f"({query}) AND type: {node_type}"
    candidates = list(view.indexes.query(query))
    if module is None:
        return candidates
    module_files = files_of_module(view, module)
    result = []
    for node_id in candidates:
        for edge_id in view.edges_of(node_id, Direction.IN,
                                     (model.FILE_CONTAINS,)):
            if view.edge_source(edge_id) in module_files:
                result.append(node_id)
                break
    return result


def files_of_module(view: GraphView, module_short_name: str) -> set[int]:
    """All file nodes in the transitive build closure of a module."""
    files: set[int] = set()
    for module_node in view.indexes.lookup(model.P_SHORT_NAME,
                                           module_short_name):
        closure = algo.reachable_nodes(
            view, module_node,
            (model.COMPILED_FROM, model.LINKED_FROM), Direction.OUT,
            include_start=True)
        for node_id in closure:
            if model.FILE in view.node_labels(node_id):
                files.add(node_id)
    return files


# --------------------------------------------------------------------------
# 4.2 Cross referencing (Figure 4)
# --------------------------------------------------------------------------

def goto_definition(view: GraphView, name: str, file_id: int, line: int,
                    column: int) -> list[int]:
    """Definitions of the symbol referenced at a cursor position.

    Index-lookup the name, then keep candidates with an incoming
    reference edge whose NAME_* range covers (file, line, column) —
    the paper's Figure 4 formulation.
    """
    matches = []
    for node_id in view.indexes.lookup(model.P_SHORT_NAME, name):
        for edge_id in view.edges_of(node_id, Direction.IN):
            properties = view.edge_properties(edge_id)
            if _name_range_covers(properties, file_id, line, column):
                matches.append(node_id)
                break
    return matches


def _name_range_covers(properties: dict, file_id: int, line: int,
                       column: int) -> bool:
    if properties.get(model.P_NAME_FILE_ID) != file_id:
        return False
    start_line = properties.get(model.P_NAME_START_LINE)
    end_line = properties.get(model.P_NAME_END_LINE)
    if start_line is None or end_line is None:
        return False
    if not start_line <= line <= end_line:
        return False
    if line == start_line and \
            column < properties.get(model.P_NAME_START_COL, 1):
        return False
    if line == end_line and \
            column > properties.get(model.P_NAME_END_COL, 1 << 30):
        return False
    return True


def find_references(view: GraphView, node_id: int,
                    edge_types: Iterable[str] | None = None,
                    ) -> list[Reference]:
    """All code mentions of a symbol (the incoming reference edges)."""
    types = tuple(edge_types) if edge_types is not None \
        else model.REFERENCE_EDGE_TYPES
    return [Reference.from_edge(view, edge_id)
            for edge_id in view.edges_of(node_id, Direction.IN, types)]


# --------------------------------------------------------------------------
# 4.3 Debugging (Figure 5)
# --------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class FieldWriter:
    """A function that writes the field of interest, plus the write."""

    writer_node: int
    write_edge: int
    use_start_line: Optional[int]


def writers_of_field_between(view: GraphView, from_function: str,
                             to_function: str, container: str,
                             field_name: str) -> list[FieldWriter]:
    """The paper's Figure 5: who writes ``container.field`` on a call
    path bounded by two call sites of *from_function*?

    For each call ``from -> direct`` whose USE_START_LINE is not after
    the call ``from -> to``, any writer of the field reachable from
    ``direct`` via calls is a candidate for the invalid value.
    """
    field_nodes = _fields_of_container(view, container, field_name)
    writers: dict[tuple[int, int], FieldWriter] = {}
    write_edges: dict[int, list[int]] = {}
    for field_node in field_nodes:
        for edge_id in view.edges_of(field_node, Direction.IN,
                                     (model.WRITES_MEMBER,)):
            write_edges.setdefault(view.edge_source(edge_id),
                                   []).append(edge_id)
    if not write_edges:
        return []
    for from_node in view.indexes.lookup(model.P_SHORT_NAME,
                                         from_function):
        to_lines = []
        for edge_id in view.edges_of(from_node, Direction.OUT,
                                     (model.CALLS,)):
            target = view.edge_target(edge_id)
            if view.node_property(target, model.P_SHORT_NAME) == \
                    to_function:
                line = view.edge_property(edge_id,
                                          model.P_USE_START_LINE)
                if line is not None:
                    to_lines.append(line)
        if not to_lines:
            continue
        bound = max(to_lines)
        for edge_id in view.edges_of(from_node, Direction.OUT,
                                     (model.CALLS,)):
            line = view.edge_property(edge_id, model.P_USE_START_LINE)
            if line is None or line > bound:
                continue
            direct = view.edge_target(edge_id)
            reachable = algo.reachable_nodes(
                view, direct, (model.CALLS,), Direction.OUT,
                include_start=True)
            for writer_node in reachable & set(write_edges):
                for write_edge in write_edges[writer_node]:
                    key = (writer_node, write_edge)
                    if key not in writers:
                        writers[key] = FieldWriter(
                            writer_node, write_edge,
                            view.edge_property(write_edge,
                                               model.P_USE_START_LINE))
    return sorted(writers.values(),
                  key=lambda w: (w.writer_node, w.write_edge))


def _fields_of_container(view: GraphView, container: str,
                         field_name: str) -> list[int]:
    fields = []
    for container_node in view.indexes.lookup(model.P_SHORT_NAME,
                                              container):
        for edge_id in view.edges_of(container_node, Direction.OUT,
                                     (model.CONTAINS,)):
            field_node = view.edge_target(edge_id)
            if view.node_property(field_node, model.P_SHORT_NAME) == \
                    field_name:
                fields.append(field_node)
    return fields


# --------------------------------------------------------------------------
# 4.4 Code comprehension (Figure 6 + shortest paths)
# --------------------------------------------------------------------------

def call_closure(view: GraphView, function_short_name: str,
                 direction: Direction = Direction.OUT) -> set[int]:
    """Transitive closure of calls from/to a function (Figure 6).

    ``Direction.OUT`` gives the backward slice (everything the seed
    depends on); ``Direction.IN`` the forward slice (everything that
    could be affected by changing the seed). Runs via the embedded
    traversal — the sub-second path of Section 6.1.
    """
    result: set[int] = set()
    for node_id in view.indexes.lookup(model.P_SHORT_NAME,
                                       function_short_name):
        result |= algo.reachable_nodes(view, node_id, (model.CALLS,),
                                       direction)
    return result


def dependency_cycles(view: GraphView,
                      edge_types: Iterable[str] = (model.CALLS,),
                      ) -> list[list[int]]:
    """Dependency cycles over the given edge types.

    ``(model.CALLS,)`` finds mutual/self recursion in the call graph;
    ``(model.INCLUDES,)`` finds header-inclusion cycles — the
    structured-result queries the paper's introduction motivates the
    map presentation with.
    """
    return algo.strongly_connected_components(view, tuple(edge_types))


def unreferenced_functions(view: GraphView,
                           entry_points: Iterable[str] = ("main",
                                                          "start_kernel"),
                           ) -> list[int]:
    """Candidate dead code: defined functions nothing refers to.

    A function is reported when it has no incoming ``calls`` or
    ``takes_address_of`` edge (address-taken functions may be invoked
    through pointers, so they do not count as dead) and is not a known
    entry point. This is the "identifying architectural issues" class
    of query from the paper's introduction.
    """
    entry_names = set(entry_points)
    dead = []
    for node_id in view.nodes_with_label(model.FUNCTION):
        if view.node_property(node_id, model.P_SHORT_NAME) in \
                entry_names:
            continue
        if view.degree(node_id, Direction.IN,
                       (model.CALLS, model.TAKES_ADDRESS_OF)):
            continue
        dead.append(node_id)
    return dead


def entry_point_path(view: GraphView, entry: str,
                     target: str) -> Optional[list[int]]:
    """One shortest call path from an entry point to a target."""
    entries = list(view.indexes.lookup(model.P_SHORT_NAME, entry))
    targets = set(view.indexes.lookup(model.P_SHORT_NAME, target))
    best: Optional[list[int]] = None
    for source in entries:
        for destination in targets:
            path = algo.shortest_path(view, source, destination,
                                      (model.CALLS,), Direction.OUT)
            if path is not None and (best is None
                                     or len(path) < len(best)):
                best = path
    return best
