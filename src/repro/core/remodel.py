"""The Section 6.2 modelling alternative: references as nodes.

The paper: "One workaround for a lack of hyper edge support is to
instead model references as nodes. For example, ``foo -[:calls]->
bar``, where an edge property associates the containing file, would
become ``foo -[:calls]-> callsite -[:calls]-> bar`` and ``file
-[:contains]-> callsite``. With this option, specifying a match for
the references associated with a particular file improves, but
specifying matches in general becomes at best less succinct..."

:func:`reify_references` performs exactly that transformation;
benchmark E13 measures both sides of the trade-off: per-file reference
lookup (node model wins) vs. simple expansion fan-out and storage
(edge model wins).
"""

from __future__ import annotations

from repro.core import model
from repro.graphdb import PropertyGraph
from repro.graphdb.graph import clone_graph
from repro.graphdb.view import Direction, GraphView

#: label given to reified reference nodes.
CALLSITE = "callsite"


def reify_references(view: GraphView,
                     edge_types: tuple[str, ...] = model.REFERENCE_EDGE_TYPES,
                     ) -> PropertyGraph:
    """Return a copy of *view* with reference edges turned into nodes.

    Every reference edge ``a -[t {props}]-> b`` becomes::

        a -[t]-> site -[t]-> b      (site carries the USE_*/NAME_* props)
        file -[contains]-> site     (via the USE_FILE_ID property)

    File association uses the file *node* id stored by the extractor /
    generator in ``use_file_id``; references without one simply get no
    containment edge (like macro-generated code with no stable file).
    """
    graph = clone_graph(view)
    reference_ids = [edge_id for edge_id in graph.edge_ids()
                     if graph.edge_type(edge_id) in edge_types]
    for edge_id in reference_ids:
        source = graph.edge_source(edge_id)
        target = graph.edge_target(edge_id)
        edge_type = graph.edge_type(edge_id)
        properties = graph.edge_properties(edge_id)
        graph.remove_edge(edge_id)
        site = graph.add_node(
            CALLSITE,
            properties={model.P_TYPE: CALLSITE,
                        model.P_SHORT_NAME: edge_type,
                        **properties})
        graph.add_edge(source, site, edge_type)
        graph.add_edge(site, target, edge_type)
        file_node = properties.get(model.P_USE_FILE_ID)
        if isinstance(file_node, int) and graph.has_node(file_node) \
                and model.FILE in graph.node_labels(file_node):
            graph.add_edge(file_node, site, model.CONTAINS)
    return graph


def references_in_file_edge_model(view: GraphView, file_node: int,
                                  ) -> list[int]:
    """Edge-model query: all reference edges located in one file.

    Without hyper edges the only general way is to scan reference
    edges and filter on the USE_FILE_ID property — "much clumsier than
    it could be" per the paper.
    """
    matches = []
    for edge_id in view.edge_ids():
        if view.edge_type(edge_id) not in model.REFERENCE_EDGE_TYPES:
            continue
        if view.edge_property(edge_id, model.P_USE_FILE_ID) == file_node:
            matches.append(edge_id)
    return matches


def references_in_file_node_model(view: GraphView, file_node: int,
                                  ) -> list[int]:
    """Node-model query: one containment expansion from the file."""
    return [view.edge_target(edge_id)
            for edge_id in view.edges_of(file_node, Direction.OUT,
                                         (model.CONTAINS,))
            if CALLSITE in view.node_labels(view.edge_target(edge_id))]
