"""The Frappé facade — what a downstream user drives.

Typical flows::

    # index a codebase from sources + build commands
    frappe = Frappe.index_sources(
        {"foo.h": ..., "foo.c": ..., "main.c": ...},
        build_script=\"\"\"
            gcc foo.c -c -o foo.o
            gcc main.c foo.o -o prog
        \"\"\")

    # query it
    frappe.query("MATCH (n:function) RETURN n.short_name")
    frappe.search("pci_*", node_type="function")
    frappe.backward_slice("pci_read_bases")

    # persist and reopen as a page-cached disk store
    frappe.save("/var/lib/frappe/kernel")
    frappe = Frappe.open("/var/lib/frappe/kernel")
"""

from __future__ import annotations

import dataclasses
import warnings
from concurrent.futures import Future
from typing import Any, Iterable, Mapping, Optional

from repro.build.buildsys import FAIL_FAST, Build, BuildReport
from repro.core import model, queries, slicing
from repro.core.config import StoreConfig
from repro.core.extractor import extract_build
from repro.cypher import CypherEngine, QueryOptions, Result
from repro.graphdb import PropertyGraph, stats
from repro.graphdb.storage import GraphStore
from repro.graphdb.view import Direction, GraphView
from repro.lang.source import VirtualFileSystem
from repro.obs import (MetricsSnapshot, Observability, SlowQueryEntry,
                       Span)
from repro.server import Executor


class Frappe:
    """A queryable dependency graph of one codebase."""

    def __init__(self, view: GraphView,
                 default_timeout: float | None = None,
                 obs: Observability | None = None,
                 use_reachability_rewrite: bool = True,
                 use_cost_based_planner: bool = True,
                 execution_mode: str = "auto",
                 morsel_size: int | None = None,
                 parallelism: int = 0,
                 use_compiled_kernels: bool = True,
                 use_csr_adjacency: bool = True) -> None:
        self.view = view
        #: one observability bundle per instance: the engine, page
        #: cache, store reader, indexes and traversals all emit into
        #: its registry
        self.obs = obs if obs is not None else Observability()
        attach = getattr(view, "attach_metrics", None)
        if attach is not None:
            attach(self.obs.registry)
        engine_kw: dict[str, Any] = {}
        if morsel_size is not None:
            engine_kw["morsel_size"] = morsel_size
        self.engine = CypherEngine(
            view, default_timeout, obs=self.obs,
            use_reachability_rewrite=use_reachability_rewrite,
            use_cost_based_planner=use_cost_based_planner,
            execution_mode=execution_mode, parallelism=parallelism,
            use_compiled_kernels=use_compiled_kernels,
            use_csr_adjacency=use_csr_adjacency, **engine_kw)
        #: per-unit outcomes of the build this graph came from (None
        #: for stores opened from disk)
        self.build_report: BuildReport | None = None
        #: lazily-started concurrent serving executor (query_async)
        self._executor: Executor | None = None

    # -- construction -------------------------------------------------------------

    @classmethod
    def index_build(cls, build: Build,
                    default_timeout: float | None = None) -> "Frappe":
        """Extract a dependency graph from a finished build."""
        frappe = cls(extract_build(build), default_timeout)
        frappe.build_report = getattr(build, "report", None)
        return frappe

    @classmethod
    def index_sources(cls, files: Mapping[str, str], build_script: str,
                      include_paths: Iterable[str] = (),
                      defines: Mapping[str, str] | None = None,
                      ignore_missing_includes: bool = False,
                      default_timeout: float | None = None,
                      policy: str = FAIL_FAST,
                      max_errors: int | None = None,
                      jobs: int = 1) -> "Frappe":
        """Compile an in-memory source tree and index it.

        ``policy=KEEP_GOING`` indexes through broken translation units:
        failures become diagnostics on the build report (reachable as
        ``frappe.build_report``) and the graph is partial but valid.
        ``jobs > 1`` compiles units on a process pool; the resulting
        graph is identical to a serial build.
        """
        build = Build(VirtualFileSystem(dict(files)),
                      include_paths=include_paths,
                      defines=dict(defines or {}),
                      ignore_missing_includes=ignore_missing_includes,
                      policy=policy, max_errors=max_errors, jobs=jobs)
        build.run_script(build_script)
        return cls.index_build(build, default_timeout)

    #: ``Frappe.open`` keywords that predate :class:`StoreConfig`;
    #: each maps onto the config field of the same name
    _OPEN_LEGACY_KWARGS = ("page_cache", "default_timeout", "mmap",
                           "execution_mode", "morsel_size")

    @classmethod
    def open(cls, directory: str, *legacy: Any,
             config: StoreConfig | None = None,
             **legacy_kwargs: Any) -> "Frappe":
        """Open a saved store as a page-cached read view.

        All open-time knobs live on one :class:`StoreConfig` value::

            Frappe.open(path, config=StoreConfig(mmap=True))

        The pre-config keywords (``page_cache``, ``default_timeout``,
        ``mmap``, ``execution_mode``, ``morsel_size`` — positionally
        for the first two) still work but emit a
        :class:`DeprecationWarning` and cannot be combined with an
        explicit ``config``.
        """
        config = cls._shim_open_kwargs(config, legacy, legacy_kwargs)
        engine_kw: dict[str, Any] = {}
        if config.morsel_size is not None:
            engine_kw["morsel_size"] = config.morsel_size
        return cls(GraphStore.open(directory, config.make_page_cache(),
                                   use_compiled_csr=config.use_compiled_csr),
                   config.default_timeout,
                   use_reachability_rewrite=config.use_reachability_rewrite,
                   use_cost_based_planner=config.use_cost_based_planner,
                   execution_mode=config.execution_mode,
                   parallelism=config.parallelism,
                   use_compiled_kernels=config.use_compiled_kernels,
                   use_csr_adjacency=config.use_csr_adjacency,
                   **engine_kw)

    @classmethod
    def _shim_open_kwargs(cls, config: StoreConfig | None,
                          legacy: tuple[Any, ...],
                          legacy_kwargs: dict[str, Any]) -> StoreConfig:
        """Fold pre-``StoreConfig`` arguments into a config value."""
        if len(legacy) > len(cls._OPEN_LEGACY_KWARGS[:2]):
            raise TypeError(
                "open() takes at most two positional configuration "
                "arguments (page_cache, default_timeout)")
        for name, value in zip(cls._OPEN_LEGACY_KWARGS, legacy):
            if name in legacy_kwargs:
                raise TypeError(f"open() got multiple values for "
                                f"argument {name!r}")
            legacy_kwargs[name] = value
        unknown = set(legacy_kwargs) - set(cls._OPEN_LEGACY_KWARGS)
        if unknown:
            raise TypeError("open() got unexpected keyword "
                            "argument(s): "
                            + ", ".join(sorted(unknown)))
        overrides = {name: value
                     for name, value in legacy_kwargs.items()
                     if value is not None and value is not False}
        if not overrides and not legacy_kwargs:
            return config if config is not None else StoreConfig()
        if config is not None:
            raise TypeError(
                "open() got both config= and the deprecated "
                "per-knob arguments: "
                + ", ".join(sorted(legacy_kwargs)))
        warnings.warn(
            "passing Frappe.open() knobs individually ("
            + ", ".join(sorted(legacy_kwargs))
            + ") is deprecated; pass config=StoreConfig(...)",
            DeprecationWarning, stacklevel=3)
        return dataclasses.replace(StoreConfig(), **overrides)

    def save(self, directory: str) -> dict[str, int]:
        """Persist to a store directory; returns the size breakdown."""
        if not isinstance(self.view, PropertyGraph):
            raise TypeError("only an in-memory graph can be saved; "
                            "this Frappe wraps a disk store already")
        return GraphStore.write(self.view, directory)

    # -- cache control (benchmark protocol) -------------------------------------------

    def evict_caches(self) -> None:
        """Cold-start the store-backed view (no-op for in-memory).

        Also resets the metric counters, so a cold-run measurement
        doesn't inherit hit/miss traffic from earlier queries.
        """
        evict = getattr(self.view, "evict_caches", None)
        if evict is not None:
            evict()
        self.engine.evict_epoch_memos()
        self.reset_counters()

    def snapshot_adjacency(self) -> None:
        """Materialize the store's adjacency lists in memory (a
        CSR-style snapshot): traversal-heavy workloads then expand
        edges without touching the page cache. No-op for in-memory
        graphs; dropped again by :meth:`evict_caches`."""
        snapshot = getattr(self.view, "snapshot_adjacency", None)
        if snapshot is not None:
            snapshot()

    def close(self) -> None:
        if self._executor is not None:
            # drain, don't hang: queued-but-unstarted queries fail
            # deterministically with ServerClosedError
            self.engine.task_spawner = None
            self.engine.pool_workers = 0
            self._executor.close(wait=True)
            self._executor = None
        # duck-typed: StoreGraph and ShardedStore both own file
        # handles; in-memory graphs have nothing to close
        closer = getattr(self.view, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "Frappe":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def snapshot(self) -> GraphView:
        """An epoch-pinned read view of the graph.

        For an in-memory graph this is the O(1) copy-on-write
        :class:`~repro.graphdb.GraphSnapshot` — hand it to the native
        query helpers (``queries``, ``traversal``) to read one
        consistent state while a writer keeps ingesting. Disk stores
        are immutable, so the store itself is returned.
        """
        from repro.graphdb.snapshot import pin_view
        return pin_view(self.view)

    # -- querying ------------------------------------------------------------------------

    def query(self, text: str,
              parameters: Mapping[str, Any] | None = None,
              *deprecated: float | None,
              timeout: float | None = None,
              options: QueryOptions | None = None) -> Result:
        """Run Cypher text against the graph.

        ``options`` is the structured knob surface
        (:class:`~repro.cypher.QueryOptions`: timeout, max_rows,
        profile, parameters); explicit keywords win over option
        fields. The old positional-timeout form still works but emits
        a :class:`DeprecationWarning`.
        """
        timeout = CypherEngine._shim_positional_timeout(deprecated,
                                                        timeout)
        return self.engine.run(text, parameters, timeout=timeout,
                               options=options)

    # -- concurrent serving ------------------------------------------------------------

    def serve(self, workers: int = 4, *,
              queue_capacity: int = 64,
              max_per_client: int | None = None) -> Executor:
        """Start (or return) the concurrent serving executor.

        Safe to call repeatedly; the first call fixes the pool shape.
        Each served query pins its own epoch snapshot, so serving
        proceeds while a writer mutates an in-memory graph.
        """
        if self._executor is None:
            self._executor = Executor(
                self.engine.run, workers=workers,
                queue_capacity=queue_capacity,
                max_per_client=max_per_client, obs=self.obs)
            # wire intra-query parallelism onto the same fair-share
            # pool: a query may split its scan into morsel tasks
            # (QueryOptions.parallelism; 0-auto = the pool width)
            self.engine.task_spawner = self._executor.spawn_task
            self.engine.pool_workers = self._executor.workers
        return self._executor

    def query_async(self, text: str,
                    parameters: Mapping[str, Any] | None = None,
                    *, timeout: float | None = None,
                    options: QueryOptions | None = None,
                    client: str = "anonymous") -> Future:
        """Submit a query to the serving executor; returns a Future.

        The future resolves to the same :class:`~repro.cypher.Result`
        a synchronous :meth:`query` would produce. A ``timeout`` (or
        ``options.timeout``) is a *latency from submission* budget —
        time spent waiting in the executor queue counts against it.
        Raises :class:`~repro.errors.AdmissionError` on backpressure.
        """
        opts = QueryOptions.resolve(options, parameters=parameters,
                                    timeout=timeout)
        return self.serve().submit(text, opts, client=client)

    def profile(self, text: str,
                parameters: Mapping[str, Any] | None = None,
                timeout: float | None = None,
                options: QueryOptions | None = None) -> Result:
        """Run a query with profiling; ``result.profile`` is the
        measured operator tree."""
        return self.engine.profile(text, parameters, timeout, options)

    def search(self, name: str, node_type: Optional[str] = None,
               module: Optional[str] = None) -> list[int]:
        """Code search (paper Section 4.1 / Figure 3)."""
        return queries.code_search(self.view, name, node_type, module)

    def goto_definition(self, name: str, file_id: int, line: int,
                        column: int) -> list[int]:
        """Go-to-definition (Section 4.2 / Figure 4)."""
        return queries.goto_definition(self.view, name, file_id, line,
                                       column)

    def find_references(self, node_id: int) -> list[queries.Reference]:
        """Find-references (Section 4.2)."""
        return queries.find_references(self.view, node_id)

    def writers_of_field_between(self, from_function: str,
                                 to_function: str, container: str,
                                 field: str) -> list[queries.FieldWriter]:
        """Debugging helper (Section 4.3 / Figure 5)."""
        return queries.writers_of_field_between(
            self.view, from_function, to_function, container, field)

    def backward_slice(self, function_short_name: str) -> set[int]:
        """All functions the seed depends on (Section 4.4 / Figure 6)."""
        return queries.call_closure(self.view, function_short_name,
                                    Direction.OUT)

    def forward_slice(self, function_short_name: str) -> set[int]:
        """All functions potentially affected by the seed."""
        return queries.call_closure(self.view, function_short_name,
                                    Direction.IN)

    def macro_impact(self, macro_name: str,
                     through_calls: bool = True) -> set[int]:
        """'How much code could be affected if I change this macro?'"""
        impacted: set[int] = set()
        for node_id in self.view.indexes.lookup(model.P_SHORT_NAME,
                                                macro_name):
            if model.MACRO in self.view.node_labels(node_id):
                impacted |= slicing.macro_impact(self.view, node_id,
                                                 through_calls)
        return impacted

    def path_between(self, entry: str, target: str) -> list[int] | None:
        """Shortest call path from an entry point to a target."""
        return queries.entry_point_path(self.view, entry, target)

    def dead_code(self, entry_points: Iterable[str] = ("main",
                                                       "start_kernel"),
                  ) -> list[int]:
        """Functions nothing calls or takes the address of."""
        return queries.unreferenced_functions(self.view, entry_points)

    def cycles(self, edge_types: Iterable[str] = (model.CALLS,),
               ) -> list[list[int]]:
        """Dependency cycles (recursion groups, include cycles, ...)."""
        return queries.dependency_cycles(self.view, edge_types)

    # -- observability -----------------------------------------------------------------------

    def counters(self) -> MetricsSnapshot:
        """A snapshot of every metric the read path has emitted:
        query counts/latency, page-cache hits/misses/evictions, store
        record faults, index lookups, traversal expansions."""
        return self.obs.registry.snapshot()

    def reset_counters(self) -> None:
        """Zero the metric counters without evicting any cache."""
        self.obs.registry.reset()

    def cache_hit_ratio(self) -> float:
        """Hit ratio of the store's read caches since the last reset.

        Counts page-cache hits plus decoded-object cache hits over
        that total plus page-cache misses (each disk page read is a
        miss) — the figure the Table 5 cold/warm benchmark rows print.
        Returns 0.0 for an in-memory graph (no cache traffic).
        """
        snapshot = self.counters()
        hits = (snapshot.counter("pagecache.hits")
                + snapshot.counter("store.object_cache.hits"))
        misses = snapshot.counter("pagecache.misses")
        total = hits + misses
        return hits / total if total else 0.0

    def slow_queries(self) -> list[SlowQueryEntry]:
        """Recent slow/timed-out queries, oldest first."""
        return self.obs.slow_log.entries()

    def traces(self) -> list[Span]:
        """Recently finished trace spans (one root per query)."""
        return self.obs.tracer.recent()

    # -- metrics (Tables 3–4, Figure 7) -------------------------------------------------------

    def metrics(self) -> stats.GraphMetrics:
        return stats.graph_metrics(self.view)

    def degree_distribution(self) -> dict[int, int]:
        return stats.degree_distribution(self.view)

    def describe(self, node_id: int) -> dict[str, Any]:
        """Node labels + properties, for display."""
        description = dict(self.view.node_properties(node_id))
        description["labels"] = sorted(self.view.node_labels(node_id))
        description["id"] = node_id
        return description
