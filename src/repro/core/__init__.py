"""Frappé proper: graph model, extractor, facade and use-case queries.

* :mod:`~repro.core.model` — the Table 1/2 vocabulary (node types,
  edge types, property keys) and the Table 6 label groups,
* :mod:`~repro.core.extractor` — builds the dependency graph from a
  finished :class:`~repro.build.buildsys.Build`,
* :mod:`~repro.core.frappe` — the facade a downstream user drives:
  index a codebase, open/save a store, run Cypher, run use-case
  helpers,
* :mod:`~repro.core.queries` — the Section 4 use cases (code search,
  go-to-definition, find-references, debugging paths, slicing),
* :mod:`~repro.core.slicing` — program-slice approximations over the
  graph (Section 4.4).
"""

from repro.core.config import DEFAULT_CONFIG, StoreConfig
from repro.core.extractor import DependencyGraphExtractor, extract_build
from repro.core.frappe import Frappe

__all__ = ["DEFAULT_CONFIG", "DependencyGraphExtractor", "Frappe",
           "StoreConfig", "extract_build"]
