"""Experiment E2 — paper Table 3: graph metrics.

Paper (full UEK scale): "just over half a million nodes and close to
four million edges, for a ratio of 1:8", plus a graph-density figure.
At bench scale we reproduce the *ratio* and density order of
magnitude; absolute counts scale with FRAPPE_BENCH_SCALE.
"""

from repro.graphdb import stats


def test_table3_graph_metrics(benchmark, kernel_graph, scale, report):
    metrics = benchmark(stats.graph_metrics, kernel_graph)
    assert metrics.node_count > 0
    # the paper's 1:8 node:edge ratio, with generator tolerance
    assert 5.5 <= metrics.edge_node_ratio <= 9.5
    expected_nodes = 530_000 * scale
    assert 0.5 * expected_nodes <= metrics.node_count \
        <= 2.0 * expected_nodes
    benchmark.extra_info["node_count"] = metrics.node_count
    benchmark.extra_info["edge_count"] = metrics.edge_count
    benchmark.extra_info["density"] = metrics.density
    report(
        "== Table 3: graph metrics "
        f"(scale {scale:g} of UEK) ==\n"
        f"Node count   {metrics.node_count}\n"
        f"Edge count   {metrics.edge_count}\n"
        f"Graph density {metrics.density:.6g}\n"
        f"node:edge ratio 1:{metrics.edge_node_ratio:.1f} "
        f"(paper: 1:8)")


def test_table3_density_scales_inversely(kernel_graph, benchmark):
    """Density ~ ratio / (V-1): sparse and shrinking with size."""
    metrics = benchmark(stats.graph_metrics, kernel_graph)
    predicted = metrics.edge_node_ratio / (metrics.node_count - 1)
    assert metrics.density == abs(predicted)
