"""Experiment E17 — persistent compiled CSR adjacency (PR 10).

The PR-10 tentpole moves adjacency compilation from open-time to
build-time: ``GraphStore.write`` persists per-(direction, edge-type)
CSR segments plus a string dictionary page, and the reader serves
typed expansions straight from the mapped segments.  The claims this
suite measures and gates:

* **Cold**: the first execution of the traversal-heavy Table 5
  queries (code search Fig. 3, comprehension Fig. 6, native backward
  slice) on a compiled store is >= 2x faster than the same store with
  the compiled segments ignored (``use_compiled_csr=False`` — the
  runtime record-decode ablation, exactly what ``--no-csr`` does).
  Cold is where build-time compilation pays: the record path must
  fault and decode adjacency blocks before it can traverse.
* **Warm**: across the same mix, the compiled path is never slower
  once caches are hot (``MIX_TOLERANCE`` from the PR-5 suite).
* **Size**: the compiled segments + dictionary cost is reported as a
  fraction of the legacy (v2) store — Table 4's "what does the
  derived layer cost on disk" row.

Result counts are cross-checked between the two configurations on
every query: a cold-start gate is meaningless if the compiled path
returns different rows.
"""

import os

from repro.bench.harness import bench_record, run_cold_warm
from repro.core.config import StoreConfig
from repro.core.frappe import Frappe
from repro.graphdb.storage import GraphStore

from test_bench_execution_modes import MIX_TOLERANCE
from test_bench_table5_queries import FIGURE3, FIGURE6

#: generous per-run ceiling — Fig. 6 with the reachability rewrite on
#: finishes in tens of milliseconds; this only catches pathology
TIMEOUT_SECONDS = 30.0

#: the traversal-heavy slice of Table 5: every query is dominated by
#: adjacency expansion, which is exactly what the CSR layer serves
TRAVERSAL_MIX = (
    ("code-search", lambda fr: fr.query(FIGURE3,
                                        timeout=TIMEOUT_SECONDS)),
    ("comprehension", lambda fr: fr.query(FIGURE6,
                                          timeout=TIMEOUT_SECONDS)),
    ("backward-slice", lambda fr: fr.backward_slice("pci_read_bases")),
)


def _measure_mix(frappe, label, runs=5):
    rows = {}
    for name, run in TRAVERSAL_MIX:
        rows[name] = run_cold_warm(
            f"{name} [{label}]",
            lambda run=run: run(frappe),
            frappe.evict_caches,
            runs=runs,
            abort_after=TIMEOUT_SECONDS,
            hit_ratio=frappe.cache_hit_ratio,
            reset_counters=frappe.reset_counters)
    return rows


def _cold_total(rows):
    return sum(row.cold.min for row in rows.values())


def _warm_total(rows):
    return sum(row.warm.min for row in rows.values())


def _tree_bytes(directory):
    total = 0
    for root, _dirs, names in os.walk(directory):
        for name in names:
            total += os.path.getsize(os.path.join(root, name))
    return total


class TestCompiledCsrColdStart:
    """Tentpole: build-time compilation vs runtime record decode."""

    def test_cold_traversals_2x_and_warm_never_slower(
            self, store_dir, report, scale, benchmark,
            bench_records_pr10):
        # interleave per query so box drift over the session cannot
        # skew the ratio; both configurations read the same on-disk
        # store through the same mmap cache mode, so the only variable
        # is whether the compiled segments are consulted
        with Frappe.open(store_dir, config=StoreConfig(
                mmap=True)) as compiled, \
            Frappe.open(store_dir, config=StoreConfig(
                mmap=True, use_compiled_csr=False)) as runtime:
            assert compiled.view._csr_reader is not None
            assert runtime.view._csr_reader is None
            compiled_rows = _measure_mix(compiled, "compiled-csr")
            runtime_rows = _measure_mix(runtime, "record-decode")

        lines = []
        for name, _run in TRAVERSAL_MIX:
            fast = compiled_rows[name]
            slow = runtime_rows[name]
            assert not fast.aborted and not slow.aborted
            assert fast.result_count == slow.result_count, name
            lines.append(
                f"{name:<16} compiled {fast.cold.min:8.2f}ms  "
                f"runtime {slow.cold.min:8.2f}ms  "
                f"cold speedup {slow.cold.min / fast.cold.min:5.2f}x")
            bench_records_pr10.append(bench_record(
                fast, query_id=f"csr/{name}/compiled"))
            bench_records_pr10.append(bench_record(
                slow, query_id=f"csr/{name}/runtime"))

        cold_speedup = _cold_total(runtime_rows) / \
            _cold_total(compiled_rows)
        report(f"== Compiled CSR cold start (min ms, scale {scale:g}, "
               f"mix speedup {cold_speedup:.2f}x) ==\n" +
               "\n".join(lines))
        bench_records_pr10.append({
            "query": "csr/mix/cold_speedup",
            "speedup": round(cold_speedup, 3)})

        # acceptance: >= 2x cold on the traversal mix...
        assert cold_speedup >= 2.0, (cold_speedup, lines)
        # ...and warm never slower once both sides are cache-hot
        assert _warm_total(compiled_rows) <= \
            _warm_total(runtime_rows) * MIX_TOLERANCE

        benchmark.pedantic(
            lambda: None, rounds=1, iterations=1)


class TestCompiledStoreSize:
    """Satellite: what the derived layer costs on disk (Table 4)."""

    def test_compiled_overhead_reported_and_bounded(
            self, kernel_graph, store_dir, tmp_path_factory, report,
            bench_records_pr10):
        legacy_dir = str(tmp_path_factory.mktemp("legacy") / "v2")
        GraphStore.write(kernel_graph, legacy_dir, compiled=False)
        compiled_bytes = _tree_bytes(store_dir)
        legacy_bytes = _tree_bytes(legacy_dir)
        csr_bytes = sum(
            os.path.getsize(os.path.join(store_dir, name))
            for name in ("csr.db", "csr.offsets.db"))
        dict_bytes = os.path.getsize(
            os.path.join(store_dir, "dictionary.db"))
        overhead = (compiled_bytes - legacy_bytes) / legacy_bytes
        report(f"== Compiled store size ==\n"
               f"legacy v2        {legacy_bytes / 1024:10.1f} KiB\n"
               f"compiled v3      {compiled_bytes / 1024:10.1f} KiB\n"
               f"  csr segments   {csr_bytes / 1024:10.1f} KiB\n"
               f"  dictionary     {dict_bytes / 1024:10.1f} KiB\n"
               f"overhead         {overhead:10.1%}")
        bench_records_pr10.append({
            "query": "csr/store_size",
            "legacy_bytes": legacy_bytes,
            "compiled_bytes": compiled_bytes,
            "csr_bytes": csr_bytes,
            "dictionary_bytes": dict_bytes,
            "overhead": round(overhead, 4)})
        # the varint-delta segments + dictionary must stay a modest
        # fraction of the record store they are derived from
        assert overhead < 0.5, overhead
