"""Experiment E10 — paper Section 2: the relational alternative.

"Relational DBMSs coupled with SQL would work well for some of the
simpler use cases Frappé targets, but many common source code queries
involve transitive closure or reachability computations. Specifying
these in SQL ... results in verbose recursive queries that ... often
suffer performance issues due to repeated join operations."

The bench loads the dependency graph into ``nodes``/``edges`` tables
and runs (a) a simple lookup-style query, where SQL is perfectly fine,
and (b) the reachability closure, where semi-naive recursive SQL pays
per-round hash joins while the graph traversal walks adjacency — the
paper's motivating gap, measured instead of asserted.
"""

import time

import pytest

from repro.graphdb import algo
from repro.graphdb.view import Direction
from repro.relational import Database, SqlEngine
from repro.relational.engine import load_graph_tables

CLOSURE_SQL = """
WITH RECURSIVE reach(id) AS (
    SELECT e.dst FROM edges e WHERE e.src = {seed} AND e.type = 'calls'
    UNION
    SELECT e.dst FROM reach r JOIN edges e ON e.src = r.id
        WHERE e.type = 'calls'
)
SELECT COUNT(*) FROM reach
"""

SIMPLE_SQL = ("SELECT COUNT(*) FROM nodes "
              "WHERE type = 'function' AND short_name = 'pci_read_bases'")


@pytest.fixture(scope="module")
def sql_engine(kernel_graph):
    database = Database()
    load_graph_tables(database, kernel_graph)
    return SqlEngine(database)


@pytest.fixture(scope="module")
def seed(kernel_graph):
    return next(iter(kernel_graph.indexes.lookup("short_name",
                                                 "pci_read_bases")))


class TestAgreement:
    def test_closure_counts_match(self, sql_engine, kernel_graph, seed):
        sql_result = sql_engine.run(
            "WITH RECURSIVE reach(id) AS ("
            f"SELECT e.dst FROM edges e WHERE e.src = {seed} "
            "AND e.type = 'calls' UNION "
            "SELECT e.dst FROM reach r JOIN edges e ON e.src = r.id "
            "WHERE e.type = 'calls') SELECT id FROM reach")
        native = algo.reachable_nodes(kernel_graph, seed, ("calls",),
                                      Direction.OUT)
        # the SQL fixpoint reports the seed too when a call cycle
        # returns to it; the BFS excludes the start by definition
        assert set(sql_result.values()) - {seed} == native

    def test_simple_lookup_matches(self, sql_engine, kernel_graph):
        sql_count = sql_engine.run(SIMPLE_SQL).value()
        graph_count = sum(
            1 for node in kernel_graph.indexes.lookup(
                "short_name", "pci_read_bases")
            if kernel_graph.node_property(node, "type") == "function")
        assert sql_count == graph_count


class TestPerformanceGap:
    def test_closure_graph_beats_sql(self, sql_engine, kernel_graph,
                                     seed, report, scale, benchmark):
        start = time.perf_counter()
        sql_engine.run(CLOSURE_SQL.format(seed=seed))
        sql_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        algo.reachable_nodes(kernel_graph, seed, ("calls",),
                             Direction.OUT)
        graph_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        sql_engine.run(SIMPLE_SQL)
        simple_sql_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        list(kernel_graph.indexes.lookup("short_name",
                                         "pci_read_bases"))
        simple_graph_ms = (time.perf_counter() - start) * 1000
        report(
            f"== Section 2: relational vs graph (ms, scale {scale:g}) "
            f"==\n"
            f"{'workload':<22} {'recursive SQL':>14} "
            f"{'graph traversal':>16}\n"
            f"{'calls closure':<22} {sql_ms:>14.1f} {graph_ms:>16.1f}\n"
            f"{'indexed name lookup':<22} {simple_sql_ms:>14.2f} "
            f"{simple_graph_ms:>16.3f}\n"
            "(paper: closures 'suffer performance issues due to "
            "repeated join operations')")
        # the paper's claim: the graph side wins the closure clearly
        assert graph_ms < sql_ms / 3
        benchmark.pedantic(algo.reachable_nodes,
                           args=(kernel_graph, seed, ("calls",),
                                 Direction.OUT),
                           rounds=1, iterations=1)

    def test_sql_join_volume_grows_with_closure(self, kernel_graph,
                                                seed):
        database = Database()
        load_graph_tables(database, kernel_graph)
        engine = SqlEngine(database)
        engine.run(SIMPLE_SQL)
        simple_joins = engine.join_rows_examined
        engine.run(CLOSURE_SQL.format(seed=seed))
        closure_joins = engine.join_rows_examined - simple_joins
        assert closure_joins > 100 * max(simple_joins, 1)


class TestBenchmarks:
    def test_sql_closure(self, benchmark, sql_engine, seed):
        result = benchmark(sql_engine.run, CLOSURE_SQL.format(seed=seed))
        assert result.value() > 0

    def test_graph_closure(self, benchmark, kernel_graph, seed):
        closure = benchmark(algo.reachable_nodes, kernel_graph, seed,
                            ("calls",), Direction.OUT)
        assert closure

    def test_sql_simple_lookup(self, benchmark, sql_engine):
        assert benchmark(sql_engine.run, SIMPLE_SQL).value() >= 1

    def test_graph_simple_lookup(self, benchmark, kernel_graph):
        result = benchmark(
            lambda: list(kernel_graph.indexes.lookup(
                "short_name", "pci_read_bases")))
        assert result
