"""Ablation A2 (DESIGN.md): page-cache capacity vs query latency.

Table 5's cold/warm gap is a page-cache story: the paper's server had
128 GB of RAM and a 2 GB JVM heap over an ~800 MB store, so warm runs
were fully resident. This ablation opens the same store behind caches
of decreasing capacity and re-runs the Figure 6-style native closure,
showing the warm latency degrade and the hit ratio fall as the working
set stops fitting.
"""

import time


from repro.core.config import StoreConfig
from repro.core.frappe import Frappe
from repro.graphdb.storage import PageCache

CAPACITIES = (16, 64, 256, 4096)


def closure_workload(frappe):
    return frappe.backward_slice("pci_read_bases")


class TestCacheSweep:
    def test_sweep(self, store_dir, report, scale, benchmark):
        lines = [f"{'pages':>8} {'KiB':>8} {'warm ms':>9} "
                 f"{'hit ratio':>10}"]
        warm_times = {}
        for capacity in CAPACITIES:
            cache = PageCache(capacity_pages=capacity)
            with Frappe.open(store_dir,
                             config=StoreConfig(page_cache=cache)) \
                    as frappe:
                closure_workload(frappe)  # populate
                # warm runs, but drop the object caches each time so the
                # page cache (the variable under test) does the work
                samples = []
                for _ in range(5):
                    frappe.view._node_cache.clear()
                    frappe.view._adj_cache.clear()
                    frappe.view._node_prop_cache.clear()
                    cache.stats.reset()
                    start = time.perf_counter()
                    closure_workload(frappe)
                    samples.append((time.perf_counter() - start) * 1000)
                warm_ms = sum(samples) / len(samples)
                warm_times[capacity] = warm_ms
                lines.append(
                    f"{capacity:>8} {capacity * 8192 / 1024:>8.0f} "
                    f"{warm_ms:>9.2f} {cache.stats.hit_ratio:>10.2f}")
        report(f"== Ablation: page-cache capacity (scale {scale:g}) "
               f"==\n" + "\n".join(lines)
               + "\n(Table 5's warm regime needs the working set "
               "resident)")
        # a big cache must not lose to a tiny one
        assert warm_times[CAPACITIES[-1]] <= \
            warm_times[CAPACITIES[0]] * 1.5
        benchmark.pedantic(closure_workload.__call__,
                           args=(Frappe.open(store_dir),),
                           rounds=1, iterations=1)

    def test_hit_ratio_monotone_with_capacity(self, store_dir):
        ratios = []
        for capacity in (16, 4096):
            cache = PageCache(capacity_pages=capacity)
            with Frappe.open(store_dir,
                             config=StoreConfig(page_cache=cache)) \
                    as frappe:
                closure_workload(frappe)
                frappe.view._node_cache.clear()
                frappe.view._adj_cache.clear()
                frappe.view._node_prop_cache.clear()
                cache.stats.reset()
                closure_workload(frappe)
                ratios.append(cache.stats.hit_ratio)
        assert ratios[-1] >= ratios[0]
