"""Experiment E13 — paper Section 6.2: references as edges vs nodes.

The paper's modelling dilemma: edge properties (USE_FILE_ID) associate
a reference with the file containing it, but "matching all the
references ... within a file [is] much clumsier than it could be";
reifying references as nodes fixes that one query while making the
graph bigger and every other match longer.

The bench builds both models from the same kernel graph and measures:

* per-file reference lookup (node model should win outright),
* total graph size (edge model wins),
* one-hop call expansion (edge model wins — the reified model pays an
  extra hop per reference).
"""

import time

import pytest

from repro.core import model
from repro.core.remodel import (CALLSITE, references_in_file_edge_model,
                                references_in_file_node_model,
                                reify_references)
from repro.graphdb.view import Direction


@pytest.fixture(scope="module")
def reified(kernel_graph):
    return reify_references(kernel_graph)


@pytest.fixture(scope="module")
def busy_file(kernel_graph):
    """The file with the most references located in it."""
    from collections import Counter
    counter = Counter()
    for edge_id in kernel_graph.edge_ids():
        if kernel_graph.edge_type(edge_id) in model.REFERENCE_EDGE_TYPES:
            file_node = kernel_graph.edge_property(edge_id,
                                                   "use_file_id")
            if file_node is not None:
                counter[file_node] += 1
    return counter.most_common(1)[0][0]


class TestModelEquivalence:
    def test_same_reference_population(self, kernel_graph, reified,
                                       busy_file):
        edge_model = references_in_file_edge_model(kernel_graph,
                                                   busy_file)
        node_model = references_in_file_node_model(reified, busy_file)
        assert len(edge_model) == len(node_model)
        assert len(edge_model) > 0

    def test_callsites_carry_positions(self, reified):
        sites = [node for node in reified.nodes_with_label(CALLSITE)]
        assert sites
        sample = sites[0]
        assert reified.node_property(sample, "use_start_line") is not None

    def test_call_endpoints_preserved(self, kernel_graph, reified):
        """a -[:calls]-> b becomes a -> site -> b with both hops typed."""
        seed = next(iter(kernel_graph.indexes.lookup(
            "short_name", "sr_media_change")))
        direct = {kernel_graph.edge_target(edge)
                  for edge in kernel_graph.edges_of(
                      seed, Direction.OUT, (model.CALLS,))}
        via_sites = set()
        for edge in reified.edges_of(seed, Direction.OUT,
                                     (model.CALLS,)):
            site = reified.edge_target(edge)
            for hop in reified.edges_of(site, Direction.OUT,
                                        (model.CALLS,)):
                via_sites.add(reified.edge_target(hop))
        assert via_sites == direct


class TestTradeoff:
    def test_report(self, kernel_graph, reified, busy_file, report,
                    scale, benchmark):
        start = time.perf_counter()
        for _ in range(5):
            references_in_file_edge_model(kernel_graph, busy_file)
        edge_lookup_ms = (time.perf_counter() - start) * 200
        start = time.perf_counter()
        for _ in range(5):
            references_in_file_node_model(reified, busy_file)
        node_lookup_ms = (time.perf_counter() - start) * 200

        report(
            f"== Section 6.2: references as edges vs nodes "
            f"(scale {scale:g}) ==\n"
            f"{'':<28} {'edge model':>12} {'node model':>12}\n"
            f"{'per-file references (ms)':<28} {edge_lookup_ms:>12.2f} "
            f"{node_lookup_ms:>12.2f}\n"
            f"{'nodes':<28} {kernel_graph.node_count():>12} "
            f"{reified.node_count():>12}\n"
            f"{'edges':<28} {kernel_graph.edge_count():>12} "
            f"{reified.edge_count():>12}\n"
            "(paper: node model improves per-file matching, 'but "
            "specifying matches in general becomes at best less "
            "succinct')")
        # per-file lookup: reified adjacency beats the edge scan
        assert node_lookup_ms < edge_lookup_ms
        # storage: reification inflates the graph substantially
        assert reified.node_count() > 1.5 * kernel_graph.node_count()
        benchmark.pedantic(references_in_file_node_model,
                           args=(reified, busy_file),
                           rounds=1, iterations=1)

    def test_bench_edge_model_lookup(self, benchmark, kernel_graph,
                                     busy_file):
        result = benchmark(references_in_file_edge_model, kernel_graph,
                           busy_file)
        assert result

    def test_bench_node_model_lookup(self, benchmark, reified,
                                     busy_file):
        result = benchmark(references_in_file_node_model, reified,
                           busy_file)
        assert result

    def test_bench_expansion_edge_model(self, benchmark, kernel_graph):
        seed = next(iter(kernel_graph.indexes.lookup(
            "short_name", "pci_read_bases")))

        def one_hop():
            return [kernel_graph.edge_target(edge)
                    for edge in kernel_graph.edges_of(
                        seed, Direction.OUT, (model.CALLS,))]

        assert benchmark(one_hop)

    def test_bench_expansion_node_model(self, benchmark, reified):
        seed = next(iter(reified.indexes.lookup(
            "short_name", "pci_read_bases")))

        def two_hops():
            targets = []
            for edge in reified.edges_of(seed, Direction.OUT,
                                         (model.CALLS,)):
                site = reified.edge_target(edge)
                for hop in reified.edges_of(site, Direction.OUT,
                                            (model.CALLS,)):
                    targets.append(reified.edge_target(hop))
            return targets

        assert benchmark(two_hops)
