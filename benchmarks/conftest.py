"""Shared benchmark fixtures.

All benchmarks run against a synthetic UEK-shaped dependency graph at
``FRAPPE_BENCH_SCALE`` times the paper's size (default 1/50 so the
suite finishes in CI). The graph is generated once per session, saved
to a disk store, and reopened page-cached — the same deployment shape
the paper measures.

Paper-style result tables are appended to ``benchmarks/reports/`` so
the rows that mirror the paper's Tables 3–5 and Figure 7 survive
pytest's output capture.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import bench_scale, write_bench_records
from repro.core.frappe import Frappe
from repro.graphdb.storage import GraphStore
from repro.workloads import generate_kernel_graph
from repro.workloads.profiles import UEK_PROFILE

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def kernel_graph(scale):
    """The in-memory synthetic kernel graph."""
    return generate_kernel_graph(UEK_PROFILE.scaled(scale))


@pytest.fixture(scope="session")
def store_dir(kernel_graph, tmp_path_factory) -> str:
    directory = str(tmp_path_factory.mktemp("bench") / "kernel.store")
    GraphStore.write(kernel_graph, directory)
    return directory


@pytest.fixture(scope="session")
def frappe_store(store_dir):
    """Frappé over the page-cached disk store (what Table 5 measures)."""
    with Frappe.open(store_dir) as frappe:
        yield frappe


@pytest.fixture(scope="session")
def bench_records():
    """Per-query benchmark records (query id, cold/warm ms, db-hits,
    cache hit ratio, planner used); written to
    ``benchmarks/reports/BENCH_PR3.json`` at session end."""
    records: list[dict] = []
    yield records
    if records:
        write_bench_records(
            os.path.join(REPORT_DIR, "BENCH_PR3.json"), records)


@pytest.fixture(scope="session")
def bench_records_pr4():
    """Concurrency benchmark records (thread-sweep query throughput,
    parallel vs serial extraction); written to
    ``benchmarks/reports/BENCH_PR4.json`` at session end."""
    records: list[dict] = []
    yield records
    if records:
        write_bench_records(
            os.path.join(REPORT_DIR, "BENCH_PR4.json"), records)


@pytest.fixture(scope="session")
def bench_records_pr5():
    """Execution-mode benchmark records (Table 5 mix rows vs batch,
    mmap vs buffered reads, morsel-size ablation); written to
    ``benchmarks/reports/BENCH_PR5.json`` at session end."""
    records: list[dict] = []
    yield records
    if records:
        write_bench_records(
            os.path.join(REPORT_DIR, "BENCH_PR5.json"), records)


@pytest.fixture(scope="session")
def bench_records_pr7():
    """HTTP serving-tier benchmark records (1/2/4-replica warm
    throughput and p50/p99 latency over the Table 5 mix); written to
    ``benchmarks/reports/BENCH_PR7.json`` at session end."""
    records: list[dict] = []
    yield records
    if records:
        write_bench_records(
            os.path.join(REPORT_DIR, "BENCH_PR7.json"), records)


@pytest.fixture(scope="session")
def bench_records_pr8():
    """Morsel-parallelism and compiled-kernel benchmark records
    (1/2/4/8-worker scaling on the Table 5 mix, compiled-vs-
    interpreted kernel ablation); written to
    ``benchmarks/reports/BENCH_PR8.json`` at session end."""
    records: list[dict] = []
    yield records
    if records:
        write_bench_records(
            os.path.join(REPORT_DIR, "BENCH_PR8.json"), records)


@pytest.fixture(scope="session")
def bench_records_pr9():
    """Sharded serving-tier benchmark records (1/2/4-shard warm
    throughput and p50/p99 latency over the Table 5 mix, anchored
    dispatch vs unsharded, crash transparency); written to
    ``benchmarks/reports/BENCH_PR9.json`` at session end."""
    records: list[dict] = []
    yield records
    if records:
        write_bench_records(
            os.path.join(REPORT_DIR, "BENCH_PR9.json"), records)


@pytest.fixture(scope="session")
def report():
    """Append paper-style tables to benchmarks/reports/summary.txt."""
    os.makedirs(REPORT_DIR, exist_ok=True)
    path = os.path.join(REPORT_DIR, "summary.txt")
    handle = open(path, "w", encoding="utf-8")

    def write(text: str) -> None:
        handle.write(text + "\n\n")
        handle.flush()

    yield write
    handle.close()


@pytest.fixture(scope="session")
def bench_records_pr10():
    """Compiled-CSR benchmark records (cold compiled-vs-runtime on
    the traversal-heavy Table 5 queries, warm never-slower mix check,
    compiled store size delta); written to
    ``benchmarks/reports/BENCH_PR10.json`` at session end."""
    records: list[dict] = []
    yield records
    if records:
        write_bench_records(
            os.path.join(REPORT_DIR, "BENCH_PR10.json"), records)
