"""Experiment E4 — paper Figure 7: node degree distribution.

The paper plots node count (log scale) against total degree and
observes "a large majority of nodes have a small node degree, whereas
a few nodes have a huge degree", naming the hubs: primitives like
``int`` (degree ~79K) and common constants like ``NULL`` (~19K).

The bench prints the log-binned series and asserts the shape: a heavy
tail, ``int`` as the top hub with ``NULL`` among the top hubs, hub
degrees roughly in the paper's proportions after scaling.
"""

from repro.graphdb import stats


def test_fig7_distribution(benchmark, kernel_graph, scale, report):
    distribution = benchmark(stats.degree_distribution, kernel_graph)
    rows = stats.log_binned_histogram(distribution)
    lines = [f"degree [{low:8.1f}, {high:8.1f})  nodes {count:>8}"
             for low, high, count in rows if count]
    top = stats.top_degree_nodes(kernel_graph, 10)
    hubs = [(kernel_graph.node_property(node, "short_name"), degree)
            for node, degree in top]
    report(f"== Figure 7: degree distribution (scale {scale:g}) ==\n"
           + "\n".join(lines)
           + "\n\ntop hubs: "
           + ", ".join(f"{name}={degree}" for name, degree in hubs))

    # majority of nodes have small degree
    small = sum(count for degree, count in distribution.items()
                if degree <= 8)
    total = sum(distribution.values())
    assert small / total > 0.6
    # the named hubs
    hub_names = [name for name, _degree in hubs]
    assert hub_names[0] == "int"
    assert "NULL" in hub_names
    # int's hub degree tracks the paper's 79K after scaling (loose)
    int_degree = hubs[0][1]
    expected = 79_000 * scale
    assert expected * 0.2 <= int_degree <= expected * 6.0


def test_fig7_tail_is_powerlaw_like(kernel_graph):
    distribution = stats.degree_distribution(kernel_graph)
    alpha = stats.powerlaw_alpha(distribution, degree_min=5)
    # Figure 7's straight-ish log-log tail: exponent in a sane band
    assert 1.2 < alpha < 3.5


def test_fig7_hubs_are_types_and_constants(kernel_graph):
    """The paper: hubs are 'normally primitives and other commonly
    used types as well as common constants'."""
    top = stats.top_degree_nodes(kernel_graph, 5)
    kinds = {kernel_graph.node_property(node, "type")
             for node, _degree in top}
    assert kinds & {"primitive", "macro"}
