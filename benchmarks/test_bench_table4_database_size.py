"""Experiment E3 — paper Table 4: database size breakdown.

Paper (full UEK): a ~800 MB store where Properties dominate, then
Relationships, Nodes, and Indexes. We measure our store files grouped
into the same categories and assert the dominance ordering (the
shape), not absolute megabytes.
"""

from repro.graphdb.storage import GraphStore


def test_table4_database_size(benchmark, kernel_graph, tmp_path_factory,
                              scale, report):
    directory = str(tmp_path_factory.mktemp("t4") / "store")
    sizes = benchmark.pedantic(
        GraphStore.write, args=(kernel_graph, directory),
        rounds=1, iterations=1)
    mb = {key: value / (1024 * 1024) for key, value in sizes.items()}
    # shape: properties dominate, relationships beat plain node records
    assert sizes["properties"] > sizes["relationships"]
    assert sizes["relationships"] > sizes["nodes"]
    assert sizes["indexes"] > 0
    assert sizes["total"] >= sum(sizes[key] for key in
                                 ("properties", "relationships",
                                  "nodes", "indexes"))
    for key, value in mb.items():
        benchmark.extra_info[f"{key}_mb"] = round(value, 3)
    report(
        f"== Table 4: database size (MB, scale {scale:g}) ==\n"
        f"Properties     {mb['properties']:.3f}\n"
        f"Nodes          {mb['nodes']:.3f}\n"
        f"Relationships  {mb['relationships']:.3f}\n"
        f"Indexes        {mb['indexes']:.3f}\n"
        f"Total          {mb['total']:.3f}\n"
        "(paper at full scale: Properties dominate a ~800 MB store)")


def test_table4_size_grows_with_graph(kernel_graph, tmp_path_factory):
    """Writing a half-size subgraph must produce a smaller store."""
    from repro.graphdb.graph import PropertyGraph

    half = PropertyGraph()
    keep = set(list(kernel_graph.node_ids())[:kernel_graph.node_count()
                                             // 2])
    for node_id in keep:
        half.add_node_with_id(node_id,
                              kernel_graph.node_labels(node_id),
                              kernel_graph.node_properties(node_id))
    for edge_id in kernel_graph.edge_ids():
        source = kernel_graph.edge_source(edge_id)
        target = kernel_graph.edge_target(edge_id)
        if source in keep and target in keep:
            half.add_edge_with_id(edge_id, source, target,
                                  kernel_graph.edge_type(edge_id),
                                  kernel_graph.edge_properties(edge_id))
    full_dir = str(tmp_path_factory.mktemp("t4f") / "full")
    half_dir = str(tmp_path_factory.mktemp("t4h") / "half")
    full_sizes = GraphStore.write(kernel_graph, full_dir)
    half_sizes = GraphStore.write(half, half_dir)
    assert half_sizes["total"] < full_sizes["total"]
