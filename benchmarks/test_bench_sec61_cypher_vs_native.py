"""Experiment E8 — paper Section 6.1: Cypher vs the embedded traversal.

"While the transitive closure is expressible in Cypher, its associated
runtime is unreasonable. We instead implemented transitive closure
ourselves by traversing the graph directly via Neo4j's Java embedded
mode (bypassing Cypher) to achieve sub-second performance."

The crossover is a semantics gap: Cypher's ``-[:calls*]->`` enumerates
relationship-unique *paths*; the traversal framework's NODE_GLOBAL
uniqueness visits each node once. This bench measures both on growing
closure sizes and shows where Cypher's cost diverges; it also verifies
the two agree on the answer wherever Cypher finishes.
"""

import pytest

from repro.cypher import CypherEngine
from repro.errors import QueryTimeoutError
from repro.graphdb import PropertyGraph, algo
from repro.graphdb.view import Direction


def layered_call_graph(layers: int, width: int) -> PropertyGraph:
    """A layered DAG where path counts grow as width^layers."""
    graph = PropertyGraph()
    seed = graph.add_node("function", short_name="seed",
                          type="function")
    previous = [seed]
    for layer in range(layers):
        current = [graph.add_node("function",
                                  short_name=f"f_{layer}_{index}",
                                  type="function")
                   for index in range(width)]
        for upper in previous:
            for lower in current:
                graph.add_edge(upper, lower, "calls")
        previous = current
    return graph


CLOSURE_QUERY = ("START n=node:node_auto_index('short_name: seed') "
                 "MATCH n -[:calls*]-> m RETURN distinct m")


class TestAgreementWhereBothFinish:
    def test_same_answer_small_graph(self):
        graph = layered_call_graph(3, 3)
        engine = CypherEngine(graph, use_reachability_rewrite=False)
        cypher_nodes = {row[0].id for row in
                        engine.run(CLOSURE_QUERY).rows}
        native = algo.reachable_nodes(graph, 0, ("calls",),
                                      Direction.OUT)
        assert cypher_nodes == native

    def test_rewrite_matches_enumeration_and_native(self):
        graph = layered_call_graph(3, 3)
        rewritten = {row[0].id for row in
                     CypherEngine(graph).run(CLOSURE_QUERY).rows}
        enumerated = {row[0].id for row in
                      CypherEngine(graph, use_reachability_rewrite=False)
                      .run(CLOSURE_QUERY).rows}
        native = algo.reachable_nodes(graph, 0, ("calls",),
                                      Direction.OUT)
        assert rewritten == enumerated == native


class TestDivergence:
    def test_native_scales_cypher_explodes(self, report, benchmark):
        """Path enumeration diverges while BFS stays linear."""
        import time
        lines = ["layers x width   paths      cypher_ms   rewrite_ms"
                 "   native_ms"]
        for layers, width in ((3, 3), (4, 4), (5, 5), (6, 6)):
            graph = layered_call_graph(layers, width)
            engine = CypherEngine(graph, use_reachability_rewrite=False)
            start = time.perf_counter()
            try:
                engine.run(CLOSURE_QUERY, timeout=2.0)
                cypher_ms = (time.perf_counter() - start) * 1000
                cypher_cell = f"{cypher_ms:9.1f}"
            except QueryTimeoutError:
                cypher_cell = "  aborted"
            rewrite_engine = CypherEngine(graph)
            start = time.perf_counter()
            rewrite_engine.run(CLOSURE_QUERY, timeout=2.0)
            rewrite_ms = (time.perf_counter() - start) * 1000
            start = time.perf_counter()
            native = algo.reachable_nodes(graph, 0, ("calls",),
                                          Direction.OUT)
            native_ms = (time.perf_counter() - start) * 1000
            paths = sum(width ** level
                        for level in range(1, layers + 1))
            lines.append(f"{layers} x {width:<12} {paths:<10} "
                         f"{cypher_cell}   {rewrite_ms:10.2f}"
                         f"   {native_ms:9.2f}")
            assert native_ms < 1000.0  # native stays sub-second
            assert rewrite_ms < 2000.0  # rewritten Cypher stays linear
        report("== Section 6.1: Cypher closure vs embedded traversal "
               "==\n" + "\n".join(lines)
               + "\n(paper: Cypher 'unreasonable', traversal ~20ms; "
               "rewrite_ms = same Cypher with the reachability "
               "rewrite on)")
        benchmark.pedantic(
            algo.reachable_nodes,
            args=(layered_call_graph(6, 6), 0, ("calls",),
                  Direction.OUT),
            rounds=1, iterations=1)

    def test_cypher_aborts_on_dense_graph(self):
        # 7 layers x 6 wide: ~336K relationship-unique paths — far past
        # any 1-second budget, deterministic across machines
        graph = layered_call_graph(7, 6)
        engine = CypherEngine(graph, use_reachability_rewrite=False)
        with pytest.raises(QueryTimeoutError):
            engine.run(CLOSURE_QUERY, timeout=1.0)

    def test_rewrite_at_least_10x_faster_on_dense_graph(self, report):
        """ISSUE acceptance: rewrite >= 10x faster at bench scale.

        The rewrite-off run aborts at its 1s budget, so finishing in
        under a tenth of that budget is the conservative bound.
        """
        import time
        graph = layered_call_graph(7, 6)
        off = CypherEngine(graph, use_reachability_rewrite=False)
        budget = 1.0
        with pytest.raises(QueryTimeoutError):
            off.run(CLOSURE_QUERY, timeout=budget)
        on = CypherEngine(graph)
        start = time.perf_counter()
        result = on.run(CLOSURE_QUERY, timeout=budget)
        on_seconds = time.perf_counter() - start
        assert len(result) == 42  # 7 layers x 6 wide
        assert on_seconds < budget / 10
        report("== Section 6.1: reachability-rewrite speedup ==\n"
               f"rewrite off: aborted after {budget:.0f}s budget\n"
               f"rewrite on:  {on_seconds * 1000:.1f} ms "
               f"(>= {budget / on_seconds:.0f}x)")

    def test_native_handles_dense_graph(self, benchmark):
        graph = layered_call_graph(6, 6)
        closure = benchmark(algo.reachable_nodes, graph, 0, ("calls",),
                            Direction.OUT)
        assert len(closure) == 36


class TestBenchmarks:
    def test_native_closure_on_kernel(self, benchmark, kernel_graph):
        seed = next(iter(kernel_graph.indexes.lookup(
            "short_name", "pci_read_bases")))
        closure = benchmark(algo.reachable_nodes, kernel_graph, seed,
                            ("calls",), Direction.OUT)
        assert closure

    def test_cypher_closure_small_width(self, benchmark):
        graph = layered_call_graph(3, 3)
        engine = CypherEngine(graph)
        result = benchmark(engine.run, CLOSURE_QUERY)
        assert len(result) == 9  # distinct nodes (3 layers x 3 wide)
