"""Experiment E11 — paper Table 6: Cypher 1.x vs 2.x label syntax.

The paper shows the same request both ways: the 1.x form spells out a
TYPE disjunction inside the index query string::

    START n=node:node_auto_index("(TYPE: struct TYPE: union
        TYPE: enum_def ...) AND NAME: foo")

while the 2.x form uses grouped node labels::

    MATCH (n:container:symbol{name: "foo"})

Both must return the same nodes; the bench measures both and reports
the comparison the paper motivates qualitatively.
"""

import time


from repro.core import model

#: a Table 6-style target planted by the generator.
TARGET = "packet_command"

CYPHER1 = ("START n=node:node_auto_index("
           "'(TYPE: struct TYPE: union TYPE: enum_def) "
           f"AND NAME: {TARGET}') RETURN n")

CYPHER2 = f'MATCH (n:container:symbol{{name: "{TARGET}"}}) RETURN n'


class TestEquivalence:
    def test_same_results(self, frappe_store):
        first = {row[0].id for row in frappe_store.query(CYPHER1).rows}
        second = {row[0].id for row in frappe_store.query(CYPHER2).rows}
        assert first == second
        assert first  # the target exists

    def test_group_labels_match_model(self, kernel_graph):
        node = next(iter(kernel_graph.indexes.lookup("short_name",
                                                     TARGET)))
        labels = kernel_graph.node_labels(node)
        assert {"struct", "container", "symbol", "type"} <= labels

    def test_container_group_members(self, kernel_graph):
        for node in list(kernel_graph.nodes_with_label("container"))[:50]:
            assert kernel_graph.node_property(node, "type") in \
                model.CONTAINER_GROUP


class TestTimings:
    def test_report(self, frappe_store, report, scale, benchmark):
        def run_many(query):
            frappe_store.query(query)  # warm up
            start = time.perf_counter()
            for _ in range(10):
                result = frappe_store.query(query)
            return (time.perf_counter() - start) * 100, len(result)

        cypher1_ms, count1 = run_many(CYPHER1)
        cypher2_ms, count2 = run_many(CYPHER2)
        report(f"== Table 6: label syntax (avg ms, scale {scale:g}) ==\n"
               f"Cypher 1.x TYPE disjunction  {cypher1_ms:8.2f}  "
               f"({count1} rows)\n"
               f"Cypher 2.x label match       {cypher2_ms:8.2f}  "
               f"({count2} rows)")
        assert count1 == count2
        benchmark.pedantic(frappe_store.query, args=(CYPHER2,),
                           rounds=1, iterations=1)

    def test_bench_cypher1(self, benchmark, frappe_store):
        assert len(benchmark(frappe_store.query, CYPHER1)) >= 1

    def test_bench_cypher2(self, benchmark, frappe_store):
        assert len(benchmark(frappe_store.query, CYPHER2)) >= 1
