"""Sharded serving-tier benchmark: shard-sweep throughput + gates.

The deployment experiment behind ``frappe serve --http --shards DIR``:
the Table 5 query mix submitted over the wire by concurrent
``FrappeClient`` threads against the store split into 1, 2 and 4
subtree shards (one mmap'd worker process per shard), routed by the
scatter/gather tier.

Two ISSUE 9 acceptance gates ride along:

* a single-subtree anchored query through the router must not be
  slower than the same query against the unsharded replica tier
  (the dispatch tier touches one smaller store; its only added cost
  is the routing classification, which must stay in the noise);
* SIGKILLing one shard worker under load must never surface to a
  client as anything but a transparent retry — zero failed requests.

Rows land in ``benchmarks/reports/BENCH_PR9.json`` next to the
BENCH_PR7 replica-sweep rows.
"""

import os
import signal
import threading
import time

import pytest

from repro.client import FrappeClient
from repro.graphdb.storage import split_store
from repro.server import wire
from repro.server.http import HttpServer
from repro.server.replica import ReplicaBackend, ReplicaSet
from repro.server.shard import ShardBackend, ShardRouter

from test_bench_concurrency import _query_mix
from test_bench_http_serving import _percentile

ROUNDS = 4          # each client thread runs the whole mix this often
CLIENT_THREADS = 3  # concurrent wire clients per sweep point
SHARD_SWEEP = (1, 2, 4)
ANCHOR_SAMPLES = 40


class TestShardSweep:
    @pytest.fixture(scope="class")
    def query_mix(self, frappe_store):
        return _query_mix(frappe_store)

    @pytest.fixture(scope="class")
    def shard_roots(self, store_dir, tmp_path_factory):
        """The bench store split at every sweep point, once."""
        base = tmp_path_factory.mktemp("bench-shards")
        roots = {}
        for shards in SHARD_SWEEP:
            root = str(base / f"shards{shards}")
            split_store(store_dir, root, shards)
            roots[shards] = root
        return roots

    @pytest.fixture(scope="class")
    def sweep(self, shard_roots, query_mix):
        rows_by_shards = {}
        for shards in SHARD_SWEEP:
            rows_by_shards[shards] = self._measure(
                shard_roots[shards], query_mix, shards)
        return rows_by_shards

    @staticmethod
    def _measure(root, queries, shards):
        with ShardRouter(root, replicas=1) as router:
            backend = ShardBackend(
                router,
                queue_capacity=len(queries) * ROUNDS
                * CLIENT_THREADS + 8,
                max_per_client=len(queries) * ROUNDS + 8)
            server = HttpServer(backend).start_background()
            try:
                with FrappeClient(port=server.port,
                                  client_id="warm") as warmer:
                    for text in queries:  # warm plan + page caches
                        warmer.query(text, timeout=120.0)
                latencies = []
                failures = []
                produced = [0]
                lock = threading.Lock()

                def run_mix(thread_index):
                    with FrappeClient(
                            port=server.port,
                            client_id=f"bench-{thread_index}",
                            timeout=180.0) as client:
                        for _ in range(ROUNDS):
                            for text in queries:
                                begun = time.perf_counter()
                                try:
                                    result = client.query(
                                        text, timeout=120.0)
                                except Exception as error:
                                    with lock:
                                        failures.append(error)
                                    continue
                                elapsed = (time.perf_counter()
                                           - begun)
                                with lock:
                                    latencies.append(elapsed)
                                    produced[0] += len(result)

                threads = [threading.Thread(target=run_mix,
                                            args=(index,))
                           for index in range(CLIENT_THREADS)]
                started = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                wall = time.perf_counter() - started
            finally:
                server.stop(close_backend=False)
                backend.close()
        total = len(queries) * ROUNDS * CLIENT_THREADS
        return {
            "shards": shards,
            "queries": total,
            "failures": len(failures),
            "rows": produced[0],
            "wall_ms": round(wall * 1000, 3),
            "queries_per_second": round(total / wall, 2),
            "p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
            "p99_ms": round(_percentile(latencies, 0.99) * 1000, 3),
        }

    def test_shard_sweep(self, sweep, scale, report,
                         bench_records_pr9):
        lines = [f"{'shards':>8} {'q/s':>8} {'p50 ms':>9} "
                 f"{'p99 ms':>9} {'failures':>9}"]
        for shards in SHARD_SWEEP:
            row = sweep[shards]
            bench_records_pr9.append(
                {"experiment": "shard_http_throughput",
                 "scale": scale, **row})
            lines.append(
                f"{row['shards']:>8} "
                f"{row['queries_per_second']:>8.2f} "
                f"{row['p50_ms']:>9.2f} {row['p99_ms']:>9.2f} "
                f"{row['failures']:>9}")
        report("HTTP shard sweep (Table 5 mix over the wire)\n"
               + "\n".join(lines))
        for row in sweep.values():
            assert row["failures"] == 0
            assert row["rows"] > 0

    def test_sharding_never_collapses_throughput(self, sweep):
        """Routing + scatter overhead must stay bounded: 4 shards
        must hold a reasonable fraction of the 1-shard figure even on
        a single-core runner time-sharing the worker processes."""
        single = sweep[1]["queries_per_second"]
        quad = sweep[4]["queries_per_second"]
        assert quad >= 0.4 * single

    def test_tail_latency_reported(self, sweep):
        for row in sweep.values():
            assert row["p99_ms"] >= row["p50_ms"] > 0


class TestAnchorDispatchGate:
    """ISSUE 9 gate: single-subtree anchor queries never slower than
    unsharded. Measured at the backend seam (same Executor + worker
    pipe path on both sides) so the comparison isolates what sharding
    adds: routing classification against one smaller shard store."""

    @pytest.fixture(scope="class")
    def anchored_query(self, frappe_store):
        rows = frappe_store.query(
            "MATCH (n:function) RETURN n.short_name").rows
        name = sorted(row[0] for row in rows)[len(rows) // 2]
        return (f"START n=node:node_auto_index('short_name:{name}') "
                "RETURN n.short_name, n.type")

    @staticmethod
    def _sample(backend, text):
        backend.submit(text, None, "warm").result(timeout=60)
        samples = []
        for index in range(ANCHOR_SAMPLES):
            begun = time.perf_counter()
            payload = backend.submit(text, None,
                                     f"anchor-{index % 3}").result(
                                         timeout=60)
            samples.append(time.perf_counter() - begun)
            assert wire.result_from_ndjson(payload).rows
        return samples

    def test_anchor_dispatch_not_slower_than_unsharded(
            self, store_dir, tmp_path_factory, anchored_query, scale,
            report, bench_records_pr9):
        root = str(tmp_path_factory.mktemp("bench-anchor") / "shards")
        split_store(store_dir, root, 4)

        with ReplicaSet(store_dir, replicas=1) as replicas:
            flat_backend = ReplicaBackend(replicas, queue_capacity=16)
            try:
                flat = self._sample(flat_backend, anchored_query)
            finally:
                flat_backend.close()
        with ShardRouter(root, replicas=1) as router:
            shard_backend = ShardBackend(router, queue_capacity=16)
            try:
                decision = router.classify(anchored_query)
                assert decision.tier == "dispatch"
                sharded = self._sample(shard_backend, anchored_query)
            finally:
                shard_backend.close()

        flat_p50 = _percentile(flat, 0.50) * 1000
        sharded_p50 = _percentile(sharded, 0.50) * 1000
        bench_records_pr9.append({
            "experiment": "anchor_dispatch_vs_unsharded",
            "scale": scale,
            "samples": ANCHOR_SAMPLES,
            "unsharded_p50_ms": round(flat_p50, 3),
            "sharded_p50_ms": round(sharded_p50, 3),
            "unsharded_p99_ms": round(
                _percentile(flat, 0.99) * 1000, 3),
            "sharded_p99_ms": round(
                _percentile(sharded, 0.99) * 1000, 3),
        })
        report("Anchored dispatch vs unsharded (p50 ms): "
               f"unsharded {flat_p50:.3f}, sharded {sharded_p50:.3f}")
        # "never slower", with a jitter allowance for sub-millisecond
        # medians on a shared CI box
        assert sharded_p50 <= flat_p50 * 1.25 + 0.5, (
            f"anchored dispatch p50 {sharded_p50:.3f} ms regressed "
            f"past the unsharded {flat_p50:.3f} ms")


class TestCrashTransparencyGate:
    def test_kill_one_worker_zero_failed_requests(
            self, store_dir, tmp_path_factory, scale,
            bench_records_pr9):
        """ISSUE 9 gate: killing one shard worker never surfaces to a
        client as anything but a transparent retry."""
        root = str(tmp_path_factory.mktemp("bench-crash") / "shards")
        split_store(store_dir, root, 2)
        with ShardRouter(root, replicas=2) as router:
            backend = ShardBackend(router, queue_capacity=64)
            server = HttpServer(backend).start_background()
            try:
                stop = threading.Event()
                failures = []
                completed = [0]

                def hammer(index):
                    with FrappeClient(
                            port=server.port,
                            client_id=f"hammer-{index}") as client:
                        while not stop.is_set():
                            try:
                                client.query(
                                    "MATCH (n:function) "
                                    "RETURN count(n)", timeout=60.0)
                                completed[0] += 1
                            except Exception as error:
                                failures.append(error)

                threads = [threading.Thread(target=hammer,
                                            args=(index,))
                           for index in range(3)]
                for thread in threads:
                    thread.start()
                deadline = time.monotonic() + 30
                while completed[0] < 5 \
                        and time.monotonic() < deadline:
                    time.sleep(0.05)
                victim = router.pids()[0][0]
                os.kill(victim, signal.SIGKILL)
                target = completed[0] + 20
                while completed[0] < target \
                        and time.monotonic() < deadline:
                    time.sleep(0.05)
                stop.set()
                for thread in threads:
                    thread.join()
                assert completed[0] >= target, \
                    "load never progressed past the crash"
                assert not failures, \
                    f"client saw failures: {failures[:3]}"
            finally:
                server.stop(close_backend=True)
        bench_records_pr9.append({
            "experiment": "shard_crash_transparency",
            "scale": scale,
            "killed_workers": 1,
            "completed_requests": completed[0],
            "client_visible_failures": len(failures),
        })
