"""Experiment E15 — morsel parallelism and compiled kernels (PR 8).

The PR-8 tentpole claims: (a) compiled columnar kernels close the
PR-5 speedup holes — cross-reference and debugging, stuck near 1x
batch-over-rows, must now clear 1.2x warm; (b) the morsel-driven
parallel pipeline scales the heavy comprehension-rewrite query with
workers on multi-core boxes while returning byte-identical rows.
This suite measures both claims with the Table 5 cold/warm protocol
and gates on them:

* per-query rows-vs-batch warm timings with kernels on
  (BENCH_PR8.json), gating batch never slower on the full mix and
  >= 1.2x warm on xref and debugging;
* a compiled-vs-interpreted kernel ablation (the
  ``use_compiled_kernels`` flag), gating the compiled mix never
  slower than the interpreted one;
* a 1/2/4/8-worker scaling sweep over the mix on a real
  :class:`~repro.server.executor.Executor` pool, gating
  comprehension-rewrite >= 1.5x over serial batch on 4+-core boxes
  (single-core boxes only gate against pathological slowdowns — the
  GIL serializes compute, so threads cannot win there).

Result counts are cross-checked between every configuration — a perf
gate is meaningless if the fast path returns different rows.
"""

import os

from repro.bench.harness import bench_record, run_cold_warm
from repro.cypher import QueryOptions
from repro.server.executor import Executor

from test_bench_execution_modes import MIX_TOLERANCE, _mix, _warm_total
from test_bench_table5_queries import ABORT_AFTER_SECONDS

#: queries whose compiled kernels must deliver >= 1.2x warm over rows
#: (the PR-5 report measured both at ~1x; PR 8 closes that hole)
EXPECT_1_2X = ("xref", "debugging")

#: worker counts for the intra-query parallelism sweep
WORKER_SWEEP = (1, 2, 4, 8)

CORES = os.cpu_count() or 1


def _kernel_mix(frappe, label: str, **option_kwargs):
    """Cold/warm rows for the mix under explicit batch options."""
    rows = {}
    for name, text in _mix(frappe):
        options = QueryOptions(timeout=ABORT_AFTER_SECONDS,
                               execution_mode="batch",
                               **option_kwargs)
        rows[name] = run_cold_warm(
            f"{name} [{label}]",
            lambda text=text, options=options: frappe.query(
                text, options=options),
            frappe.evict_caches,
            abort_after=ABORT_AFTER_SECONDS,
            hit_ratio=frappe.cache_hit_ratio,
            reset_counters=frappe.reset_counters)
    return rows


class TestCompiledKernels:
    """Tentpole (b): compiled kernels versus the row engine."""

    def test_kernels_close_the_table5_holes(self, frappe_store, report,
                                            scale, benchmark,
                                            bench_records_pr8):
        # interleave the two modes per query so box drift over the
        # session cannot skew the ratio between them; the two gated
        # sub-millisecond queries get extra samples because their
        # warm minimum moves by tens of microseconds run to run —
        # the same order as the margin the 1.2x floor is judged on
        row_mode = {}
        batch_mode = {}
        for name, text in _mix(frappe_store):
            runs = 30 if name in EXPECT_1_2X else 10
            for label, mode, dest in (
                    ("rows", "rows", row_mode),
                    ("batch+kernels", "batch", batch_mode)):
                options = QueryOptions(timeout=ABORT_AFTER_SECONDS,
                                       execution_mode=mode)
                dest[name] = run_cold_warm(
                    f"{name} [{label}]",
                    lambda text=text, options=options:
                        frappe_store.query(text, options=options),
                    frappe_store.evict_caches,
                    runs=runs,
                    abort_after=ABORT_AFTER_SECONDS,
                    hit_ratio=frappe_store.cache_hit_ratio,
                    reset_counters=frappe_store.reset_counters)
        lines = []
        speedups = {}
        for name in row_mode:
            rows = row_mode[name]
            batch = batch_mode[name]
            assert not rows.aborted and not batch.aborted
            assert rows.result_count == batch.result_count
            speedups[name] = rows.warm.min / batch.warm.min
            lines.append(f"{name:<24} rows {rows.warm.min:8.2f}ms  "
                         f"batch {batch.warm.min:8.2f}ms  "
                         f"warm speedup {speedups[name]:5.2f}x")
            bench_records_pr8.append(bench_record(
                rows, query_id=f"kernels/{name}/rows"))
            bench_records_pr8.append(bench_record(
                batch, query_id=f"kernels/{name}/batch"))
        report(f"== Compiled kernels: batch vs rows (warm min ms, "
               f"scale {scale:g}) ==\n" + "\n".join(lines))
        # acceptance: the PR-5 ~1x queries now clear 1.2x...
        for name in EXPECT_1_2X:
            assert speedups[name] >= 1.2, (name, speedups)
        # ...and batch stays never-slower across the whole mix
        assert _warm_total(batch_mode) \
            <= _warm_total(row_mode) * MIX_TOLERANCE
        benchmark.pedantic(
            frappe_store.query, args=(_mix(frappe_store)[1][1],),
            kwargs={"options": QueryOptions(
                timeout=ABORT_AFTER_SECONDS, execution_mode="batch")},
            rounds=1, iterations=1)

    def test_compiled_vs_interpreted_ablation(self, frappe_store,
                                              report, scale, benchmark,
                                              bench_records_pr8):
        # measure the two configurations back to back per query, so
        # box drift over the session hits both sides equally
        compiled = {}
        interpreted = {}
        for name, text in _mix(frappe_store):
            for label, flag, rows in (
                    ("compiled", True, compiled),
                    ("interpreted", False, interpreted)):
                options = QueryOptions(timeout=ABORT_AFTER_SECONDS,
                                       execution_mode="batch",
                                       use_compiled_kernels=flag)
                rows[name] = run_cold_warm(
                    f"{name} [{label}]",
                    lambda text=text, options=options:
                        frappe_store.query(text, options=options),
                    frappe_store.evict_caches,
                    abort_after=ABORT_AFTER_SECONDS,
                    hit_ratio=frappe_store.cache_hit_ratio,
                    reset_counters=frappe_store.reset_counters)
        lines = []
        for name in compiled:
            fast = compiled[name]
            slow = interpreted[name]
            assert not fast.aborted and not slow.aborted
            assert fast.result_count == slow.result_count
            lines.append(
                f"{name:<24} compiled {fast.warm.min:8.2f}ms  "
                f"interpreted {slow.warm.min:8.2f}ms  "
                f"({slow.warm.min / fast.warm.min:5.2f}x)")
            bench_records_pr8.append(bench_record(
                fast, query_id=f"kernel_ablation/{name}/compiled"))
            bench_records_pr8.append(bench_record(
                slow, query_id=f"kernel_ablation/{name}/interpreted"))
        report(f"== Compiled vs interpreted kernels (batch mode, warm "
               f"min ms, scale {scale:g}) ==\n" + "\n".join(lines))
        # the kernels must pay for themselves across the mix
        assert _warm_total(compiled) \
            <= _warm_total(interpreted) * MIX_TOLERANCE
        benchmark.pedantic(
            frappe_store.query, args=(_mix(frappe_store)[0][1],),
            kwargs={"options": QueryOptions(
                timeout=ABORT_AFTER_SECONDS, execution_mode="batch",
                use_compiled_kernels=False)},
            rounds=1, iterations=1)


class TestWorkerScaling:
    """Tentpole (a): morsel-driven parallelism on a real pool."""

    def test_worker_sweep(self, frappe_store, report, scale, benchmark,
                          bench_records_pr8):
        engine = frappe_store.engine
        sweeps = {}
        for workers in WORKER_SWEEP:
            if workers == 1:
                sweeps[workers] = _kernel_mix(frappe_store, "serial",
                                              parallelism=1)
                continue
            executor = Executor(lambda *a, **k: None, workers=workers)
            engine.task_spawner = executor.spawn_task
            engine.pool_workers = executor.workers
            try:
                sweeps[workers] = _kernel_mix(
                    frappe_store, f"{workers}w", parallelism=workers)
            finally:
                engine.task_spawner = None
                engine.pool_workers = 0
                executor.close(wait=True)
        lines = []
        for name, _text in _mix(frappe_store):
            counts = {sweep[name].result_count
                      for sweep in sweeps.values()}
            assert len(counts) == 1  # workers never change the rows
            lines.append(f"{name:<24} " + "  ".join(
                f"{workers}w: {sweep[name].warm.min:7.2f}ms"
                for workers, sweep in sweeps.items()))
            for workers, sweep in sweeps.items():
                bench_records_pr8.append(bench_record(
                    sweep[name],
                    query_id=f"parallel/{name}/{workers}w"))
        report(f"== Morsel parallelism worker sweep (batch mode, warm "
               f"min ms, scale {scale:g}, {CORES} cores) ==\n"
               + "\n".join(lines))
        serial = sweeps[1]["comprehension_rewrite"].warm.min
        quad = sweeps[4]["comprehension_rewrite"].warm.min
        if CORES >= 4:
            # the heavy traversal must actually scale with workers
            assert serial / quad >= 1.5, (serial, quad)
        else:
            # GIL-bound boxes cannot speed up, but the ordered-merge
            # driver must not collapse either (cf. the replica-sweep
            # gate's degraded-box floor)
            assert serial / quad >= 0.4, (serial, quad)
        benchmark.pedantic(
            frappe_store.query, args=(_mix(frappe_store)[3][1],),
            kwargs={"options": QueryOptions(
                timeout=ABORT_AFTER_SECONDS, execution_mode="batch",
                parallelism=2)},
            rounds=1, iterations=1)
