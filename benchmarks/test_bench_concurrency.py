"""Concurrent serving benchmarks: thread-sweep throughput + parallel
extraction.

Two experiments the paper does not report but deployment needs:

* **Warm query throughput vs worker count.**  The Table 5 query mix
  (index start + reachability + neighbourhood + aggregate) submitted
  through ``Frappe.query_async`` against the page-cached disk store,
  with the serving pool at 1, 2, 4 and 8 workers.  Snapshot-isolated
  reads share one immutable store, so throughput should not *degrade*
  as workers are added (the GIL caps the speed-up for this pure-Python
  engine; the row to watch is queries/sec staying flat-or-better).

* **Parallel vs serial extraction.**  The same synthetic tree indexed
  with ``jobs=1`` and ``jobs=4``; the graphs must be identical, the
  wall clock should not be (process pool, so the GIL does not apply).

Rows land in ``benchmarks/reports/BENCH_PR4.json``.
"""

import time

import pytest

from repro.build import Build
from repro.core import Frappe, extract_build
from repro.lang.source import VirtualFileSystem
from repro.workloads import generate_codebase

ROUNDS = 12  # each round submits the whole query mix once


def _query_mix(frappe):
    """The Table 5 flavours, grounded in whatever the store contains."""
    seed_rows = frappe.query(
        "MATCH (n:function) RETURN n.short_name").rows
    name = sorted(row[0] for row in seed_rows)[len(seed_rows) // 2]
    return [
        # code search: index start, one hop out
        f"START n=node:node_auto_index('short_name: {name}') "
        "MATCH n -[:calls]-> m RETURN m.short_name",
        # cross-referencing: callers of one function
        f"START n=node:node_auto_index('short_name: {name}') "
        "MATCH n <-[:calls]- m RETURN m.short_name",
        # comprehension: full reachability (rewrite on)
        f"START n=node:node_auto_index('short_name: {name}') "
        "MATCH n -[:calls*]-> m RETURN distinct m",
        # aggregate scan
        "MATCH (n:function) RETURN count(*)",
    ]


class TestWarmThroughput:
    @pytest.mark.parametrize("threads", [1, 2, 4, 8])
    def test_thread_sweep(self, store_dir, scale, bench_records_pr4,
                          threads):
        frappe = Frappe.open(store_dir)
        try:
            queries = _query_mix(frappe)
            total = len(queries) * ROUNDS
            frappe.serve(workers=threads, queue_capacity=total + 8,
                         max_per_client=total)  # throughput, not fairness
            for text in queries:  # warm page cache + plan cache
                frappe.query(text)
            started = time.perf_counter()
            futures = [
                frappe.query_async(text, timeout=60.0,
                                   client=f"bench-{index % threads}")
                for index in range(ROUNDS)
                for text in queries]
            rows = sum(len(f.result(timeout=120.0)) for f in futures)
            elapsed = time.perf_counter() - started
        finally:
            frappe.close()
        bench_records_pr4.append({
            "experiment": "warm_query_throughput",
            "threads": threads,
            "queries": total,
            "rows": rows,
            "wall_ms": round(elapsed * 1000, 3),
            "queries_per_second": round(total / elapsed, 2),
            "scale": scale,
        })
        assert rows > 0


class TestParallelExtraction:
    def test_parallel_vs_serial_wall_time(self, bench_records_pr4):
        codebase = generate_codebase(subsystems=6,
                                     files_per_subsystem=4,
                                     functions_per_file=5)
        timings = {}
        counts = {}
        for jobs in (1, 4):
            build = Build(VirtualFileSystem(dict(codebase.files)),
                          include_paths=["include"], jobs=jobs)
            started = time.perf_counter()
            build.run_script(codebase.build_script)
            graph = extract_build(build)
            timings[jobs] = time.perf_counter() - started
            counts[jobs] = (graph.node_count(), graph.edge_count())
        # determinism is the contract; the speed-up is the point
        assert counts[4] == counts[1]
        for jobs, elapsed in timings.items():
            bench_records_pr4.append({
                "experiment": "extraction_wall_time",
                "jobs": jobs,
                "wall_ms": round(elapsed * 1000, 3),
                "nodes": counts[jobs][0],
                "edges": counts[jobs][1],
                "speedup_vs_serial":
                    round(timings[1] / elapsed, 2),
            })
