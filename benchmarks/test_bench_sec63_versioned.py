"""Experiment E12 — paper Section 6.3: evolving codebases.

The paper's analysis of storing one graph per version: "as large
codebases evolve slowly, most of the graph data extracted remains the
same from one version to the next, so increasing numbers of duplicate
nodes, edges and properties are being needlessly stored over time",
and isolation "fails to take advantage of the potential to query
across versions" (change impact analysis).

The bench evolves a synthetic codebase through k releases (small
change rate per release), extracts each release's graph, and commits
the stream to both store modes, measuring total bytes and checkout
latency — then runs the cross-version impact query isolation forgoes.
"""

import time

import pytest

from repro.build import Build
from repro.core import extract_build
from repro.lang.source import VirtualFileSystem
from repro.versioned import (VersionedGraphStore, align_graph,
                             change_impact, diff_graphs)
from repro.workloads import generate_codebase
from repro.workloads.synthc import evolve

RELEASES = 6


@pytest.fixture(scope="module")
def version_stream():
    """Graphs of k successive releases of one evolving codebase.

    Each release is re-extracted from scratch and then *aligned* onto
    the previous release's identity (stable ids for unchanged
    entities) — without alignment, extractor id drift would make every
    delta look like a rewrite.
    """
    codebase = generate_codebase(subsystems=4, files_per_subsystem=3,
                                 functions_per_file=4, seed=63)
    graphs = []
    for _release in range(RELEASES):
        build = Build(VirtualFileSystem(codebase.files))
        build.run_script(codebase.build_script)
        extracted = extract_build(build)
        if graphs:
            extracted = align_graph(graphs[-1], extracted)
        graphs.append(extracted)
        codebase = evolve(codebase, change_fraction=0.1)
    return graphs


class TestEvolutionIsSlow:
    def test_consecutive_versions_mostly_identical(self, version_stream):
        """The premise: most extracted data is unchanged per release."""
        old, new = version_stream[0], version_stream[1]
        delta = diff_graphs(old, new)
        churn = delta.change_count() / max(old.node_count()
                                           + old.edge_count(), 1)
        assert churn < 0.15


class TestStorageModes:
    def test_duplication_vs_delta(self, version_stream,
                                  tmp_path_factory, report, benchmark):
        isolated = VersionedGraphStore(
            str(tmp_path_factory.mktemp("iso")), mode="isolated")
        delta = VersionedGraphStore(
            str(tmp_path_factory.mktemp("dlt")), mode="delta")
        for index, graph in enumerate(version_stream):
            isolated.commit(graph, f"v{index}")
            delta.commit(graph, f"v{index}")
        iso_bytes = isolated.total_storage_bytes()
        delta_bytes = delta.total_storage_bytes()

        def checkout_ms(store):
            start = time.perf_counter()
            store.checkout(f"v{RELEASES - 1}")
            return (time.perf_counter() - start) * 1000

        iso_ms = checkout_ms(isolated)
        delta_ms = checkout_ms(delta)
        report(
            f"== Section 6.3: versioned storage ({RELEASES} releases) "
            f"==\n"
            f"{'mode':<10} {'total KiB':>10} {'checkout last (ms)':>20}\n"
            f"{'isolated':<10} {iso_bytes / 1024:>10.1f} {iso_ms:>20.1f}\n"
            f"{'delta':<10} {delta_bytes / 1024:>10.1f} "
            f"{delta_ms:>20.1f}\n"
            "(paper: isolation stores 'increasing numbers of duplicate "
            "nodes, edges and properties')")
        # the paper's duplication claim, quantified
        assert delta_bytes < iso_bytes / 3
        # both must reproduce the final version exactly
        assert diff_graphs(isolated.checkout(f"v{RELEASES - 1}"),
                           version_stream[-1]).is_empty
        assert diff_graphs(delta.checkout(f"v{RELEASES - 1}"),
                           version_stream[-1]).is_empty
        benchmark.pedantic(delta.checkout, args=(f"v{RELEASES - 1}",),
                           rounds=1, iterations=1)

    def test_checkout_cost_grows_with_chain(self, version_stream,
                                            tmp_path_factory):
        store = VersionedGraphStore(
            str(tmp_path_factory.mktemp("chain")), mode="delta")
        for index, graph in enumerate(version_stream):
            store.commit(graph, f"v{index}")
        assert store.chain_length("v0") == 0
        assert store.chain_length(f"v{RELEASES - 1}") == RELEASES - 1


class TestCrossVersionQueries:
    def test_change_impact_across_versions(self, version_stream, report,
                                           benchmark):
        old, new = version_stream[0], version_stream[-1]
        impact = benchmark.pedantic(change_impact, args=(old, new),
                                    rounds=1, iterations=1)
        assert impact.changed_functions
        assert impact.impacted_functions >= impact.changed_functions
        report(
            "== Section 6.3: change impact v0 -> "
            f"v{RELEASES - 1} ==\n"
            f"changed functions   {len(impact.changed_functions)}\n"
            f"impacted functions  {len(impact.impacted_functions)}\n"
            f"amplification       {impact.amplification:.2f}x")

    def test_hotfixes_show_up_in_diff(self, version_stream):
        delta = diff_graphs(version_stream[0], version_stream[-1])
        added_names = {properties.get("short_name", "")
                       for _id, _labels, properties in delta.added_nodes}
        assert any("hotfix" in name for name in added_names)


class TestBenchmarks:
    def test_bench_diff(self, benchmark, version_stream):
        delta = benchmark(diff_graphs, version_stream[0],
                          version_stream[1])
        assert not delta.is_empty

    def test_bench_delta_checkout(self, benchmark, version_stream,
                                  tmp_path_factory):
        store = VersionedGraphStore(
            str(tmp_path_factory.mktemp("bco")), mode="delta")
        for index, graph in enumerate(version_stream):
            store.commit(graph, f"v{index}")
        graph = benchmark(store.checkout, f"v{RELEASES - 1}")
        assert graph.node_count() == version_stream[-1].node_count()

    def test_bench_isolated_checkout(self, benchmark, version_stream,
                                     tmp_path_factory):
        store = VersionedGraphStore(
            str(tmp_path_factory.mktemp("bci")), mode="isolated")
        for index, graph in enumerate(version_stream):
            store.commit(graph, f"v{index}")
        graph = benchmark(store.checkout, f"v{RELEASES - 1}")
        assert graph.node_count() == version_stream[-1].node_count()
