"""Experiment E5–E9 — paper Table 5: use-case query performance.

The paper's protocol: each of the Section 4 example queries (Figures
3–6), run ten times cold and ten times warm over the UEK graph in
Neo4j; Table 5 reports min/avg/max per regime plus result counts. The
comprehension query (Figure 6) "does not terminate within 15 minutes"
in Cypher, while the embedded traversal answers in ~20 ms.

Here the same queries run verbatim against the page-cached disk store;
cold rounds evict the page + object caches first. The expected *shape*
(paper at 50x our default scale):

* code search / cross-referencing: cold in the seconds, warm ~100 ms —
  for us: cold >> warm, both fast;
* debugging: same shape, slightly heavier;
* comprehension in Cypher: aborted on a time budget;
* comprehension via the traversal API: sub-second even cold.
"""

import pytest

from repro.bench.harness import bench_record, run_cold_warm
from repro.cypher import QueryOptions
from repro.errors import QueryTimeoutError

FIGURE3 = (
    "START m=node:node_auto_index('short_name: wakeup.elf') "
    "MATCH m -[:compiled_from|linked_from*]-> f "
    "WITH distinct f "
    "MATCH f -[:file_contains]-> (n:field{short_name: 'id'}) "
    "RETURN n")

FIGURE4_TEMPLATE = (
    "START n=node:node_auto_index('short_name: id') "
    "WHERE (n) <-[{{name_file_id: {file}, name_start_line: 104, "
    "name_start_col: 16}}]- () RETURN n")

FIGURE5 = """
START from=node:node_auto_index('short_name: sr_media_change'),
 to=node:node_auto_index('short_name: get_sectorsize'),
 b=node:node_auto_index('short_name: packet_command')
MATCH writer -[write:writes_member]-> ({SHORT_NAME:'cmd'}) <-[:contains]- b
WITH to, from, writer, write
MATCH direct <-[s:calls]- from -[r:calls{use_start_line: 236}]-> to
WHERE r.use_start_line >= s.use_start_line AND direct -[:calls*]-> writer
RETURN distinct writer, write.use_start_line
"""

FIGURE6 = (
    "START n=node:node_auto_index('short_name: pci_read_bases') "
    "MATCH n -[:calls*]-> m RETURN distinct m")

#: per-run time budget standing in for the paper's 15-minute abort.
ABORT_AFTER_SECONDS = 5.0

#: the paper's pathological Cypher run: reachability rewrite off, so
#: the var-length pattern enumerates paths exactly as Neo4j 1.x did.
NO_REWRITE = QueryOptions(timeout=ABORT_AFTER_SECONDS,
                          use_reachability_rewrite=False)


def _figure4(frappe):
    wakeup_core = next(iter(frappe.view.indexes.lookup(
        "short_name", "wakeup_core.c")))
    return FIGURE4_TEMPLATE.format(file=wakeup_core)


def _top_operator(frappe, text, timeout=None):
    """Name of the operator a PROFILE run spends most time in."""
    hottest = frappe.profile(text, timeout=timeout).profile.hottest()
    return hottest.name if hottest is not None else None


def _db_hits(frappe, text, rewrite=None):
    """Total db-hits of one PROFILE run (None if it times out)."""
    options = QueryOptions(timeout=ABORT_AFTER_SECONDS, profile=True,
                           use_reachability_rewrite=rewrite)
    try:
        result = frappe.query(text, options=options)
    except QueryTimeoutError:
        return None
    return result.profile.total_db_hits()


class TestTable5ColdWarmProtocol:
    """One run of the full paper protocol, reported as a table."""

    def test_table5_rows(self, frappe_store, report, scale, benchmark,
                         bench_records):
        rows = []
        queries = [
            ("Code search (Fig.3)", FIGURE3,
             lambda: frappe_store.query(FIGURE3)),
            ("X-referencing (Fig.4)", _figure4(frappe_store),
             lambda: frappe_store.query(_figure4(frappe_store))),
            ("Debugging (Fig.5)", FIGURE5,
             lambda: frappe_store.query(FIGURE5)),
            ("Comprehension (Fig.6)", FIGURE6,
             lambda: frappe_store.query(FIGURE6, options=NO_REWRITE)),
        ]
        for name, text, query in queries:
            rows.append(run_cold_warm(
                name, query, frappe_store.evict_caches,
                abort_after=ABORT_AFTER_SECONDS,
                hit_ratio=frappe_store.cache_hit_ratio,
                reset_counters=frappe_store.reset_counters,
                top_operator=lambda text=text: _top_operator(
                    frappe_store, text, timeout=ABORT_AFTER_SECONDS)))
        rewritten = run_cold_warm(
            "Comprehension (rewrite)",
            lambda: frappe_store.query(FIGURE6,
                                       timeout=ABORT_AFTER_SECONDS),
            frappe_store.evict_caches,
            abort_after=ABORT_AFTER_SECONDS,
            hit_ratio=frappe_store.cache_hit_ratio,
            reset_counters=frappe_store.reset_counters,
            top_operator=lambda: _top_operator(
                frappe_store, FIGURE6, timeout=ABORT_AFTER_SECONDS))
        rows.append(rewritten)
        native = run_cold_warm(
            "Comprehension (native)",
            lambda: frappe_store.backward_slice("pci_read_bases"),
            frappe_store.evict_caches,
            hit_ratio=frappe_store.cache_hit_ratio,
            reset_counters=frappe_store.reset_counters)
        rows.append(native)
        report(f"== Table 5: query performance (ms, scale {scale:g}, "
               f"10 cold + 10 warm runs; pc-hit = cold/warm cache hit "
               f"ratio, top = hottest PROFILE operator) ==\n"
               + "\n".join(row.format_row() for row in rows))
        # shape assertions, mirroring the paper
        (search, xref, debugging, comprehension, rewrite_row,
         native_row) = rows
        for row in (search, xref, debugging):
            assert not row.aborted
            # cold never beats warm (30% tolerance: sub-millisecond
            # rows are noisy on a shared machine)
            assert row.cold.avg >= row.warm.avg * 0.7
            assert row.result_count >= 1
            # warm runs are fully absorbed by the caches, cold runs
            # must fault their pages in from disk
            assert row.warm_hit_ratio > row.cold_hit_ratio
            assert row.top_operator is not None
        assert comprehension.aborted  # Cypher closure: "> 15 mins"
        # the reachability rewrite turns the same Cypher text into a
        # completing query, >= 10x under the rewrite-off abort budget
        assert not rewrite_row.aborted
        assert rewrite_row.warm.avg < ABORT_AFTER_SECONDS * 1000 / 10
        assert not native_row.aborted  # "~20ms via the Java API"
        assert native_row.warm.avg < 1000.0
        # feed the machine-readable BENCH_PR3.json report
        bench_records.extend([
            bench_record(search, query_id="table5/code_search",
                         db_hits=_db_hits(frappe_store, FIGURE3)),
            bench_record(xref, query_id="table5/xref",
                         db_hits=_db_hits(frappe_store,
                                          _figure4(frappe_store))),
            bench_record(debugging, query_id="table5/debugging",
                         db_hits=_db_hits(frappe_store, FIGURE5)),
            bench_record(comprehension,
                         query_id="table5/comprehension_cypher",
                         planner="cost-based (rewrite off)",
                         db_hits=_db_hits(frappe_store, FIGURE6,
                                          rewrite=False)),
            bench_record(rewrite_row,
                         query_id="table5/comprehension_rewrite",
                         db_hits=_db_hits(frappe_store, FIGURE6,
                                          rewrite=True)),
            bench_record(native_row,
                         query_id="table5/comprehension_native",
                         planner="native traversal"),
        ])
        # register one representative timing with pytest-benchmark so
        # this protocol test also runs under --benchmark-only
        benchmark.pedantic(frappe_store.query, args=(FIGURE3,),
                           rounds=1, iterations=1)


class TestTable5IndividualBenchmarks:
    """pytest-benchmark timings per query, warm and cold."""

    def test_code_search_warm(self, benchmark, frappe_store):
        result = benchmark(frappe_store.query, FIGURE3)
        assert len(result) >= 1

    def test_code_search_cold(self, benchmark, frappe_store):
        result = benchmark.pedantic(
            frappe_store.query, args=(FIGURE3,),
            setup=lambda: (frappe_store.evict_caches(), None)[1],
            rounds=10, iterations=1)
        assert len(result) >= 1

    def test_xref_warm(self, benchmark, frappe_store):
        query = _figure4(frappe_store)
        result = benchmark(frappe_store.query, query)
        assert len(result) == 1

    def test_xref_cold(self, benchmark, frappe_store):
        query = _figure4(frappe_store)
        result = benchmark.pedantic(
            frappe_store.query, args=(query,),
            setup=lambda: (frappe_store.evict_caches(), None)[1],
            rounds=10, iterations=1)
        assert len(result) == 1

    def test_debugging_warm(self, benchmark, frappe_store):
        result = benchmark(frappe_store.query, FIGURE5)
        assert len(result) >= 1

    def test_debugging_cold(self, benchmark, frappe_store):
        result = benchmark.pedantic(
            frappe_store.query, args=(FIGURE5,),
            setup=lambda: (frappe_store.evict_caches(), None)[1],
            rounds=10, iterations=1)
        assert len(result) >= 1

    def test_comprehension_native_warm(self, benchmark, frappe_store):
        closure = benchmark(frappe_store.backward_slice,
                            "pci_read_bases")
        assert len(closure) > 3

    def test_comprehension_native_cold(self, benchmark, frappe_store):
        closure = benchmark.pedantic(
            frappe_store.backward_slice, args=("pci_read_bases",),
            setup=lambda: (frappe_store.evict_caches(), None)[1],
            rounds=10, iterations=1)
        assert len(closure) > 3


def test_comprehension_cypher_aborts(frappe_store, report, benchmark):
    """The paper's '> 15 mins, aborted' row, with a scaled budget."""
    with pytest.raises(QueryTimeoutError):
        frappe_store.query(FIGURE6, options=NO_REWRITE)
    report("== Table 5 note ==\n"
           f"Comprehension (Fig.6) in Cypher: aborted after "
           f"{ABORT_AFTER_SECONDS:.0f}s budget "
           "(paper: > 15 mins, aborted; reachability rewrite off)")
    benchmark.pedantic(frappe_store.backward_slice,
                       args=("pci_read_bases",), rounds=1, iterations=1)
