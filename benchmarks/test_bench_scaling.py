"""Scaling sweep: how each query class grows with graph size.

The paper's pitch is that Frappé "scales both in terms of performance
and presentation" to 10s of MLoC. This sweep generates the synthetic
kernel at three sizes and measures the growth law of each query class:

* index-backed code search — should be roughly flat (index probes),
* native transitive closure — linear in the reached subgraph,
* Cypher transitive closure — super-linear (path enumeration), which
  is why the paper had to bypass Cypher (Section 6.1).
"""

import time

import pytest

from repro.core.frappe import Frappe
from repro.errors import QueryTimeoutError
from repro.workloads import generate_kernel_graph
from repro.workloads.profiles import UEK_PROFILE

SCALES = (0.005, 0.01, 0.02)

SEARCH = ("START m=node:node_auto_index('short_name: wakeup.elf') "
          "MATCH m -[:compiled_from|linked_from*]-> f "
          "WITH distinct f "
          "MATCH f -[:file_contains]-> (n:field{short_name: 'id'}) "
          "RETURN n")
CLOSURE = ("START n=node:node_auto_index('short_name: pci_read_bases') "
           "MATCH n -[:calls*]-> m RETURN distinct m")


@pytest.fixture(scope="module")
def frappes():
    instances = []
    for scale in SCALES:
        graph = generate_kernel_graph(UEK_PROFILE.scaled(scale))
        instances.append((scale, Frappe(graph)))
    return instances


def _avg_ms(fn, runs: int = 5) -> float:
    fn()
    start = time.perf_counter()
    for _ in range(runs):
        fn()
    return (time.perf_counter() - start) * 1000 / runs


class TestScalingSweep:
    def test_sweep(self, frappes, report, benchmark):
        lines = [f"{'scale':>8} {'nodes':>8} {'search ms':>10} "
                 f"{'closure ms':>11} {'cypher closure':>15}"]
        search_times = []
        closure_times = []
        for scale, frappe in frappes:
            search_ms = _avg_ms(lambda f=frappe: f.query(SEARCH))
            closure_ms = _avg_ms(
                lambda f=frappe: f.backward_slice("pci_read_bases"))
            try:
                start = time.perf_counter()
                frappe.query(CLOSURE, timeout=2.0)
                elapsed_ms = (time.perf_counter() - start) * 1000
                cypher_cell = f"{elapsed_ms:>14.1f}m"
            except QueryTimeoutError:
                cypher_cell = "       aborted"
            search_times.append(search_ms)
            closure_times.append(closure_ms)
            lines.append(f"{scale:>8g} {frappe.metrics().node_count:>8} "
                         f"{search_ms:>10.2f} {closure_ms:>11.2f} "
                         f"{cypher_cell:>15}")
        report("== Scaling sweep ==\n" + "\n".join(lines)
               + "\n(index search ~flat; native closure ~linear; "
               "Cypher closure diverges)")
        # search grows far slower than the 4x size spread
        assert search_times[-1] < search_times[0] * 6
        # native closure stays interactive at every scale
        assert all(ms < 2000 for ms in closure_times)
        scale, frappe = frappes[0]
        benchmark.pedantic(frappe.query, args=(SEARCH,), rounds=1,
                           iterations=1)

    def test_closure_latency_tracks_result_size(self, frappes):
        """Native closure cost is linear-ish in nodes reached."""
        sizes = []
        times = []
        for _scale, frappe in frappes:
            closure = frappe.backward_slice("pci_read_bases")
            sizes.append(max(len(closure), 1))
            times.append(_avg_ms(
                lambda f=frappe: f.backward_slice("pci_read_bases")))
        # cost per reached node must not explode across the sweep
        unit_costs = [t / s for t, s in zip(times, sizes)]
        assert max(unit_costs) < 25 * min(unit_costs)
