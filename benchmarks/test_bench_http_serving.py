"""HTTP serving-tier benchmark: replica-sweep throughput + latency.

The deployment experiment behind ``frappe serve --http --replicas N``:
the Table 5 query mix submitted over the wire by concurrent
``FrappeClient`` threads, against 1, 2 and 4 mmap'd replica worker
processes sharing one OS page cache.

Each replica is its own interpreter, so on a multi-core box the sweep
shows the GIL ceiling lifting: the acceptance gate (4-replica warm
throughput at least twice the 1-replica figure) is asserted when the
machine actually has 4+ cores, and recorded honestly either way — on
a single-core CI runner the processes time-share one core and the
row to watch is throughput staying flat rather than collapsing under
the extra process and wire overhead.

Rows land in ``benchmarks/reports/BENCH_PR7.json``.
"""

import os
import threading
import time

import pytest

from repro.client import FrappeClient
from repro.server.http import HttpServer
from repro.server.replica import ReplicaBackend, ReplicaSet

from test_bench_concurrency import _query_mix

ROUNDS = 5          # each client thread runs the whole mix this often
CLIENT_THREADS = 3  # concurrent wire clients per sweep point
REPLICA_SWEEP = (1, 2, 4)


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1,
                max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


class TestReplicaSweep:
    @pytest.fixture(scope="class")
    def query_mix(self, frappe_store):
        return _query_mix(frappe_store)

    @pytest.fixture(scope="class")
    def sweep(self, store_dir, query_mix):
        """Run the whole sweep once; tests assert over its rows."""
        rows_by_replicas = {}
        for replicas in REPLICA_SWEEP:
            rows_by_replicas[replicas] = self._measure(
                store_dir, query_mix, replicas)
        return rows_by_replicas

    @staticmethod
    def _measure(store_dir, queries, replicas):
        with ReplicaSet(store_dir, replicas=replicas) as replica_set:
            backend = ReplicaBackend(
                replica_set,
                queue_capacity=len(queries) * ROUNDS
                * CLIENT_THREADS + 8,
                max_per_client=len(queries) * ROUNDS + 8)
            server = HttpServer(backend).start_background()
            try:
                with FrappeClient(port=server.port,
                                  client_id="warm") as warmer:
                    for text in queries:  # warm plan + page caches
                        warmer.query(text, timeout=120.0)
                latencies = []
                failures = []
                produced = [0]
                lock = threading.Lock()

                def run_mix(thread_index):
                    with FrappeClient(
                            port=server.port,
                            client_id=f"bench-{thread_index}",
                            timeout=180.0) as client:
                        for _ in range(ROUNDS):
                            for text in queries:
                                begun = time.perf_counter()
                                try:
                                    result = client.query(
                                        text, timeout=120.0)
                                except Exception as error:
                                    with lock:
                                        failures.append(error)
                                    continue
                                elapsed = time.perf_counter() - begun
                                with lock:
                                    latencies.append(elapsed)
                                    produced[0] += len(result)

                threads = [threading.Thread(target=run_mix,
                                            args=(index,))
                           for index in range(CLIENT_THREADS)]
                started = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                wall = time.perf_counter() - started
            finally:
                server.stop(close_backend=False)
        total = len(queries) * ROUNDS * CLIENT_THREADS
        return {
            "replicas": replicas,
            "queries": total,
            "failures": len(failures),
            "rows": produced[0],
            "wall_ms": round(wall * 1000, 3),
            "queries_per_second": round(total / wall, 2),
            "p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
            "p99_ms": round(_percentile(latencies, 0.99) * 1000, 3),
        }

    def test_replica_sweep(self, sweep, scale, report,
                           bench_records_pr7):
        lines = [f"{'replicas':>8} {'q/s':>8} {'p50 ms':>9} "
                 f"{'p99 ms':>9} {'failures':>9}"]
        for replicas in REPLICA_SWEEP:
            row = sweep[replicas]
            bench_records_pr7.append(
                {"experiment": "http_replica_throughput",
                 "scale": scale, **row})
            lines.append(
                f"{row['replicas']:>8} "
                f"{row['queries_per_second']:>8.2f} "
                f"{row['p50_ms']:>9.2f} {row['p99_ms']:>9.2f} "
                f"{row['failures']:>9}")
        report("HTTP replica sweep (Table 5 mix over the wire)\n"
               + "\n".join(lines))
        for row in sweep.values():
            assert row["failures"] == 0
            assert row["rows"] > 0

    def test_scaling_gate_on_multicore(self, sweep):
        """The ISSUE acceptance gate: 4 replicas >= 2x one replica.

        Real parallelism needs real cores; on fewer than 4 the
        processes time-share and the gate is physically unreachable
        for a CPU-bound pure-Python engine, so (like the PR 4 GIL
        rows) the figures are recorded and only the never-collapse
        floor is enforced.
        """
        single = sweep[1]["queries_per_second"]
        quad = sweep[4]["queries_per_second"]
        cores = os.cpu_count() or 1
        if cores >= 4:
            assert quad >= 2.0 * single, (
                f"4-replica throughput {quad} q/s is less than 2x "
                f"the 1-replica {single} q/s on a {cores}-core box")
        else:
            # single core: wire + router overhead must not collapse
            # throughput as replicas are added
            assert quad >= 0.4 * single

    def test_tail_latency_reported(self, sweep):
        for row in sweep.values():
            assert row["p99_ms"] >= row["p50_ms"] > 0
