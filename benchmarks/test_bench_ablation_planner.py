"""Ablation A3 (DESIGN.md): index-backed anchors vs label scans.

The paper's code-search latency leans on the Lucene-backed auto index
(``START n=node:node_auto_index(...)``); our planner extends the same
idea to MATCH patterns with property literals. This ablation turns the
index seek off and measures what Table 5's search-style queries would
cost with label scans + property filters instead.

Two further ablations ride on the same kernel graph:

* cost-based planning (statistics-driven anchor + expansion order)
  vs the legacy heuristic planner — the cost-based plan must never be
  slower on Table 5-shaped queries;
* the var-length reachability rewrite on vs off on the E8 transitive
  closure — the CI gate: the rewrite must be at least 5x faster even
  at the small CI scale, or the job fails.
"""

import time

import pytest

from repro.cypher import CypherEngine, QueryOptions
from repro.errors import QueryTimeoutError

QUERY = "MATCH (n:field{short_name: 'id'}) RETURN n"

#: Table 5-shaped queries for the cost-based vs heuristic comparison.
PLANNER_QUERIES = (
    ("anchor", QUERY),
    ("expand", "MATCH (f:function) -[:calls]-> "
               "(g:function{short_name: 'pci_read_bases'}) RETURN f"),
    ("chain", "START n=node:node_auto_index("
              "'short_name: pci_read_bases') "
              "MATCH n -[:calls]-> m -[:calls]-> k RETURN distinct k"),
)

#: E8 closure (paper Figure 6) — the reachability-rewrite CI gate.
CLOSURE = ("START n=node:node_auto_index("
           "'short_name: pci_read_bases') "
           "MATCH n -[:calls*]-> m RETURN distinct m")

CLOSURE_BUDGET_SECONDS = 5.0


@pytest.fixture(scope="module")
def engines(kernel_graph):
    return (CypherEngine(kernel_graph, use_index_seek=True),
            CypherEngine(kernel_graph, use_index_seek=False))


class TestAblation:
    def test_same_answers(self, engines):
        seek, scan = engines
        assert {row[0].id for row in seek.run(QUERY).rows} == \
            {row[0].id for row in scan.run(QUERY).rows}

    def test_seek_beats_scan(self, engines, report, scale, benchmark):
        seek, scan = engines

        def avg_ms(engine):
            engine.run(QUERY)
            start = time.perf_counter()
            for _ in range(10):
                engine.run(QUERY)
            return (time.perf_counter() - start) * 100

        seek_ms = avg_ms(seek)
        scan_ms = avg_ms(scan)
        report(f"== Ablation: MATCH anchor strategy (avg ms, scale "
               f"{scale:g}) ==\n"
               f"auto-index seek   {seek_ms:8.2f}\n"
               f"label scan        {scan_ms:8.2f}\n"
               f"speedup           {scan_ms / max(seek_ms, 1e-9):8.1f}x")
        assert seek_ms < scan_ms
        benchmark.pedantic(seek.run, args=(QUERY,), rounds=1,
                           iterations=1)

    def test_bench_with_index_seek(self, benchmark, engines):
        seek, _scan = engines
        assert len(benchmark(seek.run, QUERY)) >= 1

    def test_bench_without_index_seek(self, benchmark, engines):
        _seek, scan = engines
        assert len(benchmark(scan.run, QUERY)) >= 1


@pytest.fixture(scope="module")
def planner_engines(kernel_graph):
    return (CypherEngine(kernel_graph, use_cost_based_planner=True),
            CypherEngine(kernel_graph, use_cost_based_planner=False))


def _warm_avg_ms(engine, query, runs=5):
    engine.run(query)
    start = time.perf_counter()
    for _ in range(runs):
        engine.run(query)
    return (time.perf_counter() - start) * 1000 / runs


class TestCostBasedVsHeuristic:
    """ISSUE acceptance: cost-based anchoring never slower."""

    def test_same_answers(self, planner_engines):
        cost, heuristic = planner_engines
        for _name, query in PLANNER_QUERIES:
            assert sorted(map(repr, cost.run(query).rows)) == \
                sorted(map(repr, heuristic.run(query).rows))

    def test_never_slower(self, planner_engines, report, scale,
                          benchmark, bench_records):
        cost, heuristic = planner_engines
        lines = [f"{'query':<10} {'cost_ms':>9} {'heuristic_ms':>13}"]
        for name, query in PLANNER_QUERIES:
            cost_ms = _warm_avg_ms(cost, query)
            heuristic_ms = _warm_avg_ms(heuristic, query)
            lines.append(f"{name:<10} {cost_ms:9.3f} "
                         f"{heuristic_ms:13.3f}")
            bench_records.append({
                "query": f"ablation/planner_{name}",
                "planner": "cost-based",
                "warm_ms": round(cost_ms, 3),
                "heuristic_warm_ms": round(heuristic_ms, 3),
            })
            # never slower, with slack for sub-millisecond noise on a
            # shared machine
            assert cost_ms <= heuristic_ms * 1.5 + 1.0
        report(f"== Ablation: cost-based vs heuristic planner (avg "
               f"warm ms, scale {scale:g}) ==\n" + "\n".join(lines))
        benchmark.pedantic(cost.run, args=(PLANNER_QUERIES[0][1],),
                           rounds=1, iterations=1)


class TestReachabilityRewriteGate:
    """CI gate: the E8 rewrite must be >= 5x faster at CI scale."""

    def test_rewrite_5x_gate(self, kernel_graph, report, scale,
                             benchmark, bench_records):
        on = CypherEngine(kernel_graph)
        off = CypherEngine(kernel_graph,
                           use_reachability_rewrite=False)
        options = QueryOptions(timeout=CLOSURE_BUDGET_SECONDS)
        start = time.perf_counter()
        result = on.run(CLOSURE, options=options)
        on_seconds = time.perf_counter() - start
        start = time.perf_counter()
        try:
            off_result = off.run(CLOSURE, options=options)
            off_seconds = time.perf_counter() - start
            off_cell = f"{off_seconds * 1000:9.1f} ms"
            assert {row[0].id for row in result.rows} == \
                {row[0].id for row in off_result.rows}
        except QueryTimeoutError:
            off_seconds = CLOSURE_BUDGET_SECONDS  # lower bound
            off_cell = f"  aborted (> {CLOSURE_BUDGET_SECONDS:.0f}s)"
        speedup = off_seconds / max(on_seconds, 1e-9)
        bench_records.append({
            "query": "ablation/e8_rewrite_gate",
            "planner": "cost-based + reachability rewrite",
            "rewrite_on_ms": round(on_seconds * 1000, 3),
            "rewrite_off_ms": round(off_seconds * 1000, 3),
            "speedup": round(speedup, 1),
            "result_count": len(result),
        })
        report(f"== CI gate: E8 reachability rewrite (scale "
               f"{scale:g}) ==\n"
               f"rewrite on   {on_seconds * 1000:9.1f} ms "
               f"({len(result)} nodes)\n"
               f"rewrite off  {off_cell}\n"
               f"speedup      {speedup:9.1f}x (gate: >= 5x)")
        assert len(result) >= 1
        assert speedup >= 5.0
        benchmark.pedantic(on.run, args=(CLOSURE,), rounds=1,
                           iterations=1)
