"""Ablation A3 (DESIGN.md): index-backed anchors vs label scans.

The paper's code-search latency leans on the Lucene-backed auto index
(``START n=node:node_auto_index(...)``); our planner extends the same
idea to MATCH patterns with property literals. This ablation turns the
index seek off and measures what Table 5's search-style queries would
cost with label scans + property filters instead.
"""

import time

import pytest

from repro.cypher import CypherEngine

QUERY = "MATCH (n:field{short_name: 'id'}) RETURN n"


@pytest.fixture(scope="module")
def engines(kernel_graph):
    return (CypherEngine(kernel_graph, use_index_seek=True),
            CypherEngine(kernel_graph, use_index_seek=False))


class TestAblation:
    def test_same_answers(self, engines):
        seek, scan = engines
        assert {row[0].id for row in seek.run(QUERY).rows} == \
            {row[0].id for row in scan.run(QUERY).rows}

    def test_seek_beats_scan(self, engines, report, scale, benchmark):
        seek, scan = engines

        def avg_ms(engine):
            engine.run(QUERY)
            start = time.perf_counter()
            for _ in range(10):
                engine.run(QUERY)
            return (time.perf_counter() - start) * 100

        seek_ms = avg_ms(seek)
        scan_ms = avg_ms(scan)
        report(f"== Ablation: MATCH anchor strategy (avg ms, scale "
               f"{scale:g}) ==\n"
               f"auto-index seek   {seek_ms:8.2f}\n"
               f"label scan        {scan_ms:8.2f}\n"
               f"speedup           {scan_ms / max(seek_ms, 1e-9):8.1f}x")
        assert seek_ms < scan_ms
        benchmark.pedantic(seek.run, args=(QUERY,), rounds=1,
                           iterations=1)

    def test_bench_with_index_seek(self, benchmark, engines):
        seek, _scan = engines
        assert len(benchmark(seek.run, QUERY)) >= 1

    def test_bench_without_index_seek(self, benchmark, engines):
        _seek, scan = engines
        assert len(benchmark(scan.run, QUERY)) >= 1
