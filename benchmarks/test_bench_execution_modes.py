"""Experiment E10 — batch vs row execution over the Table 5 mix.

The PR-5 tentpole claims: vectorized batch-at-a-time execution is
never slower than the row-at-a-time engine on the paper's use-case
queries, and at least twice as fast warm on the traversal-heavy ones
(code search, comprehension-with-rewrite), where the batch kernels'
bulk adjacency resolution and bulk label filtering pay off. This
suite measures that claim with the same cold/warm protocol as the
Table 5 benchmark and gates on it:

* per-query rows-vs-batch cold/warm timings (BENCH_PR5.json);
* >= 2x warm speedup on at least two Table 5 queries;
* mix-level "batch never slower than rows" (sum of warm averages,
  with a small tolerance for sub-millisecond noise);
* mmap zero-copy reads never slower than the buffered page cache on
  the same mix;
* a morsel-size ablation (128 / 1024 / 8192) on the batch-heavy
  queries.

Result counts are cross-checked between modes on every run — a perf
gate is meaningless if the fast path returns different rows.
"""

from repro.bench.harness import bench_record, run_cold_warm
from repro.core.config import StoreConfig
from repro.core.frappe import Frappe
from repro.cypher import QueryOptions

from test_bench_table5_queries import (ABORT_AFTER_SECONDS, FIGURE3,
                                       FIGURE5, FIGURE6, _figure4)

#: queries whose batch kernels must deliver >= 2x warm (acceptance).
EXPECT_2X = ("code_search", "comprehension_rewrite")

#: headroom for sub-millisecond timing noise in the mix-level gates.
MIX_TOLERANCE = 1.15


def _options(mode: str, morsel_size: int | None = None) -> QueryOptions:
    return QueryOptions(timeout=ABORT_AFTER_SECONDS,
                        execution_mode=mode, morsel_size=morsel_size)


def _mix(frappe) -> list[tuple[str, str]]:
    """The Table 5 query mix (Figure 6 under the rewrite, so it
    completes in both modes)."""
    return [
        ("code_search", FIGURE3),
        ("xref", _figure4(frappe)),
        ("debugging", FIGURE5),
        ("comprehension_rewrite", FIGURE6),
    ]


def _run_mix(frappe, mode: str,
             morsel_size: int | None = None) -> dict[str, object]:
    """Cold/warm rows for the whole mix in one execution mode."""
    rows = {}
    for name, text in _mix(frappe):
        options = _options(mode, morsel_size)
        rows[name] = run_cold_warm(
            f"{name} [{mode}]",
            lambda text=text, options=options: frappe.query(
                text, options=options),
            frappe.evict_caches,
            abort_after=ABORT_AFTER_SECONDS,
            hit_ratio=frappe.cache_hit_ratio,
            reset_counters=frappe.reset_counters)
    return rows


def _warm_total(rows) -> float:
    # gate on the min: it is what the report tables print, and it is
    # robust to the one-off scheduler spikes that make a 10-run avg
    # flap on a loaded box (a real regression moves the min too)
    return sum(row.warm.min for row in rows.values())


class TestBatchVersusRows:
    """The tentpole's acceptance gate, measured."""

    def test_table5_mix_batch_vs_rows(self, frappe_store, report, scale,
                                      benchmark, bench_records_pr5):
        row_mode = _run_mix(frappe_store, "rows")
        batch_mode = _run_mix(frappe_store, "batch")
        lines = []
        speedups = {}
        for name in row_mode:
            rows = row_mode[name]
            batch = batch_mode[name]
            assert not rows.aborted and not batch.aborted
            # both modes must agree on the result set size
            assert rows.result_count == batch.result_count
            # min-of-10 is the noise-robust estimator on a shared box
            speedups[name] = rows.warm.min / batch.warm.min
            lines.append(f"{name:<24} rows {rows.warm.min:8.2f}ms  "
                         f"batch {batch.warm.min:8.2f}ms  "
                         f"warm speedup {speedups[name]:5.2f}x")
            bench_records_pr5.append(bench_record(
                rows, query_id=f"exec_mode/{name}/rows"))
            bench_records_pr5.append(bench_record(
                batch, query_id=f"exec_mode/{name}/batch"))
        report(f"== Batch vs row execution (warm min ms, scale "
               f"{scale:g}, 10 cold + 10 warm runs) ==\n"
               + "\n".join(lines))
        # acceptance: >= 2x warm on at least two Table 5 queries —
        # and specifically on the traversal-heavy pair the batch
        # kernels target
        at_least_2x = [name for name, ratio in speedups.items()
                       if ratio >= 2.0]
        assert len(at_least_2x) >= 2, speedups
        for name in EXPECT_2X:
            assert speedups[name] >= 2.0, (name, speedups[name])
        # mix-level: batch never slower than rows across the mix
        assert _warm_total(batch_mode) \
            <= _warm_total(row_mode) * MIX_TOLERANCE
        benchmark.pedantic(
            frappe_store.query, args=(FIGURE3,),
            kwargs={"options": _options("batch")},
            rounds=1, iterations=1)


class TestMmapReadPath:
    """Zero-copy mmap reads against the buffered LRU page cache."""

    def test_mmap_never_slower_on_mix(self, store_dir, frappe_store,
                                      report, scale, benchmark,
                                      bench_records_pr5):
        buffered = _run_mix(frappe_store, "batch")
        with Frappe.open(store_dir,
                         config=StoreConfig(mmap=True)) as mapped:
            mmap_rows = _run_mix(mapped, "batch")
        lines = []
        for name in buffered:
            disk = buffered[name]
            zero_copy = mmap_rows[name]
            assert not disk.aborted and not zero_copy.aborted
            assert disk.result_count == zero_copy.result_count
            lines.append(
                f"{name:<24} buffered {disk.warm.min:8.2f}ms  "
                f"mmap {zero_copy.warm.min:8.2f}ms  "
                f"cold {disk.cold.min:8.2f}/"
                f"{zero_copy.cold.min:8.2f}ms")
            bench_records_pr5.append(bench_record(
                zero_copy, query_id=f"read_path/{name}/mmap"))
            bench_records_pr5.append(bench_record(
                disk, query_id=f"read_path/{name}/buffered"))
        report(f"== mmap vs buffered read path (batch mode, scale "
               f"{scale:g}) ==\n" + "\n".join(lines))
        # the zero-copy path must not regress the mix
        assert _warm_total(mmap_rows) \
            <= _warm_total(buffered) * MIX_TOLERANCE
        benchmark.pedantic(frappe_store.query, args=(FIGURE3,),
                           rounds=1, iterations=1)


class TestMorselAblation:
    """Morsel-size sweep over the batch-heavy queries."""

    def test_morsel_sizes(self, frappe_store, report, scale, benchmark,
                          bench_records_pr5):
        sweeps = {}
        for morsel in (128, 1024, 8192):
            sweeps[morsel] = _run_mix(frappe_store, "batch",
                                      morsel_size=morsel)
        lines = []
        baseline = sweeps[1024]
        for name in baseline:
            counts = {sweep[name].result_count
                      for sweep in sweeps.values()}
            assert len(counts) == 1  # morsel size never changes rows
            lines.append(f"{name:<24} " + "  ".join(
                f"{morsel}: {sweep[name].warm.min:7.2f}ms"
                for morsel, sweep in sweeps.items()))
            for morsel, sweep in sweeps.items():
                bench_records_pr5.append(bench_record(
                    sweep[name],
                    query_id=f"morsel/{name}/{morsel}"))
        report(f"== Morsel-size ablation (batch mode, warm min ms, "
               f"scale {scale:g}) ==\n" + "\n".join(lines))
        # the default must stay within noise of the best setting —
        # an ablation that shows 1024 badly mistuned should fail.
        # Sub-2ms queries are skipped: their minima jitter by more
        # than the morsel effect on a shared box.
        for name in baseline:
            best = min(sweep[name].warm.min
                       for sweep in sweeps.values())
            if best >= 2.0:
                assert baseline[name].warm.min <= best * 1.5
        benchmark.pedantic(
            frappe_store.query, args=(FIGURE6,),
            kwargs={"options": _options("batch", morsel_size=128)},
            rounds=1, iterations=1)
