"""Workload generators: statistical shape and end-to-end compilation."""

import pytest

from repro.build import Build
from repro.core import extract_build
from repro.core.frappe import Frappe
from repro.graphdb import stats
from repro.lang.source import VirtualFileSystem
from repro.workloads import generate_codebase, generate_kernel_graph
from repro.workloads.profiles import UEK_PROFILE
from repro.workloads.synthc import evolve


@pytest.fixture(scope="module")
def synthetic_graph():
    return generate_kernel_graph(UEK_PROFILE.scaled(1 / 200))


class TestProfiles:
    def test_mix_normalization(self):
        mix = UEK_PROFILE.normalized_node_mix()
        assert sum(mix.values()) == pytest.approx(1.0)
        mix = UEK_PROFILE.normalized_reference_mix()
        assert sum(mix.values()) == pytest.approx(1.0)

    def test_scaled_profile(self):
        half = UEK_PROFILE.scaled(0.5)
        assert half.total_nodes == UEK_PROFILE.total_nodes // 2
        assert half.edges_per_node == UEK_PROFILE.edges_per_node

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            UEK_PROFILE.scaled(0)

    def test_node_count_never_zero(self):
        tiny = UEK_PROFILE.scaled(1 / 100000)
        assert tiny.node_count("module") >= 1


class TestGraphShape:
    def test_edge_node_ratio_near_paper(self, synthetic_graph):
        metrics = stats.graph_metrics(synthetic_graph)
        # the paper quotes "a ratio of 1:8"
        assert 5.5 <= metrics.edge_node_ratio <= 9.5

    def test_int_is_the_top_hub(self, synthetic_graph):
        top_node, _degree = stats.top_degree_nodes(synthetic_graph, 1)[0]
        assert synthetic_graph.node_property(top_node,
                                             "short_name") == "int"

    def test_null_is_a_macro_hub(self, synthetic_graph):
        top = stats.top_degree_nodes(synthetic_graph, 10)
        names = [synthetic_graph.node_property(node, "short_name")
                 for node, _degree in top]
        assert "NULL" in names

    def test_heavy_tail(self, synthetic_graph):
        distribution = stats.degree_distribution(synthetic_graph)
        max_degree = max(distribution)
        # weighted median: the degree of the typical node
        total = sum(distribution.values())
        running = 0
        median = 0
        for degree in sorted(distribution):
            running += distribution[degree]
            if running >= total / 2:
                median = degree
                break
        assert max_degree > 20 * max(median, 1)

    def test_deterministic_for_seed(self):
        profile = UEK_PROFILE.scaled(1 / 500)
        first = generate_kernel_graph(profile, seed=7)
        second = generate_kernel_graph(profile, seed=7)
        assert first.node_count() == second.node_count()
        assert first.edge_count() == second.edge_count()
        assert (stats.degree_distribution(first)
                == stats.degree_distribution(second))

    def test_different_seeds_differ(self):
        profile = UEK_PROFILE.scaled(1 / 500)
        first = generate_kernel_graph(profile, seed=1)
        second = generate_kernel_graph(profile, seed=2)
        assert (stats.degree_distribution(first)
                != stats.degree_distribution(second))


class TestPlantedEntities:
    def test_figure3_field_in_module(self, synthetic_graph):
        frappe = Frappe(synthetic_graph)
        found = frappe.search("id", node_type="field",
                              module="wakeup.elf")
        assert found

    def test_figure4_reference_position(self, synthetic_graph):
        graph = synthetic_graph
        wakeup_core = next(iter(graph.indexes.lookup("short_name",
                                                     "wakeup_core.c")))
        frappe = Frappe(graph)
        result = frappe.query(
            "START n=node:node_auto_index('short_name: id') "
            "WHERE (n) <-[{name_file_id: $file, name_start_line: 104, "
            "name_start_col: 16}]- () RETURN n",
            parameters={"file": wakeup_core})
        assert len(result) == 1

    def test_figure5_scenario(self, synthetic_graph):
        frappe = Frappe(synthetic_graph)
        writers = frappe.writers_of_field_between(
            "sr_media_change", "get_sectorsize", "packet_command",
            "cmd")
        names = {synthetic_graph.node_property(w.writer_node,
                                               "short_name")
                 for w in writers}
        assert names == {"sr_do_ioctl"}

    def test_figure6_seed_exists(self, synthetic_graph):
        frappe = Frappe(synthetic_graph)
        assert len(frappe.backward_slice("pci_read_bases")) > 3


class TestSyntheticCodebase:
    def test_generation_and_compilation(self):
        codebase = generate_codebase(subsystems=3, files_per_subsystem=2,
                                     functions_per_file=3, seed=4)
        build = Build(VirtualFileSystem(codebase.files))
        build.run_script(codebase.build_script)
        graph = extract_build(build)
        assert graph.node_count() > 100
        metrics = stats.graph_metrics(graph)
        assert metrics.edge_node_ratio > 2

    def test_scales_with_parameters(self):
        small = generate_codebase(2, 1, 2)
        large = generate_codebase(4, 3, 4)
        assert large.line_count > 2 * small.line_count

    def test_cross_subsystem_calls_exist(self):
        codebase = generate_codebase(subsystems=3, seed=1)
        build = Build(VirtualFileSystem(codebase.files))
        build.run_script(codebase.build_script)
        frappe = Frappe.index_build(build)
        closure = frappe.backward_slice("start_kernel")
        subsystems = {frappe.view.node_property(n, "short_name")
                      .split("_")[0] for n in closure
                      if frappe.view.node_property(n, "type")
                      == "function"}
        assert len(subsystems) >= 2

    def test_deterministic(self):
        assert generate_codebase(seed=9).files == \
            generate_codebase(seed=9).files


class TestEvolution:
    def test_evolve_appends_only(self):
        base = generate_codebase(subsystems=2, seed=3)
        after = evolve(base, seed=1)
        assert after.version == 1
        changed = [path for path in base.files
                   if base.files[path] != after.files[path]]
        assert changed
        for path in changed:
            assert after.files[path].startswith(base.files[path])

    def test_evolved_tree_still_compiles(self):
        codebase = generate_codebase(subsystems=2, seed=5)
        for _step in range(3):
            codebase = evolve(codebase)
        build = Build(VirtualFileSystem(codebase.files))
        build.run_script(codebase.build_script)
        graph = extract_build(build)
        hotfixes = [n for n in graph.node_ids()
                    if "hotfix" in str(graph.node_property(
                        n, "short_name", ""))]
        assert hotfixes

    def test_change_fraction_bounds_changes(self):
        base = generate_codebase(subsystems=4, files_per_subsystem=3,
                                 seed=2)
        after = evolve(base, seed=1, change_fraction=0.01)
        changed = sum(1 for path in base.files
                      if base.files[path] != after.files[path])
        assert changed == 1
