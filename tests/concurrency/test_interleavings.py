"""Seeded reader/writer interleavings with a linearizability checker.

A writer actor mutates a :class:`PropertyGraph` while reader actors
pin snapshots and run Cypher queries, all interleaved by the seeded
virtual scheduler.  The :class:`EpochModel` records the expected graph
state at every statistics epoch; the checker then demands that every
snapshot read and every query result equal the state *at the epoch it
pinned* — the linearizability criterion for snapshot isolation.  A
failing seed is printed and replays byte for byte.
"""

import random

import pytest

from repro.cypher import CypherEngine
from repro.graphdb import PropertyGraph

from tests.concurrency.scheduler import (InterleavingError,
                                         VirtualScheduler)

SEEDS = list(range(12))

NAME_QUERY = "MATCH (n:function) RETURN n.short_name"
COUNT_QUERY = "MATCH (n:function) RETURN count(*)"


class EpochModel:
    """Sequential model: what the graph looked like at each epoch.

    The writer calls :meth:`record` after every mutation, so every
    epoch a snapshot or query can possibly pin has a recorded expected
    state.  Readers then check against ``states[pinned_epoch]``.
    """

    def __init__(self, graph):
        self.graph = graph
        self.states = {}
        self.record()

    def record(self):
        graph = self.graph
        functions = tuple(sorted(
            (node_id, graph.node_property(node_id, "short_name"))
            for node_id in graph.node_ids()
            if "function" in graph.node_labels(node_id)))
        edges = tuple(sorted(
            (graph.edge_source(edge_id), graph.edge_target(edge_id),
             graph.edge_type(edge_id))
            for edge_id in graph.edge_ids()))
        self.states[graph.statistics.epoch] = (functions, edges)

    # -- checkers -------------------------------------------------------

    def check_snapshot(self, snap):
        """A snapshot must equal the recorded state at its epoch."""
        assert snap.epoch in self.states, \
            f"snapshot pinned unrecorded epoch {snap.epoch}"
        functions, edges = self.states[snap.epoch]
        got_functions = tuple(sorted(
            (node_id, snap.node_property(node_id, "short_name"))
            for node_id in snap.node_ids()
            if "function" in snap.node_labels(node_id)))
        got_edges = tuple(sorted(
            (snap.edge_source(edge_id), snap.edge_target(edge_id),
             snap.edge_type(edge_id))
            for edge_id in snap.edge_ids()))
        assert got_functions == functions, \
            f"epoch {snap.epoch}: snapshot nodes diverged from model"
        assert got_edges == edges, \
            f"epoch {snap.epoch}: snapshot edges diverged from model"

    def check_names(self, result):
        """Query rows must equal the function names at result epoch."""
        epoch = result.stats.epoch
        assert epoch in self.states, \
            f"query executed at unrecorded epoch {epoch}"
        expected = sorted(name for _, name in self.states[epoch][0])
        assert sorted(row[0] for row in result.rows) == expected, \
            f"epoch {epoch}: query rows diverged from model"
        return epoch

    def check_count(self, result):
        epoch = result.stats.epoch
        assert epoch in self.states, \
            f"query executed at unrecorded epoch {epoch}"
        assert result.value() == len(self.states[epoch][0]), \
            f"epoch {epoch}: count diverged from model"
        return epoch


def seed_graph():
    graph = PropertyGraph()
    for index in range(4):
        graph.add_node("function", short_name=f"fn{index}")
    graph.add_edge(0, 1, "calls")
    graph.add_edge(1, 2, "calls")
    return graph


def writer(graph, model, rng, ops=30):
    """Scripted mutator: one mutation (+ model record) per step."""
    def actor():
        fresh = 4
        for _ in range(ops):
            functions = [node_id for node_id in graph.node_ids()
                         if "function" in graph.node_labels(node_id)]
            op = rng.randrange(5)
            if op == 0 or len(functions) < 3:
                graph.add_node("function", short_name=f"fn{fresh}")
                fresh += 1
            elif op == 1:
                graph.add_edge(rng.choice(functions),
                               rng.choice(functions), "calls")
            elif op == 2:
                graph.remove_node(rng.choice(functions))
            elif op == 3:
                victim = rng.choice(functions)
                graph.set_node_property(
                    victim, "short_name", f"renamed{victim}")
            else:
                edges = list(graph.edge_ids())
                if edges:
                    graph.remove_edge(rng.choice(edges))
                else:
                    graph.add_edge(rng.choice(functions),
                                   rng.choice(functions), "calls")
            model.record()
            yield
    return actor


def snapshot_reader(graph, model, rounds=10, hold=3):
    """Pins a snapshot, lets the world move on, then verifies it."""
    def actor():
        for _ in range(rounds):
            snap = graph.snapshot()
            for _ in range(hold):
                yield  # the writer may run here — snap must not move
            model.check_snapshot(snap)
            yield
    return actor


def query_reader(engine, model, log, rounds=10):
    """Runs queries on the live graph; results must pin one epoch.

    All query readers share *engine*, so the plan cache sees hits,
    misses and epoch invalidations under interleaving.
    """
    def actor():
        for turn in range(rounds):
            if turn % 2 == 0:
                result = engine.run(NAME_QUERY)
                epoch = model.check_names(result)
                log.append((epoch, sorted(
                    row[0] for row in result.rows)))
            else:
                result = engine.run(COUNT_QUERY)
                epoch = model.check_count(result)
                log.append((epoch, result.value()))
            yield
    return actor


def run_scenario(seed):
    """One full interleaved run; returns (trace, observation log)."""
    graph = seed_graph()
    model = EpochModel(graph)
    engine = CypherEngine(graph)
    rng = random.Random(seed * 7919 + 1)
    log = []
    scheduler = VirtualScheduler(seed)
    scheduler.spawn("writer", writer(graph, model, rng)())
    scheduler.spawn("snap-reader-0", snapshot_reader(graph, model)())
    scheduler.spawn("snap-reader-1", snapshot_reader(graph, model)())
    scheduler.spawn("query-reader-0",
                    query_reader(engine, model, log)())
    scheduler.spawn("query-reader-1",
                    query_reader(engine, model, log)())
    trace = scheduler.run()
    return trace, log


class TestInterleavings:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_snapshot_isolation_holds(self, seed):
        # every snapshot read and query result must match the model
        # at its pinned epoch, whatever the interleaving does
        trace, log = run_scenario(seed)
        assert len(log) == 20  # both query readers finished
        assert trace.count("writer") == 31  # 30 ops + completion step

    @pytest.mark.parametrize("seed", [3, 7])
    def test_replay_is_byte_for_byte(self, seed):
        first_trace, first_log = run_scenario(seed)
        second_trace, second_log = run_scenario(seed)
        assert second_trace == first_trace
        assert second_log == first_log

    def test_different_seeds_differ(self):
        # sanity: the scheduler is actually exploring interleavings
        traces = {tuple(run_scenario(seed)[0]) for seed in SEEDS[:6]}
        assert len(traces) > 1

    def test_failure_reports_seed(self):
        def exploding():
            yield
            raise AssertionError("torn read")

        scheduler = VirtualScheduler(seed=42)
        scheduler.spawn("reader", exploding())
        with pytest.raises(InterleavingError) as excinfo:
            scheduler.run()
        assert "seed=42" in str(excinfo.value)
        assert "torn read" in str(excinfo.value)
        assert excinfo.value.seed == 42

    def test_runaway_interleaving_aborts(self):
        def forever():
            while True:
                yield

        scheduler = VirtualScheduler(seed=0)
        scheduler.spawn("spinner", forever())
        with pytest.raises(InterleavingError):
            scheduler.run(max_steps=50)


class TestParallelQueryEpochPinning:
    """ISSUE 8: a morsel-parallel query over a mutating graph pins one
    snapshot epoch.  Mutations are injected at every task-spawn
    boundary — the only points where parallel execution could observe
    the outside world move — so a driver that re-read live state for a
    later morsel would tear the result against the model."""

    @pytest.mark.parametrize("seed", list(range(6)))
    def test_mutations_between_morsel_tasks_never_tear(self, seed):
        from repro.cypher import QueryOptions
        from repro.cypher.batch import _InlineTask

        graph = seed_graph()
        for index in range(4, 12):  # enough anchors for several morsels
            graph.add_node("function", short_name=f"fn{index}")
        model = EpochModel(graph)
        engine = CypherEngine(graph)
        rng = random.Random(seed * 104729 + 1)
        fresh = [100]
        spawns = [0]

        def mutate_once():
            functions = [node_id for node_id in graph.node_ids()
                         if "function" in graph.node_labels(node_id)]
            op = rng.randrange(3)
            if op == 0 or len(functions) <= 2:
                graph.add_node("function",
                               short_name=f"fn{fresh[0]}")
                fresh[0] += 1
            elif op == 1:
                graph.remove_node(rng.choice(functions))
            else:
                victim = rng.choice(functions)
                graph.set_node_property(
                    victim, "short_name", f"renamed{victim}")
            model.record()

        def spawn(fn):
            spawns[0] += 1
            mutate_once()  # the world moves between morsel tasks
            return _InlineTask(fn)

        engine.task_spawner = spawn
        engine.pool_workers = 4
        options = QueryOptions(execution_mode="batch", morsel_size=2,
                               parallelism=4)
        epochs = []
        for _ in range(8):
            result = engine.run(NAME_QUERY, options=options)
            # rows must match the model at the *pinned* epoch, not at
            # whatever the graph looked like when a late morsel ran
            epochs.append(model.check_names(result))
        assert spawns[0] > 0, "parallel driver never spawned a task"
        assert len(set(epochs)) > 1  # the graph really moved
        assert epochs == sorted(epochs)

    def test_replay_is_deterministic(self):
        def observe(seed):
            random.seed(0)  # isolate from any ambient randomness
            graph = seed_graph()
            model = EpochModel(graph)
            engine = CypherEngine(graph)
            from repro.cypher import QueryOptions
            from repro.cypher.batch import _InlineTask
            engine.task_spawner = lambda fn: _InlineTask(fn)
            engine.pool_workers = 4
            rows = []
            for _ in range(3):
                result = engine.run(
                    NAME_QUERY,
                    options=QueryOptions(execution_mode="batch",
                                         morsel_size=1,
                                         parallelism=4))
                rows.append((result.stats.epoch, result.rows))
            return rows

        assert observe(1) == observe(1)


class TestPlanCacheUnderInterleaving:
    @pytest.mark.parametrize("seed", [0, 5, 9])
    def test_cached_plans_never_serve_stale_rows(self, seed):
        # the same query text, re-run across epochs through one shared
        # engine: each result must match the model at its own epoch,
        # proving cache hits never leak a previous epoch's rows
        graph = seed_graph()
        model = EpochModel(graph)
        engine = CypherEngine(graph)
        rng = random.Random(seed * 7919 + 1)
        epochs = []

        def repeat_query():
            for _ in range(15):
                result = engine.run(NAME_QUERY)
                epochs.append(model.check_names(result))
                yield

        scheduler = VirtualScheduler(seed)
        scheduler.spawn("writer", writer(graph, model, rng, ops=20)())
        scheduler.spawn("querier", repeat_query())
        scheduler.run()
        # queries interleave a mutating writer: they must have seen
        # more than one epoch, and never gone backwards
        assert len(set(epochs)) > 1
        assert epochs == sorted(epochs)
