"""Query-while-ingesting soak: real threads, real pool, real clock.

The interleaving tests prove the invariants under a deterministic
scheduler; this smoke proves the same invariants survive genuine OS
preemption.  Eight reader threads hammer ``Frappe.query_async`` while
a writer ingests nodes and edges, for ``FRAPPE_SOAK_SECONDS`` (default
a short local smoke; CI runs the full 10 s).  It fails on any thread
exception, any torn read (a count that matches no recorded epoch) and
any plan-cache epoch regression (a reader seeing epochs go backwards).

Seeding is deliberately independent of pytest-randomly: the workload
derives from ``FRAPPE_SOAK_SEED`` (default fixed), so the module-level
reseeding pytest-randomly performs cannot change what this test does.
"""

import os
import random
import threading
import time

import pytest

from repro.core import Frappe
from repro.graphdb import PropertyGraph

SOAK_SECONDS = float(os.environ.get("FRAPPE_SOAK_SECONDS", "2.0"))
SOAK_SEED = int(os.environ.get("FRAPPE_SOAK_SEED", "140914"))
READERS = 8

COUNT_QUERY = "MATCH (n:function) RETURN count(*)"


@pytest.mark.slow
class TestSoak:
    def test_query_while_ingesting(self):
        graph = PropertyGraph()
        for index in range(8):
            graph.add_node("function", short_name=f"seed{index}")
        frappe = Frappe(graph)
        frappe.serve(workers=READERS, queue_capacity=256)

        #: epoch -> function count at that epoch; every write batch
        #: records inside the write lock, which snapshot() also takes,
        #: so a query can never pin an unrecorded epoch
        expected = {graph.statistics.epoch: graph.node_count()}
        errors = []
        stop = threading.Event()
        rng = random.Random(SOAK_SEED)

        def ingest():
            fresh = 8
            try:
                while not stop.is_set():
                    with graph.write_lock:
                        node = graph.add_node(
                            "function", short_name=f"fn{fresh}")
                        expected[graph.statistics.epoch] = \
                            graph.node_count()
                        if rng.random() < 0.5:
                            graph.add_edge(
                                node, rng.randrange(node + 1), "calls")
                            expected[graph.statistics.epoch] = \
                                graph.node_count()
                    fresh += 1
                    time.sleep(0)  # encourage preemption
            except BaseException as error:  # noqa: BLE001
                errors.append(("ingest", error))

        def read(reader_id):
            last_epoch = -1
            completed = 0
            try:
                while not stop.is_set():
                    future = frappe.query_async(
                        COUNT_QUERY, client=f"reader-{reader_id}")
                    result = future.result(timeout=30.0)
                    epoch = result.stats.epoch
                    if epoch < last_epoch:
                        raise AssertionError(
                            f"reader {reader_id}: epoch went backwards"
                            f" ({last_epoch} -> {epoch})")
                    last_epoch = epoch
                    if epoch not in expected:
                        raise AssertionError(
                            f"reader {reader_id}: torn read — epoch "
                            f"{epoch} was never recorded")
                    if result.value() != expected[epoch]:
                        raise AssertionError(
                            f"reader {reader_id}: count "
                            f"{result.value()} != "
                            f"{expected[epoch]} at epoch {epoch}")
                    completed += 1
            except BaseException as error:  # noqa: BLE001
                errors.append((f"reader-{reader_id}", error))
            return completed

        counts = [0] * READERS

        def reader_main(reader_id):
            counts[reader_id] = read(reader_id)

        threads = [threading.Thread(target=ingest, name="soak-ingest")]
        threads += [threading.Thread(target=reader_main, args=(i,),
                                     name=f"soak-reader-{i}")
                    for i in range(READERS)]
        for thread in threads:
            thread.start()
        time.sleep(SOAK_SECONDS)
        stop.set()
        for thread in threads:
            thread.join(timeout=60.0)
            assert not thread.is_alive(), f"{thread.name} hung"
        frappe.close()

        assert not errors, \
            f"[seed={SOAK_SEED}] soak failures: " + "; ".join(
                f"{who}: {type(e).__name__}: {e}" for who, e in errors)
        # the soak must actually have exercised both sides
        assert sum(counts) > READERS, "readers barely ran"
        assert len(expected) > 2, "ingest barely ran"
        snapshot = frappe.obs.registry.snapshot()
        assert snapshot.counter("server.completed") == sum(counts)
        assert snapshot.counter("server.failed") == 0
