"""Deterministic virtual scheduler for concurrency tests.

Real threads give you one interleaving per run and no way back to a
failing one.  This harness inverts that: *actors* are plain Python
generators that ``yield`` at every point where a real thread could be
preempted, and a seeded :class:`VirtualScheduler` chooses which actor
runs next.  Everything executes on one OS thread, so a given seed
replays the exact same interleaving byte for byte — a failure message
carries the seed, and re-running with that seed reproduces it.

The scheduler also records the interleaving it chose (``trace``) so a
test can assert replay determinism directly.
"""

import random
from typing import Callable, Generator, Iterable

Actor = Generator[None, None, None]


class InterleavingError(AssertionError):
    """An actor failed; carries the seed needed to replay the run."""

    def __init__(self, seed: int, step: int, actor: str,
                 cause: BaseException) -> None:
        super().__init__(
            f"[seed={seed}] actor {actor!r} failed at step {step}: "
            f"{type(cause).__name__}: {cause} — replay with "
            f"VirtualScheduler(seed={seed})")
        self.seed = seed
        self.step = step
        self.actor = actor
        self.cause = cause


class VirtualScheduler:
    """Runs actors to completion in a seed-determined interleaving."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._random = random.Random(seed)
        self._actors: list[tuple[str, Actor]] = []
        #: actor name per executed step, in order — the interleaving
        self.trace: list[str] = []

    def spawn(self, name: str, actor: Actor) -> None:
        self._actors.append((name, actor))

    def run(self, max_steps: int = 100_000) -> list[str]:
        """Step actors until all finish; returns the trace."""
        runnable = list(self._actors)
        while runnable:
            if len(self.trace) >= max_steps:
                raise InterleavingError(
                    self.seed, len(self.trace), "<scheduler>",
                    RuntimeError("interleaving exceeded "
                                 f"{max_steps} steps"))
            index = self._random.randrange(len(runnable))
            name, actor = runnable[index]
            self.trace.append(name)
            try:
                next(actor)
            except StopIteration:
                runnable.pop(index)
            except BaseException as error:
                raise InterleavingError(self.seed, len(self.trace) - 1,
                                        name, error) from error
        return self.trace


def interleave(seed: int,
               actors: Iterable[tuple[str, Callable[[], Actor]]],
               max_steps: int = 100_000) -> list[str]:
    """One-shot convenience: build, spawn, run; returns the trace."""
    scheduler = VirtualScheduler(seed)
    for name, factory in actors:
        scheduler.spawn(name, factory())
    return scheduler.run(max_steps=max_steps)
