"""Graph alignment: stable ids across re-extraction."""


from repro.build import Build
from repro.core import extract_build
from repro.graphdb import PropertyGraph
from repro.graphdb.graph import clone_graph
from repro.lang.source import VirtualFileSystem
from repro.versioned import align_graph, diff_graphs
from repro.versioned.align import default_node_key


def extract(files, script):
    build = Build(VirtualFileSystem(files))
    build.run_script(script)
    return extract_build(build)


BASE_FILES = {
    "a.c": "int shared(void) { return 1; }\n",
    "b.c": "int shared(void);\n"
           "int user(void) { return shared(); }\n",
}
SCRIPT = ("gcc a.c -c -o a.o\n"
          "gcc b.c -c -o b.o\n"
          "gcc a.o b.o -o prog")


class TestAlignBasics:
    def test_identical_graphs_align_to_empty_delta(self):
        old = extract(BASE_FILES, SCRIPT)
        new = extract(BASE_FILES, SCRIPT)
        aligned = align_graph(old, new)
        assert diff_graphs(old, aligned).is_empty

    def test_prepended_entity_does_not_shift_identity(self):
        """The failure mode alignment exists for: new code added
        *before* existing code shifts every raw extraction id."""
        old = extract(BASE_FILES, SCRIPT)
        changed = dict(BASE_FILES)
        changed["a.c"] = ("int newcomer(void) { return 9; }\n"
                          + BASE_FILES["a.c"])
        new = extract(changed, SCRIPT)
        raw_delta = diff_graphs(old, new)
        aligned_delta = diff_graphs(old, align_graph(old, new))
        assert aligned_delta.change_count() < raw_delta.change_count()
        added = {properties.get("short_name")
                 for _id, _labels, properties
                 in aligned_delta.added_nodes}
        assert "newcomer" in added
        assert "shared" not in added  # unchanged entity kept its id

    def test_content_preserved(self):
        old = extract(BASE_FILES, SCRIPT)
        changed = dict(BASE_FILES)
        changed["a.c"] += "int extra(void) { return 2; }\n"
        new = extract(changed, SCRIPT)
        aligned = align_graph(old, new)
        assert aligned.node_count() == new.node_count()
        assert aligned.edge_count() == new.edge_count()
        names_new = sorted(new.node_property(n, "short_name", "")
                           for n in new.node_ids())
        names_aligned = sorted(aligned.node_property(n, "short_name", "")
                               for n in aligned.node_ids())
        assert names_new == names_aligned

    def test_new_ids_above_old_high_water(self):
        old = extract(BASE_FILES, SCRIPT)
        changed = dict(BASE_FILES)
        changed["a.c"] += "int extra(void) { return 2; }\n"
        aligned = align_graph(old, extract(changed, SCRIPT))
        old_max = max(old.node_ids())
        fresh = [n for n in aligned.node_ids() if n > old_max]
        assert fresh  # the new function and its machinery

    def test_removed_entity_detected(self):
        full = dict(BASE_FILES)
        full["a.c"] += "int doomed(void) { return 3; }\n"
        old = extract(full, SCRIPT)
        new = extract(BASE_FILES, SCRIPT)
        aligned_delta = diff_graphs(old, align_graph(old, new))
        removed_names = {old.node_property(node_id, "short_name")
                         for node_id in aligned_delta.removed_nodes}
        assert "doomed" in removed_names


class TestDuplicateKeys:
    def test_duplicate_keys_match_positionally(self):
        old = PropertyGraph()
        for _ in range(3):
            old.add_node("function", short_name="dup", type="function")
        new = clone_graph(old)
        new.add_node("function", short_name="dup", type="function")
        aligned = align_graph(old, new)
        assert set(old.node_ids()) <= set(aligned.node_ids())
        delta = diff_graphs(old, aligned)
        assert len(delta.added_nodes) == 1

    def test_parallel_edges_align(self):
        old = PropertyGraph()
        a = old.add_node(short_name="a")
        b = old.add_node(short_name="b")
        old.add_edge(a, b, "calls", use_start_line=1)
        old.add_edge(a, b, "calls", use_start_line=1)  # same site twice
        new = clone_graph(old)
        new.add_edge(a, b, "calls", use_start_line=2)
        delta = diff_graphs(old, align_graph(old, new))
        assert len(delta.added_edges) == 1
        assert not delta.removed_edges


class TestCustomKey:
    def test_custom_node_key(self):
        old = PropertyGraph()
        old.add_node(short_name="x", uid="stable-1")
        new = PropertyGraph()
        new.add_node(short_name="renamed", uid="stable-1")

        def by_uid(view, node_id):
            return view.node_property(node_id, "uid")

        aligned = align_graph(old, new, node_key=by_uid)
        delta = diff_graphs(old, aligned)
        assert not delta.added_nodes  # matched via uid despite rename
        assert delta.node_property_changes

    def test_default_key_fields(self):
        graph = PropertyGraph()
        node = graph.add_node(short_name="s", name="q::s",
                              long_name="q::s(int)", type="function")
        key = default_node_key(graph, node)
        assert key == ("function", "q::s", "q::s(int)", "s")
