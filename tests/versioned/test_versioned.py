"""Versioned graphs: deltas, multi-version store, change impact."""

import pytest

from repro.errors import VersionError
from repro.graphdb import PropertyGraph
from repro.graphdb.graph import clone_graph
from repro.versioned import (GraphDelta, VersionedGraphStore, apply_delta,
                             change_impact, diff_graphs)


def call_graph(edges, n_nodes):
    g = PropertyGraph()
    for index in range(n_nodes):
        g.add_node("function", short_name=f"f{index}", type="function")
    for source, target in edges:
        g.add_edge(source, target, "calls")
    return g


@pytest.fixture
def base_graph():
    return call_graph([(0, 1), (1, 2), (2, 3)], 5)


class TestDiffApply:
    def test_identical_graphs_empty_delta(self, base_graph):
        other = clone_graph(base_graph)
        delta = diff_graphs(base_graph, other)
        assert delta.is_empty
        assert delta.change_count() == 0

    def test_added_node_and_edge(self, base_graph):
        new = clone_graph(base_graph)
        added = new.add_node("function", short_name="f5", type="function")
        new.add_edge(added, 0, "calls")
        delta = diff_graphs(base_graph, new)
        assert [entry[0] for entry in delta.added_nodes] == [added]
        assert len(delta.added_edges) == 1

    def test_removed_node(self, base_graph):
        new = clone_graph(base_graph)
        new.remove_node(4)
        delta = diff_graphs(base_graph, new)
        assert delta.removed_nodes == [4]

    def test_property_change(self, base_graph):
        new = clone_graph(base_graph)
        new.set_node_property(0, "short_name", "renamed")
        delta = diff_graphs(base_graph, new)
        assert delta.node_property_changes == \
            [(0, "short_name", "f0", "renamed")]

    def test_apply_roundtrip(self, base_graph):
        new = clone_graph(base_graph)
        new.remove_node(4)
        added = new.add_node("global", short_name="g", type="global")
        new.add_edge(1, added, "writes", use_start_line=3)
        new.set_node_property(2, "short_name", "renamed")
        delta = diff_graphs(base_graph, new)
        replayed = apply_delta(clone_graph(base_graph), delta)
        assert diff_graphs(replayed, new).is_empty

    def test_apply_removed_edge(self, base_graph):
        new = clone_graph(base_graph)
        edge = next(iter(new.edge_ids()))
        new.remove_edge(edge)
        delta = diff_graphs(base_graph, new)
        replayed = apply_delta(clone_graph(base_graph), delta)
        assert not replayed.has_edge(edge)

    def test_serialization_roundtrip(self, base_graph):
        new = clone_graph(base_graph)
        new.add_node("macro", short_name="M", type="macro",
                     lengths=[1, 2])
        delta = diff_graphs(base_graph, new)
        restored = GraphDelta.from_bytes(delta.to_bytes())
        replayed = apply_delta(clone_graph(base_graph), restored)
        assert diff_graphs(replayed, new).is_empty

    def test_corrupt_delta_rejected(self):
        with pytest.raises(VersionError):
            GraphDelta.from_bytes(b"not json at all \xff")

    def test_apply_unknown_removal_rejected(self, base_graph):
        delta = GraphDelta(removed_nodes=[999])
        with pytest.raises(VersionError):
            apply_delta(base_graph, delta)


class TestVersionedStore:
    def _evolve(self, graph, step):
        new = clone_graph(graph)
        added = new.add_node("function", short_name=f"new{step}",
                             type="function")
        new.add_edge(added, 0, "calls")
        return new

    @pytest.mark.parametrize("mode", ["isolated", "delta"])
    def test_commit_and_checkout(self, base_graph, tmp_path, mode):
        store = VersionedGraphStore(str(tmp_path / mode), mode=mode)
        v0 = store.commit(base_graph)
        second = self._evolve(base_graph, 1)
        v1 = store.commit(second)
        restored = store.checkout(v1)
        assert diff_graphs(restored, second).is_empty
        base_restored = store.checkout(v0)
        assert diff_graphs(base_restored, base_graph).is_empty

    def test_delta_mode_stores_less(self, base_graph, tmp_path):
        isolated = VersionedGraphStore(str(tmp_path / "iso"),
                                       mode="isolated")
        delta = VersionedGraphStore(str(tmp_path / "dlt"), mode="delta")
        graph = base_graph
        for store in (isolated, delta):
            current = graph
            store.commit(current, "v0")
            for step in range(1, 6):
                current = self._evolve(current, step)
                store.commit(current, f"v{step}")
        assert delta.total_storage_bytes() < \
            isolated.total_storage_bytes() / 2

    def test_chain_length(self, base_graph, tmp_path):
        store = VersionedGraphStore(str(tmp_path / "chain"), mode="delta")
        store.commit(base_graph, "v0")
        current = base_graph
        for step in range(1, 4):
            current = self._evolve(current, step)
            store.commit(current, f"v{step}")
        assert store.chain_length("v0") == 0
        assert store.chain_length("v3") == 3

    def test_versions_listing(self, base_graph, tmp_path):
        store = VersionedGraphStore(str(tmp_path / "list"))
        store.commit(base_graph, "rel-1")
        records = store.versions()
        assert records[0].version_id == "rel-1"
        assert records[0].is_snapshot
        assert records[0].node_count == base_graph.node_count()

    def test_cross_version_diff(self, base_graph, tmp_path):
        store = VersionedGraphStore(str(tmp_path / "diff"))
        store.commit(base_graph, "v0")
        second = self._evolve(base_graph, 1)
        store.commit(second, "v1")
        delta = store.diff("v0", "v1")
        assert len(delta.added_nodes) == 1

    def test_duplicate_version_rejected(self, base_graph, tmp_path):
        store = VersionedGraphStore(str(tmp_path / "dup"))
        store.commit(base_graph, "v0")
        with pytest.raises(VersionError):
            store.commit(base_graph, "v0")

    def test_unknown_version_rejected(self, base_graph, tmp_path):
        store = VersionedGraphStore(str(tmp_path / "missing"))
        with pytest.raises(VersionError):
            store.checkout("ghost")
        with pytest.raises(VersionError):
            store.commit(base_graph, parent="ghost")

    def test_bad_mode_rejected(self, tmp_path):
        with pytest.raises(VersionError):
            VersionedGraphStore(str(tmp_path / "bad"), mode="quantum")

    def test_explicit_parent_branching(self, base_graph, tmp_path):
        store = VersionedGraphStore(str(tmp_path / "branch"))
        store.commit(base_graph, "v0")
        branch_a = self._evolve(base_graph, 1)
        branch_b = self._evolve(base_graph, 2)
        store.commit(branch_a, "a", parent="v0")
        store.commit(branch_b, "b", parent="v0")
        assert diff_graphs(store.checkout("a"), branch_a).is_empty
        assert diff_graphs(store.checkout("b"), branch_b).is_empty


class TestChangeImpact:
    def test_changed_function_ripples_to_callers(self):
        # f0 -> f1 -> f2; change f2's body (a new outgoing edge)
        old = call_graph([(0, 1), (1, 2)], 4)
        new = clone_graph(old)
        new.add_edge(2, 3, "calls")  # f2 now calls f3
        report = change_impact(old, new)
        assert 2 in report.changed_functions
        # callers of f2 are impacted transitively
        assert {0, 1, 2} <= report.impacted_functions

    def test_amplification(self):
        old = call_graph([(0, 2), (1, 2)], 4)
        new = clone_graph(old)
        new.add_edge(2, 3, "calls")
        report = change_impact(old, new)
        assert report.amplification >= 1.0

    def test_no_change_no_impact(self):
        old = call_graph([(0, 1)], 2)
        report = change_impact(old, clone_graph(old))
        assert not report.changed_nodes
        assert report.amplification == 0.0

    def test_property_only_change(self):
        old = call_graph([(0, 1)], 2)
        new = clone_graph(old)
        new.set_node_property(1, "short_name", "patched")
        report = change_impact(old, new)
        assert 1 in report.changed_functions
        assert 0 in report.impacted_functions
