"""Parallel extraction must be indistinguishable from serial.

The process-pool build path (``Build(jobs=N)``) exists purely for
wall-clock; every observable — file ids, graph shape, report contents,
failure-policy behaviour — must match a serial replay byte for byte.
"""

import dataclasses

import pytest

from repro.build import FAIL_FAST, KEEP_GOING, Build
from repro.build.parallel import (CompileJob, UnitFailure,
                                  remap_file_ids, run_jobs)
from repro.core import extract_build
from repro.errors import (BuildDiagnosticError, ParseError,
                          PreprocessorError)
from repro.lang.source import (SourceLocation, SourceRange,
                               VirtualFileSystem)

from tests.core.conftest import BUILD_SCRIPT, MINI_KERNEL
from tests.core.test_build_faults import build_script, mini_tree

JOBS = 3


def graph_signature(graph):
    """Everything observable about a graph, in comparable form."""
    nodes = {node_id: (sorted(graph.node_labels(node_id)),
                       sorted(graph.node_properties(node_id).items()))
             for node_id in graph.node_ids()}
    edges = {edge_id: (graph.edge_source(edge_id),
                       graph.edge_target(edge_id),
                       graph.edge_type(edge_id),
                       sorted(graph.edge_properties(edge_id).items()))
             for edge_id in graph.edge_ids()}
    return nodes, edges


def report_signature(report):
    return [(o.source_path, o.object_path, o.status, o.command,
             [str(d) for d in o.diagnostics])
            for o in report.outcomes] + \
        [str(d) for d in report.link_diagnostics]


def run_mini_kernel(jobs):
    build = Build(VirtualFileSystem(dict(MINI_KERNEL)), jobs=jobs)
    build.run_script(BUILD_SCRIPT)
    return build


class TestDeterminism:
    def test_graph_identical_to_serial(self):
        serial = run_mini_kernel(jobs=1)
        fanned = run_mini_kernel(jobs=JOBS)
        assert graph_signature(extract_build(serial)) == \
            graph_signature(extract_build(fanned))

    def test_file_ids_identical_to_serial(self):
        serial = run_mini_kernel(jobs=1)
        fanned = run_mini_kernel(jobs=JOBS)
        assert [f.path for f in serial.registry.known_files()] == \
            [f.path for f in fanned.registry.known_files()]
        assert [(f.file_id, f.path)
                for f in fanned.registry.known_files()] == \
            [(f.file_id, f.path)
             for f in serial.registry.known_files()]

    def test_report_identical_to_serial(self):
        serial = run_mini_kernel(jobs=1)
        fanned = run_mini_kernel(jobs=JOBS)
        assert report_signature(fanned.report) == \
            report_signature(serial.report)
        assert fanned.report.summary() == serial.report.summary()

    def test_object_units_remapped(self):
        # every location inside the fanned objects must point at the
        # parent registry's ids, not worker-local ones
        fanned = run_mini_kernel(jobs=JOBS)
        for path, obj in fanned.objects.items():
            registered = fanned.registry.open(obj.source_path)
            assert obj.unit.main_file.file_id == registered.file_id
            for include in obj.unit.includes:
                opened = fanned.registry.by_id(include.included_file_id)
                assert fanned.registry.open(opened.path) is opened


class TestFailurePolicies:
    def test_fail_fast_raises_original_error(self):
        serial_error = parallel_error = None
        try:
            Build(mini_tree(), policy=FAIL_FAST).run_script(
                build_script())
        except ParseError as error:
            serial_error = error
        try:
            Build(mini_tree(), policy=FAIL_FAST,
                  jobs=JOBS).run_script(build_script())
        except ParseError as error:
            parallel_error = error
        assert serial_error is not None and parallel_error is not None
        assert type(parallel_error) is type(serial_error)
        assert str(parallel_error) == str(serial_error)
        assert parallel_error.filename == serial_error.filename
        assert parallel_error.line == serial_error.line

    def test_fail_fast_keeps_units_before_failure(self):
        serial = Build(mini_tree(), policy=FAIL_FAST)
        with pytest.raises(ParseError):
            serial.run_script(build_script())
        fanned = Build(mini_tree(), policy=FAIL_FAST, jobs=JOBS)
        with pytest.raises(ParseError):
            fanned.run_script(build_script())
        assert sorted(fanned.objects) == sorted(serial.objects)
        assert report_signature(fanned.report) == \
            report_signature(serial.report)

    def test_keep_going_report_identical(self):
        serial = Build(mini_tree(), policy=KEEP_GOING)
        serial.run_script(build_script())
        fanned = Build(mini_tree(), policy=KEEP_GOING, jobs=JOBS)
        fanned.run_script(build_script())
        assert report_signature(fanned.report) == \
            report_signature(serial.report)
        assert graph_signature(extract_build(fanned)) == \
            graph_signature(extract_build(serial))

    def test_max_errors_budget_still_enforced(self):
        build = Build(mini_tree(), policy=KEEP_GOING, max_errors=1,
                      jobs=JOBS)
        with pytest.raises(BuildDiagnosticError):
            build.run_script(build_script())

    def test_bad_command_line_recorded(self):
        build = Build(mini_tree(), policy=KEEP_GOING, jobs=JOBS)
        build.run_script("gcc unit0.c -c -o unit0.o\n"
                         "gcc 'unterminated\n"
                         "gcc unit1.c -c -o unit1.o\n")
        assert len(build.report.failed_units) == 1
        assert build.report.failed_units[0].diagnostics[0].category \
            == "command"
        assert len(build.report.ok_units) == 2

    def test_jobs_must_be_positive(self):
        from repro.errors import BuildError
        with pytest.raises(BuildError):
            Build(VirtualFileSystem({}), jobs=0)


class TestWorkerProtocol:
    def test_unit_failure_rebuilds_exact_exception(self):
        original = PreprocessorError("no such file: 'ghost.h'",
                                     "a.c", 3, 7)
        rebuilt = UnitFailure.of(original).rebuild()
        assert type(rebuilt) is PreprocessorError
        assert str(rebuilt) == str(original)
        assert (rebuilt.message, rebuilt.filename, rebuilt.line,
                rebuilt.column) == ("no such file: 'ghost.h'",
                                    "a.c", 3, 7)

    def test_unknown_error_type_degrades_to_base(self):
        failure = UnitFailure(error_type="NotARealError",
                              message="m", filename="f", line=1,
                              column=2)
        from repro.errors import FrontEndError
        assert type(failure.rebuild()) is FrontEndError

    def test_run_jobs_serial_path(self):
        filesystem = VirtualFileSystem(
            {"a.c": "int a(void) { return 1; }\n"})
        results = run_jobs(
            [CompileJob(source="a.c", object_path="a.o",
                        include_paths=(), defines=(), command="gcc")],
            workers=1, filesystem=filesystem,
            ignore_missing_includes=False)
        assert results[0].failure is None
        assert results[0].opened_paths == ["a.c"]
        assert results[0].object_file.path == "a.o"


class TestRemap:
    def test_shared_objects_remapped_once(self):
        # a frozen location shared by two roots must translate once,
        # even though the mapping chains (1 -> 2 and 2 -> 3)
        @dataclasses.dataclass
        class Holder:
            location: SourceLocation
            ids: "list[int]" = dataclasses.field(default_factory=list)

        shared = SourceLocation(1, 10, 2)
        left = Holder(shared, ids=[])
        right = Holder(shared, ids=[])
        remap_file_ids([left, right], {1: 2, 2: 3})
        assert shared.file_id == 2

    def test_file_ids_list_field(self):
        @dataclasses.dataclass
        class Unitish:
            included_file_ids: "list[int]"

        unit = Unitish(included_file_ids=[0, 4, 9])
        remap_file_ids([unit], {0: 5, 4: 4, 9: 0})
        assert unit.included_file_ids == [5, 4, 0]

    def test_ranges_and_nesting(self):
        span = SourceRange(7, 1, 1, 2, 2)
        nested = {"key": [(span,)]}
        remap_file_ids([nested], {7: 11})
        assert span.file_id == 11

    def test_identity_mapping_is_free(self):
        span = SourceRange(7, 1, 1, 2, 2)
        remap_file_ids([span], {7: 7})
        assert span.file_id == 7

    def test_typedef_usr_string_remapped(self):
        from repro.build.parallel import _remap_usr
        assert _remap_usr("c:t@4:12@size_t", {4: 9}) == \
            "c:t@9:12@size_t"
        assert _remap_usr("c:@F@main", {4: 9}) == "c:@F@main"
        assert _remap_usr("c:t@7:3@u8", {4: 9}) == "c:t@7:3@u8"
