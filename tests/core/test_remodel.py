"""The Section 6.2 reference-as-node remodelling helper."""

import pytest

from repro.core import model
from repro.core.remodel import (CALLSITE, references_in_file_edge_model,
                                references_in_file_node_model,
                                reify_references)
from repro.graphdb import PropertyGraph
from repro.graphdb.view import Direction


@pytest.fixture
def small():
    g = PropertyGraph()
    file_node = g.add_node("file", short_name="a.c", type="file")
    caller = g.add_node("function", short_name="f", type="function")
    callee = g.add_node("function", short_name="g", type="function")
    counter = g.add_node("global", short_name="c", type="global")
    g.add_edge(file_node, caller, model.FILE_CONTAINS)
    g.add_edge(caller, callee, model.CALLS, use_file_id=file_node,
               use_start_line=5)
    g.add_edge(caller, counter, model.WRITES, use_file_id=file_node,
               use_start_line=6)
    g.add_edge(caller, counter, model.ISA_TYPE)  # structural: untouched
    return g, file_node, caller, callee, counter


class TestReify:
    def test_callsite_nodes_created(self, small):
        g, file_node, caller, callee, _counter = small
        reified = reify_references(g)
        sites = list(reified.nodes_with_label(CALLSITE))
        assert len(sites) == 2  # calls + writes

    def test_two_hop_structure(self, small):
        g, _file, caller, callee, _counter = small
        reified = reify_references(g)
        hop1 = list(reified.edges_of(caller, Direction.OUT,
                                     (model.CALLS,)))
        assert len(hop1) == 1
        site = reified.edge_target(hop1[0])
        assert CALLSITE in reified.node_labels(site)
        hop2 = list(reified.edges_of(site, Direction.OUT,
                                     (model.CALLS,)))
        assert [reified.edge_target(e) for e in hop2] == [callee]

    def test_properties_moved_to_site(self, small):
        g, file_node, caller, _callee, _counter = small
        reified = reify_references(g)
        site = reified.edge_target(next(iter(
            reified.edges_of(caller, Direction.OUT, (model.CALLS,)))))
        assert reified.node_property(site, "use_start_line") == 5

    def test_file_contains_site(self, small):
        g, file_node, *_rest = small
        reified = reify_references(g)
        contained = [reified.edge_target(e)
                     for e in reified.edges_of(file_node, Direction.OUT,
                                               (model.CONTAINS,))]
        assert len(contained) == 2

    def test_structural_edges_untouched(self, small):
        g, _file, caller, _callee, counter = small
        reified = reify_references(g)
        isa = list(reified.edges_of(caller, Direction.OUT,
                                    (model.ISA_TYPE,)))
        assert [reified.edge_target(e) for e in isa] == [counter]

    def test_original_graph_unmodified(self, small):
        g, *_rest = small
        before = g.edge_count()
        reify_references(g)
        assert g.edge_count() == before


class TestFileQueries:
    def test_both_models_agree(self, small):
        g, file_node, *_rest = small
        reified = reify_references(g)
        edge_side = references_in_file_edge_model(g, file_node)
        node_side = references_in_file_node_model(reified, file_node)
        assert len(edge_side) == len(node_side) == 2

    def test_edge_model_needs_property(self, small):
        g, file_node, caller, callee, _counter = small
        g.add_edge(callee, caller, model.CALLS)  # no use_file_id
        assert len(references_in_file_edge_model(g, file_node)) == 2

    def test_node_model_empty_for_plain_file(self, small):
        g, file_node, *_rest = small
        # un-reified graph has no callsites to find
        assert references_in_file_node_model(g, file_node) == []
