"""The Frappe facade: indexing, saving/opening, querying."""

import pytest

from repro.core.frappe import Frappe
from repro.cypher import NodeRef
from repro.errors import QueryTimeoutError


SMALL_TREE = {
    "util.h": "int add(int a, int b);\n#define TWICE(x) ((x) + (x))\n",
    "util.c": '#include "util.h"\n'
              "int add(int a, int b) { return a + b; }\n",
    "app.c": '#include "util.h"\n'
             "int run(void) { return TWICE(add(1, 2)); }\n",
}

SCRIPT = """
gcc util.c -c -o util.o
gcc app.c util.o -o app
"""


@pytest.fixture(scope="module")
def small():
    return Frappe.index_sources(SMALL_TREE, SCRIPT)


class TestIndexing:
    def test_index_sources(self, small):
        metrics = small.metrics()
        assert metrics.node_count > 10
        assert metrics.edge_count > metrics.node_count

    def test_cypher_over_indexed_graph(self, small):
        result = small.query(
            "MATCH (n:function) RETURN n.short_name ORDER BY "
            "n.short_name")
        assert result.values() == ["add", "run"]

    def test_search(self, small):
        assert small.search("add", node_type="function")
        assert small.search("a*", node_type="function")

    def test_describe(self, small):
        node = small.search("add", node_type="function")[0]
        description = small.describe(node)
        assert description["type"] == "function"
        assert "symbol" in description["labels"]

    def test_macro_impact(self, small):
        impacted = small.macro_impact("TWICE")
        names = {small.view.node_property(n, "short_name")
                 for n in impacted}
        assert "run" in names

    def test_slices(self, small):
        forward = small.forward_slice("add")
        names = {small.view.node_property(n, "short_name")
                 for n in forward}
        assert names == {"run"}
        assert small.backward_slice("add") == set()

    def test_path_between(self, small):
        path = small.path_between("run", "add")
        assert path is not None and len(path) == 2


class TestPersistence:
    def test_save_and_open_roundtrip(self, small, tmp_path):
        directory = str(tmp_path / "store")
        sizes = small.save(directory)
        assert sizes["total"] > 0
        with Frappe.open(directory) as reopened:
            result = reopened.query(
                "MATCH (n:function) RETURN n.short_name "
                "ORDER BY n.short_name")
            assert result.values() == ["add", "run"]

    def test_use_cases_on_disk_store(self, small, tmp_path):
        directory = str(tmp_path / "store2")
        small.save(directory)
        with Frappe.open(directory) as reopened:
            assert reopened.forward_slice("add")
            assert reopened.search("run")
            reopened.evict_caches()  # cold start, answers unchanged
            assert reopened.forward_slice("add")

    def test_open_is_read_view(self, small, tmp_path):
        directory = str(tmp_path / "store3")
        small.save(directory)
        with Frappe.open(directory) as reopened:
            with pytest.raises(TypeError):
                reopened.save(str(tmp_path / "elsewhere"))

    def test_evict_on_memory_graph_is_noop(self, small):
        small.evict_caches()  # must not raise


class TestQueryBehaviour:
    def test_parameters(self, small):
        result = small.query(
            "MATCH (n:function{short_name: $name}) RETURN id(n)",
            parameters={"name": "add"})
        assert len(result) == 1

    def test_timeout_plumbed_through(self, small):
        frappe = Frappe(small.view, default_timeout=0.0)
        with pytest.raises(QueryTimeoutError):
            frappe.query("MATCH a --> b --> c --> d RETURN count(*)")

    def test_node_refs_in_results(self, small):
        result = small.query("MATCH (n:macro) RETURN n")
        assert isinstance(result.rows[0][0], NodeRef)
