"""The Section 4 use cases on the extracted mini-kernel."""


from repro.core import model, queries, slicing
from repro.graphdb.view import Direction


def named(graph, short_name, node_type):
    matches = [n for n in graph.indexes.lookup("short_name", short_name)
               if graph.node_property(n, "type") == node_type]
    assert matches, f"no {node_type} named {short_name!r}"
    return matches[0]


def short_names(graph, nodes):
    return sorted(graph.node_property(n, "short_name") for n in nodes)


class TestCodeSearch:
    def test_by_name(self, mini_kernel_graph):
        nodes = queries.code_search(mini_kernel_graph, "sr_do_ioctl")
        types = {mini_kernel_graph.node_property(n, "type")
                 for n in nodes}
        assert "function" in types

    def test_by_name_and_type(self, mini_kernel_graph):
        nodes = queries.code_search(mini_kernel_graph, "id",
                                    node_type="field")
        assert len(nodes) == 2  # scsi_device::id and wakeup_event::id

    def test_module_filter_figure3(self, mini_kernel_graph):
        nodes = queries.code_search(mini_kernel_graph, "id",
                                    node_type="field",
                                    module="wakeup.elf")
        assert short_names(mini_kernel_graph, nodes) == ["id"]
        names = [mini_kernel_graph.node_property(n, "name")
                 for n in nodes]
        assert names == ["wakeup_event::id"]

    def test_wildcard_search(self, mini_kernel_graph):
        nodes = queries.code_search(mini_kernel_graph, "sr_*",
                                    node_type="function")
        assert short_names(mini_kernel_graph, nodes) == \
            ["sr_do_ioctl", "sr_media_change", "sr_packet"]

    def test_unknown_module_gives_nothing(self, mini_kernel_graph):
        assert queries.code_search(mini_kernel_graph, "id",
                                   module="ghost.elf") == []

    def test_files_of_module(self, mini_kernel_graph):
        files = queries.files_of_module(mini_kernel_graph, "wakeup.elf")
        names = short_names(mini_kernel_graph, files)
        assert "wakeup.c" in names
        assert "sr.c" in names
        assert "main.c" not in names  # only in vmlinux


class TestGotoDefinition:
    def test_resolves_from_reference_position(self, mini_kernel_graph):
        graph = mini_kernel_graph
        # find the call edge main -> wakeup_poll and use its NAME_* pos
        definition = named(graph, "wakeup_poll", "function")
        edge = next(e for e in graph.edges_of(definition, Direction.IN,
                                              (model.CALLS,)))
        properties = graph.edge_properties(edge)
        found = queries.goto_definition(
            graph, "wakeup_poll", properties["name_file_id"],
            properties["name_start_line"], properties["name_start_col"])
        assert definition in found

    def test_wrong_position_finds_nothing(self, mini_kernel_graph):
        assert queries.goto_definition(mini_kernel_graph, "wakeup_poll",
                                       99, 1, 1) == []

    def test_column_bounds_respected(self, mini_kernel_graph):
        graph = mini_kernel_graph
        definition = named(graph, "wakeup_poll", "function")
        edge = next(e for e in graph.edges_of(definition, Direction.IN,
                                              (model.CALLS,)))
        properties = graph.edge_properties(edge)
        found = queries.goto_definition(
            graph, "wakeup_poll", properties["name_file_id"],
            properties["name_start_line"],
            properties["name_end_col"] + 5)
        assert definition not in found


class TestFindReferences:
    def test_function_references(self, mini_kernel_graph):
        graph = mini_kernel_graph
        target = named(graph, "sr_do_ioctl", "function")
        references = queries.find_references(graph, target)
        assert all(r.edge_type == "calls" for r in references)
        callers = {graph.node_property(r.from_node, "short_name")
                   for r in references}
        assert callers == {"sr_packet", "get_sectorsize"}

    def test_references_carry_positions(self, mini_kernel_graph):
        graph = mini_kernel_graph
        target = named(graph, "sr_do_ioctl", "function")
        for reference in queries.find_references(graph, target):
            assert reference.use_start_line is not None

    def test_field_references(self, mini_kernel_graph):
        graph = mini_kernel_graph
        field = next(n for n in graph.indexes.lookup("name",
                                                     "packet_command::cmd"))
        references = queries.find_references(graph, field)
        assert any(r.edge_type == "writes_member" for r in references)


class TestDebugging:
    def test_figure5_writer_found(self, mini_kernel_graph):
        writers = queries.writers_of_field_between(
            mini_kernel_graph, "sr_media_change", "get_sectorsize",
            "packet_command", "cmd")
        names = {mini_kernel_graph.node_property(w.writer_node,
                                                 "short_name")
                 for w in writers}
        assert names == {"sr_do_ioctl"}

    def test_unknown_bounds_empty(self, mini_kernel_graph):
        assert queries.writers_of_field_between(
            mini_kernel_graph, "ghost_fn", "get_sectorsize",
            "packet_command", "cmd") == []

    def test_unwritten_field_empty(self, mini_kernel_graph):
        # 'source' in wakeup_event is never written on that path
        assert queries.writers_of_field_between(
            mini_kernel_graph, "sr_media_change", "get_sectorsize",
            "wakeup_event", "source") == []


class TestComprehension:
    def test_backward_closure(self, mini_kernel_graph):
        closure = queries.call_closure(mini_kernel_graph,
                                       "sr_media_change", Direction.OUT)
        names = short_names(mini_kernel_graph, closure)
        assert names == ["get_sectorsize", "sr_do_ioctl", "sr_packet"]

    def test_forward_closure(self, mini_kernel_graph):
        closure = queries.call_closure(mini_kernel_graph, "sr_do_ioctl",
                                       Direction.IN)
        names = short_names(mini_kernel_graph, closure)
        assert names == ["get_sectorsize", "sr_media_change",
                         "sr_packet", "start_kernel"]

    def test_entry_point_path(self, mini_kernel_graph):
        path = queries.entry_point_path(mini_kernel_graph,
                                        "start_kernel", "sr_do_ioctl")
        names = [mini_kernel_graph.node_property(n, "short_name")
                 for n in path]
        assert names[0] == "start_kernel"
        assert names[-1] == "sr_do_ioctl"
        assert len(names) <= 4

    def test_no_path(self, mini_kernel_graph):
        assert queries.entry_point_path(mini_kernel_graph,
                                        "sr_do_ioctl",
                                        "start_kernel") is None


class TestSlicing:
    def test_backward_equals_reachable(self, mini_kernel_graph):
        graph = mini_kernel_graph
        seed = named(graph, "sr_media_change", "function")
        assert slicing.backward_slice(graph, seed) == \
            queries.call_closure(graph, "sr_media_change", Direction.OUT)

    def test_include_slice(self, mini_kernel_graph):
        graph = mini_kernel_graph
        header = named(graph, "scsi.h", "file")
        affected = slicing.include_slice(graph, header, forward=True)
        names = short_names(graph, affected)
        assert "sr.c" in names and "main.c" in names

    def test_macro_impact_direct(self, mini_kernel_graph):
        graph = mini_kernel_graph
        macro = named(graph, "PACKET_LEN", "macro")
        impacted = slicing.macro_impact(graph, macro)
        assert impacted  # the header's struct definition expands it

    def test_depth_profile_converges(self, mini_kernel_graph):
        graph = mini_kernel_graph
        seed = named(graph, "start_kernel", "function")
        sizes = slicing.slice_size_by_depth(graph, seed)
        assert sizes == sorted(sizes)
        assert sizes[-1] >= 4
