"""A miniature kernel-flavoured codebase shared by core tests.

Modelled on the paper's running examples: a SCSI-ish driver with a
``packet_command`` struct whose ``cmd`` field gets written on a call
path between ``sr_media_change`` and ``get_sectorsize`` (Figure 5), a
``wakeup.elf`` module with fields named ``id`` (Figure 3), and a small
call graph for closure queries (Figure 6).
"""

import pytest

from repro.build import Build
from repro.core import extract_build
from repro.core.frappe import Frappe
from repro.lang.source import VirtualFileSystem

MINI_KERNEL = {
    "include/types.h": """
#ifndef TYPES_H
#define TYPES_H
typedef unsigned long size_t;
typedef unsigned char u8;
#define NULL ((void *)0)
#endif
""",
    "include/scsi.h": """
#ifndef SCSI_H
#define SCSI_H
#include "types.h"
#define PACKET_LEN 12
struct packet_command {
    u8 cmd[PACKET_LEN];
    int quiet;
    int timeout;
};
struct scsi_device {
    int id;
    struct packet_command last;
};
int sr_do_ioctl(struct scsi_device *dev, struct packet_command *pc);
int sr_packet(struct scsi_device *dev, struct packet_command *pc);
int get_sectorsize(struct scsi_device *dev);
int sr_media_change(struct scsi_device *dev);
#endif
""",
    "drivers/sr_ioctl.c": """
#include "scsi.h"
static int retries;
int sr_do_ioctl(struct scsi_device *dev, struct packet_command *pc) {
    pc->cmd[0] = 0x25;
    pc->quiet = 1;
    retries = 3;
    return dev->id;
}
int sr_packet(struct scsi_device *dev, struct packet_command *pc) {
    return sr_do_ioctl(dev, pc);
}
""",
    "drivers/sr.c": """
#include "scsi.h"
int get_sectorsize(struct scsi_device *dev) {
    struct packet_command pc;
    pc.timeout = 30;
    return sr_do_ioctl(dev, &pc);
}
int sr_media_change(struct scsi_device *dev) {
    struct packet_command pc;
    sr_packet(dev, &pc);            /* line 7: before the 'to' call */
    if (dev->id > 0) {
        return get_sectorsize(dev); /* line 9: the bounding call */
    }
    return 0;
}
""",
    "wakeup/wakeup.c": """
#include "scsi.h"
struct wakeup_event {
    int id;
    int source;
};
static struct wakeup_event pending;
int wakeup_poll(void) {
    pending.id = sizeof(struct wakeup_event);
    return pending.id;
}
""",
    "init/main.c": """
#include "scsi.h"
int wakeup_poll(void);
enum boot_stage { EARLY, LATE = 9 };
int start_kernel(void) {
    struct scsi_device dev;
    dev.id = EARLY;
    if (sr_media_change(&dev)) {
        return wakeup_poll();
    }
    return LATE;
}
""",
}

BUILD_SCRIPT = """
gcc -Iinclude drivers/sr_ioctl.c -c -o drivers/sr_ioctl.o
gcc -Iinclude drivers/sr.c -c -o drivers/sr.o
gcc -Iinclude wakeup/wakeup.c -c -o wakeup/wakeup.o
gcc -Iinclude init/main.c -c -o init/main.o
gcc drivers/sr_ioctl.o drivers/sr.o wakeup/wakeup.o -o wakeup.elf
gcc init/main.o drivers/sr_ioctl.o drivers/sr.o wakeup/wakeup.o -o vmlinux
"""


def build_mini_kernel():
    build = Build(VirtualFileSystem(dict(MINI_KERNEL)))
    build.run_script(BUILD_SCRIPT)
    return build


@pytest.fixture(scope="session")
def mini_kernel_build():
    return build_mini_kernel()


@pytest.fixture(scope="session")
def mini_kernel_graph(mini_kernel_build):
    return extract_build(mini_kernel_build)


@pytest.fixture()
def frappe(mini_kernel_graph):
    return Frappe(mini_kernel_graph)
