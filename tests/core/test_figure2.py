"""Experiment E1: the paper's Figure 2 dependency graph, exactly.

The paper's example: ``foo.h`` declares ``bar``, ``foo.c`` defines it,
``main.c`` calls it; built with::

    gcc foo.c -c -o foo.o
    gcc main.c foo.o -o prog

The resulting graph must contain the nodes and edges the figure draws:
prog, foo.o, the three source files, functions main and bar, the
parameters argv/argc/input and the primitive types char and int, with
``argv -isa_type{QUALIFIERS:'**'}-> char`` called out in the text.
"""

import pytest

from repro.build import Build
from repro.core import extract_build
from repro.core import model
from repro.graphdb.view import Direction
from repro.lang.source import VirtualFileSystem


@pytest.fixture(scope="module")
def graph():
    fs = VirtualFileSystem({
        "foo.h": "int bar(int);\n",
        "foo.c": '#include "foo.h"\n'
                 "int bar(int input) { return input; }\n",
        "main.c": '#include "foo.h"\n'
                  "int main(int argc, char **argv) { return bar(argc); }\n",
    })
    build = Build(fs)
    build.run("gcc foo.c -c -o foo.o")
    build.run("gcc main.c foo.o -o prog")
    return extract_build(build)


def node_named(graph, short_name, node_type):
    matches = [n for n in graph.indexes.lookup("short_name", short_name)
               if graph.node_property(n, "type") == node_type]
    assert len(matches) == 1, \
        f"expected one {node_type} {short_name!r}, got {matches}"
    return matches[0]


def has_edge(graph, source, target, edge_type):
    return any(graph.edge_target(e) == target
               for e in graph.edges_of(source, Direction.OUT,
                                       (edge_type,)))


class TestFigure2Nodes:
    @pytest.mark.parametrize("short_name,node_type", [
        ("prog", "module"), ("foo.o", "module"),
        ("main.c", "file"), ("foo.c", "file"), ("foo.h", "file"),
        ("main", "function"), ("bar", "function"),
        ("argc", "parameter"), ("argv", "parameter"),
        ("input", "parameter"),
        ("int", "primitive"), ("char", "primitive"),
    ])
    def test_node_present(self, graph, short_name, node_type):
        node_named(graph, short_name, node_type)

    def test_one_int_node_only(self, graph):
        ints = [n for n in graph.indexes.lookup("short_name", "int")]
        assert len(ints) == 1  # the hub property the paper relies on


class TestFigure2Edges:
    def test_prog_compiled_from_main_c(self, graph):
        assert has_edge(graph, node_named(graph, "prog", "module"),
                        node_named(graph, "main.c", "file"),
                        model.COMPILED_FROM)

    def test_prog_linked_from_foo_o(self, graph):
        assert has_edge(graph, node_named(graph, "prog", "module"),
                        node_named(graph, "foo.o", "module"),
                        model.LINKED_FROM)

    def test_foo_o_compiled_from_foo_c(self, graph):
        assert has_edge(graph, node_named(graph, "foo.o", "module"),
                        node_named(graph, "foo.c", "file"),
                        model.COMPILED_FROM)

    def test_includes_edges(self, graph):
        foo_h = node_named(graph, "foo.h", "file")
        assert has_edge(graph, node_named(graph, "main.c", "file"),
                        foo_h, model.INCLUDES)
        assert has_edge(graph, node_named(graph, "foo.c", "file"),
                        foo_h, model.INCLUDES)

    def test_file_contains_functions(self, graph):
        assert has_edge(graph, node_named(graph, "main.c", "file"),
                        node_named(graph, "main", "function"),
                        model.FILE_CONTAINS)
        assert has_edge(graph, node_named(graph, "foo.c", "file"),
                        node_named(graph, "bar", "function"),
                        model.FILE_CONTAINS)

    def test_main_calls_bar(self, graph):
        assert has_edge(graph, node_named(graph, "main", "function"),
                        node_named(graph, "bar", "function"),
                        model.CALLS)

    def test_header_decl_declares_definition(self, graph):
        decl = node_named(graph, "bar", "function_decl")
        definition = node_named(graph, "bar", "function")
        assert has_edge(graph, decl, definition, model.DECLARES)
        assert has_edge(graph, node_named(graph, "foo.h", "file"), decl,
                        model.FILE_CONTAINS)

    def test_link_matches_across_units(self, graph):
        decl = node_named(graph, "bar", "function_decl")
        definition = node_named(graph, "bar", "function")
        assert has_edge(graph, decl, definition, model.LINK_MATCHES)

    def test_params(self, graph):
        main = node_named(graph, "main", "function")
        argc = node_named(graph, "argc", "parameter")
        argv = node_named(graph, "argv", "parameter")
        assert has_edge(graph, main, argc, model.HAS_PARAM)
        assert has_edge(graph, main, argv, model.HAS_PARAM)

    def test_argv_isa_type_char_with_qualifier(self, graph):
        """The edge the paper's text singles out."""
        argv = node_named(graph, "argv", "parameter")
        char = node_named(graph, "char", "primitive")
        edges = [e for e in graph.edges_of(argv, Direction.OUT,
                                           (model.ISA_TYPE,))
                 if graph.edge_target(e) == char]
        assert len(edges) == 1
        assert graph.edge_property(edges[0], "qualifiers") == "**"

    def test_argc_isa_type_int(self, graph):
        argc = node_named(graph, "argc", "parameter")
        integer = node_named(graph, "int", "primitive")
        assert has_edge(graph, argc, integer, model.ISA_TYPE)

    def test_call_edge_has_use_and_name_ranges(self, graph):
        main = node_named(graph, "main", "function")
        call = next(iter(graph.edges_of(main, Direction.OUT,
                                        (model.CALLS,))))
        properties = graph.edge_properties(call)
        # call site 'bar(argc)' spans more than the name token 'bar'
        assert properties["use_end_col"] > properties["name_end_col"]
        assert properties["use_start_line"] == \
            properties["name_start_line"] == 2

    def test_link_order_property(self, graph):
        prog = node_named(graph, "prog", "module")
        linked = list(graph.edges_of(prog, Direction.OUT,
                                     (model.LINKED_FROM,)))
        assert graph.edge_property(linked[0], "link_order") == 0


class TestGroupLabels:
    def test_function_is_symbol(self, graph):
        main = node_named(graph, "main", "function")
        assert "symbol" in graph.node_labels(main)

    def test_primitive_is_type(self, graph):
        integer = node_named(graph, "int", "primitive")
        assert "type" in graph.node_labels(integer)

    def test_file_is_container(self, graph):
        assert "container" in graph.node_labels(
            node_named(graph, "main.c", "file"))
