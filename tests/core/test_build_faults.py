"""Fault-tolerant indexing: broken translation units must not sink a
build.

The paper indexes an 11.4 MLoC kernel tree; at that scale some units
always fail to parse.  Under ``keep_going`` the pipeline records a
structured diagnostic per failed unit, links what survived, and still
produces a queryable (partial) graph.  Under ``fail_fast`` the first
front-end error propagates unchanged.
"""

import pytest

from repro.build import (FAIL_FAST, KEEP_GOING, Build, BuildReport,
                         UnitOutcome)
from repro.core import extract_build, model
from repro.errors import BuildDiagnosticError, FrontEndError, LinkError
from repro.graphdb.view import Direction
from repro.lang.source import VirtualFileSystem

N_UNITS = 10
BROKEN = ("unit3.c", "unit7.c")


def mini_tree():
    """Ten translation units; unit3.c and unit7.c have syntax errors."""
    files = {"lib.h": "".join(f"int helper{index}(int);\n"
                              for index in range(N_UNITS))}
    for index in range(N_UNITS):
        name = f"unit{index}.c"
        if name in BROKEN:
            files[name] = ('#include "lib.h"\n'
                           f"int helper{index}(int x) {{ return ((x; }}\n")
        else:
            callee = f"helper{(index + 1) % N_UNITS}"
            files[name] = ('#include "lib.h"\n'
                           f"int helper{index}(int x) "
                           f"{{ return {callee}(x) + 1; }}\n")
    return VirtualFileSystem(files)


def build_script():
    lines = [f"gcc unit{index}.c -c -o unit{index}.o"
             for index in range(N_UNITS)]
    objects = " ".join(f"unit{index}.o" for index in range(N_UNITS))
    lines.append(f"gcc {objects} -o prog")
    return "\n".join(lines)


class TestFailFast:
    def test_first_broken_unit_raises(self):
        build = Build(mini_tree(), policy=FAIL_FAST)
        with pytest.raises(FrontEndError):
            build.run_script(build_script())

    def test_missing_object_on_link_line_raises(self):
        build = Build(VirtualFileSystem({}), policy=FAIL_FAST)
        with pytest.raises(LinkError):
            build.run("gcc ghost.o -o prog")

    def test_fail_fast_is_the_default(self):
        assert Build(mini_tree()).policy == FAIL_FAST


class TestKeepGoing:
    @pytest.fixture(scope="class")
    def build(self):
        build = Build(mini_tree(), policy=KEEP_GOING)
        build.run_script(build_script())
        return build

    def test_report_counts(self, build):
        report = build.report
        assert len(report.ok_units) == N_UNITS - len(BROKEN)
        assert len(report.failed_units) == len(BROKEN)
        assert report.partial
        assert "2 failed" in report.summary()

    def test_failed_units_carry_file_and_line(self, build):
        for outcome in build.report.failed_units:
            assert outcome.source_path in BROKEN
            assert not outcome.ok
            diagnostic = outcome.diagnostics[0]
            assert diagnostic.category == "parse"
            assert diagnostic.file == outcome.source_path
            assert diagnostic.line == 2
            assert diagnostic.column > 0

    def test_outcome_lookup_by_source(self, build):
        outcome = build.report.outcome_for("unit3.c")
        assert outcome is not None and outcome.status == "failed"
        assert build.report.outcome_for("unit0.c").ok

    def test_link_skips_missing_objects_with_warning(self, build):
        (module,) = build.modules
        assert module.partial
        assert sorted(module.missing_object_paths) == \
            ["unit3.o", "unit7.o"]
        assert len(module.objects) == N_UNITS - len(BROKEN)
        skipped = [d for d in build.report.link_diagnostics
                   if "skipping missing object" in d.message]
        assert len(skipped) == len(BROKEN)

    def test_partial_graph_still_answers_queries(self, build):
        graph = extract_build(build)
        # the Figure 2 question — who calls helper1? — still works
        # for every surviving unit
        (helper1,) = [n for n in
                      graph.indexes.lookup("short_name", "helper1")
                      if graph.node_property(n, "type") == "function"]
        callers = [graph.edge_source(e)
                   for e in graph.edges_of(helper1, Direction.IN,
                                           (model.CALLS,))]
        assert [graph.node_property(n, "short_name") for n in callers] \
            == ["helper0"]
        # the broken units contribute no functions...
        assert not [n for n in
                    graph.indexes.lookup("short_name", "helper3")
                    if graph.node_property(n, "type") == "function"]
        # ...but their file nodes exist and are tagged as failed
        (unit3,) = [n for n in graph.indexes.lookup("short_name",
                                                    "unit3.c")]
        assert graph.node_property(unit3, model.P_INDEX_STATUS) == \
            "failed"
        assert "parse" in graph.node_property(unit3,
                                              model.P_INDEX_ERROR)
        (unit0,) = [n for n in graph.indexes.lookup("short_name",
                                                    "unit0.c")]
        assert graph.node_property(unit0, model.P_INDEX_STATUS) is None

    def test_bad_command_line_becomes_diagnostic(self):
        build = Build(mini_tree(), policy=KEEP_GOING)
        build.run("gcc")
        (outcome,) = build.report.outcomes
        assert outcome.status == "failed"
        assert outcome.diagnostics[0].category == "command"


class TestErrorBudget:
    def test_budget_exceeded_raises_with_diagnostics(self):
        build = Build(mini_tree(), policy=KEEP_GOING, max_errors=1)
        with pytest.raises(BuildDiagnosticError) as info:
            build.run_script(build_script())
        assert len(info.value.diagnostics) >= 2

    def test_budget_of_zero_stops_at_first_error(self):
        build = Build(mini_tree(), policy=KEEP_GOING, max_errors=0)
        with pytest.raises(BuildDiagnosticError):
            build.run_script(build_script())
        assert len(build.report.failed_units) == 1

    def test_generous_budget_never_trips(self):
        build = Build(mini_tree(), policy=KEEP_GOING, max_errors=10)
        report = build.run_script(build_script())
        assert isinstance(report, BuildReport)
        assert len(report.failed_units) == len(BROKEN)


class TestPolicyValidation:
    def test_unknown_policy_rejected(self):
        from repro.errors import BuildError
        with pytest.raises(BuildError):
            Build(VirtualFileSystem({}), policy="yolo")

    def test_negative_budget_rejected(self):
        from repro.errors import BuildError
        with pytest.raises(BuildError):
            Build(VirtualFileSystem({}), max_errors=-1)

    def test_outcome_ok_covers_degraded(self):
        outcome = UnitOutcome("a.c", "a.o", "degraded")
        assert outcome.ok
