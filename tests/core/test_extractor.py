"""Extraction details beyond Figure 2: reference classification,
macros, enums, types, deduplication across units."""

import pytest

from repro.build import Build
from repro.core import extract_build, model
from repro.graphdb.view import Direction
from repro.lang.source import VirtualFileSystem


def graph_for(files, script):
    build = Build(VirtualFileSystem(files))
    build.run_script(script)
    return extract_build(build)


def named(graph, short_name, node_type):
    matches = [n for n in graph.indexes.lookup("short_name", short_name)
               if graph.node_property(n, "type") == node_type]
    assert len(matches) == 1, (short_name, node_type, matches)
    return matches[0]


def edge_types_between(graph, source, target):
    return sorted(graph.edge_type(e)
                  for e in graph.edges_of(source, Direction.OUT)
                  if graph.edge_target(e) == target)


@pytest.fixture(scope="module")
def rw_graph():
    return graph_for({
        "m.c": """
struct box { int value; int other; };
int counter;
int source;
void touch(void) {
    struct box b;
    struct box *p = &b;
    counter = source;          /* write counter, read source */
    counter += 1;              /* read + write */
    b.value = 2;               /* writes_member */
    p->value = b.other;        /* writes_member via ptr, reads_member */
    counter++;                 /* read + write */
    int *q = &counter;         /* takes_address_of */
    *q = 5;                    /* dereferences q */
}
""",
    }, "gcc m.c -c -o m.o")


class TestReadWriteClassification:
    def test_plain_write(self, rw_graph):
        touch = named(rw_graph, "touch", "function")
        counter = named(rw_graph, "counter", "global")
        assert "writes" in edge_types_between(rw_graph, touch, counter)

    def test_plain_read(self, rw_graph):
        touch = named(rw_graph, "touch", "function")
        source = named(rw_graph, "source", "global")
        assert edge_types_between(rw_graph, touch, source) == ["reads"]

    def test_compound_assign_reads_and_writes(self, rw_graph):
        touch = named(rw_graph, "touch", "function")
        counter = named(rw_graph, "counter", "global")
        types = edge_types_between(rw_graph, touch, counter)
        assert "reads" in types and "writes" in types

    def test_member_write(self, rw_graph):
        touch = named(rw_graph, "touch", "function")
        value = next(n for n in rw_graph.indexes.lookup("name",
                                                        "box::value"))
        assert "writes_member" in edge_types_between(rw_graph, touch,
                                                     value)

    def test_member_read(self, rw_graph):
        touch = named(rw_graph, "touch", "function")
        other = next(n for n in rw_graph.indexes.lookup("name",
                                                        "box::other"))
        assert "reads_member" in edge_types_between(rw_graph, touch,
                                                    other)

    def test_takes_address_of(self, rw_graph):
        touch = named(rw_graph, "touch", "function")
        counter = named(rw_graph, "counter", "global")
        assert "takes_address_of" in edge_types_between(rw_graph, touch,
                                                        counter)

    def test_dereferences(self, rw_graph):
        touch = named(rw_graph, "touch", "function")
        q = named(rw_graph, "q", "local")
        assert "dereferences" in edge_types_between(rw_graph, touch, q)

    def test_has_local_edges(self, rw_graph):
        touch = named(rw_graph, "touch", "function")
        locals_ = [rw_graph.edge_target(e) for e in rw_graph.edges_of(
            touch, Direction.OUT, (model.HAS_LOCAL,))]
        names = sorted(rw_graph.node_property(n, "short_name")
                       for n in locals_)
        assert names == ["b", "p", "q"]


class TestMacrosAndTypes:
    @pytest.fixture(scope="class")
    def graph(self):
        return graph_for({
            "m.c": """
#define LIMIT 10
#define DOUBLE(x) ((x) * 2)
enum color { RED, GREEN = 5 };
typedef unsigned long ulong_t;
union blob { int i; float f; };
int clamp(int v) {
#ifdef LIMIT
    if (v > DOUBLE(LIMIT)) return LIMIT;
#endif
    return (int)(ulong_t)v + sizeof(union blob) + _Alignof(int) + RED;
}
""",
        }, "gcc m.c -c -o m.o")

    def test_macro_nodes(self, graph):
        named(graph, "LIMIT", "macro")
        named(graph, "DOUBLE", "macro")

    def test_expands_macro_from_function(self, graph):
        clamp = named(graph, "clamp", "function")
        limit = named(graph, "LIMIT", "macro")
        assert "expands_macro" in edge_types_between(graph, clamp, limit)

    def test_interrogates_macro(self, graph):
        clamp = named(graph, "clamp", "function")
        limit = named(graph, "LIMIT", "macro")
        assert "interrogates_macro" in edge_types_between(graph, clamp,
                                                          limit)

    def test_enumerator_nodes_and_uses(self, graph):
        red = named(graph, "RED", "enumerator")
        assert graph.node_property(red, "value") == 0
        green = named(graph, "GREEN", "enumerator")
        assert graph.node_property(green, "value") == 5
        clamp = named(graph, "clamp", "function")
        assert "uses_enumerator" in edge_types_between(graph, clamp, red)

    def test_enum_contains_enumerators(self, graph):
        color = named(graph, "color", "enum_def")
        red = named(graph, "RED", "enumerator")
        assert "contains" in edge_types_between(graph, color, red)

    def test_casts_to(self, graph):
        clamp = named(graph, "clamp", "function")
        integer = named(graph, "int", "primitive")
        assert "casts_to" in edge_types_between(graph, clamp, integer)
        ulong_t = named(graph, "ulong_t", "typedef")
        assert "casts_to" in edge_types_between(graph, clamp, ulong_t)

    def test_gets_size_of_union(self, graph):
        clamp = named(graph, "clamp", "function")
        blob = named(graph, "blob", "union")
        assert "gets_size_of" in edge_types_between(graph, clamp, blob)

    def test_gets_align_of(self, graph):
        clamp = named(graph, "clamp", "function")
        integer = named(graph, "int", "primitive")
        assert "gets_align_of" in edge_types_between(graph, clamp,
                                                     integer)

    def test_typedef_isa_type(self, graph):
        ulong_t = named(graph, "ulong_t", "typedef")
        ulong = named(graph, "unsigned long", "primitive")
        assert "isa_type" in edge_types_between(graph, ulong_t, ulong)


class TestCrossUnitDeduplication:
    @pytest.fixture(scope="class")
    def graph(self):
        header = """
#ifndef H_H
#define H_H
struct shared { int f; };
typedef struct shared shared_t;
extern int g;
int api(shared_t *s);
#endif
"""
        return graph_for({
            "h.h": header,
            "a.c": '#include "h.h"\n'
                   "int g;\n"
                   "int api(shared_t *s) { return s->f + g; }\n",
            "b.c": '#include "h.h"\n'
                   "static int hidden(void) { return 1; }\n"
                   "int use(shared_t *s) { return api(s) + hidden(); }\n",
            "c.c": '#include "h.h"\n'
                   "static int hidden(void) { return 2; }\n"
                   "int use2(void) { return hidden(); }\n",
        }, "gcc a.c -c -o a.o\n"
           "gcc b.c -c -o b.o\n"
           "gcc c.c -c -o c.o\n"
           "gcc a.o b.o c.o -o prog")

    def test_shared_struct_single_node(self, graph):
        named(graph, "shared", "struct")  # asserts exactly one

    def test_shared_typedef_single_node(self, graph):
        named(graph, "shared_t", "typedef")

    def test_shared_field_single_node(self, graph):
        fields = list(graph.indexes.lookup("name", "shared::f"))
        assert len(fields) == 1

    def test_static_functions_stay_distinct(self, graph):
        hiddens = [n for n in graph.indexes.lookup("short_name", "hidden")
                   if graph.node_property(n, "type") == "function"]
        assert len(hiddens) == 2

    def test_cross_unit_call_reaches_definition(self, graph):
        use = named(graph, "use", "function")
        api = named(graph, "api", "function")
        assert "calls" in edge_types_between(graph, use, api)

    def test_extern_global_resolves(self, graph):
        api = named(graph, "api", "function")
        g = named(graph, "g", "global")
        assert "reads" in edge_types_between(graph, api, g)

    def test_module_link_declares(self, graph):
        prog = named(graph, "prog", "module")
        api = named(graph, "api", "function")
        assert "link_declares" in edge_types_between(graph, prog, api)


class TestStructuralDetails:
    def test_bit_width_on_isa_type(self):
        graph = graph_for({"m.c": "struct s { int flag : 3; };\n"},
                          "gcc m.c -c -o m.o")
        flag = next(iter(graph.indexes.lookup("name", "s::flag")))
        edge = next(iter(graph.edges_of(flag, Direction.OUT,
                                        (model.ISA_TYPE,))))
        assert graph.edge_property(edge, "bit_width") == 3

    def test_array_lengths_on_isa_type(self):
        graph = graph_for({"m.c": "int grid[4][5];\n"},
                          "gcc m.c -c -o m.o")
        grid = named(graph, "grid", "global")
        edge = next(iter(graph.edges_of(grid, Direction.OUT,
                                        (model.ISA_TYPE,))))
        assert graph.edge_property(edge, "array_lengths") == [4, 5]
        assert graph.edge_property(edge, "qualifiers") == "]]"

    def test_variadic_property(self):
        graph = graph_for(
            {"m.c": "int printf(const char *f, ...);\n"
                    "int use(void) { return printf(\"x\"); }\n"},
            "gcc m.c -c -o m.o")
        printf_node = named(graph, "printf", "function_decl")
        assert graph.node_property(printf_node, "variadic") is True

    def test_long_name_signature(self):
        graph = graph_for(
            {"m.c": "int add(int a, char *b) { return a; }\n"},
            "gcc m.c -c -o m.o")
        add = named(graph, "add", "function")
        assert graph.node_property(add, "long_name") == \
            "add(int,char *)"

    def test_function_used_as_pointer_takes_address(self):
        graph = graph_for(
            {"m.c": "int cb(void) { return 0; }\n"
                    "int (*slot)(void);\n"
                    "void install(void) { slot = cb; }\n"},
            "gcc m.c -c -o m.o")
        install = named(graph, "install", "function")
        cb = named(graph, "cb", "function")
        assert "takes_address_of" in edge_types_between(graph, install,
                                                        cb)

    def test_dir_contains_hierarchy(self):
        graph = graph_for(
            {"drivers/net/e1000.c": "int probe(void) { return 0; }\n"},
            "gcc drivers/net/e1000.c -c -o drivers/net/e1000.o")
        drivers = named(graph, "drivers", "directory")
        net = named(graph, "net", "directory")
        source = named(graph, "e1000.c", "file")
        assert "dir_contains" in edge_types_between(graph, drivers, net)
        assert "dir_contains" in edge_types_between(graph, net, source)
