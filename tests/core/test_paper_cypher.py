"""The paper's queries, as Cypher text, on the extracted mini-kernel.

Each figure's query runs through the full stack (extractor output ->
Cypher engine) and is cross-checked against the typed API — the two
implementations of every use case must agree.
"""

import pytest

from repro.core import queries
from repro.cypher import NodeRef
from repro.graphdb.view import Direction


@pytest.fixture()
def engine(frappe):
    return frappe


class TestFigure3Cypher:
    QUERY = (
        "START m=node:node_auto_index('short_name: wakeup.elf') "
        "MATCH m -[:compiled_from|linked_from*]-> f "
        "WITH distinct f "
        "MATCH f -[:file_contains]-> (n:field{short_name: 'id'}) "
        "RETURN n")

    def test_matches_api(self, frappe):
        cypher_ids = {row[0].id for row in frappe.query(self.QUERY).rows}
        api_ids = set(queries.code_search(frappe.view, "id",
                                          node_type="field",
                                          module="wakeup.elf"))
        assert cypher_ids == api_ids
        assert cypher_ids  # non-empty

    def test_module_constraint_excludes_header_fields(self, frappe):
        all_ids = set(queries.code_search(frappe.view, "id",
                                          node_type="field"))
        module_ids = {row[0].id
                      for row in frappe.query(self.QUERY).rows}
        assert module_ids < all_ids  # scsi_device::id is header-only


class TestFigure4Cypher:
    def test_goto_definition_via_cypher(self, frappe, mini_kernel_graph):
        graph = mini_kernel_graph
        # take a real reference to wakeup_event::id and use its NAME_*
        field = next(n for n in graph.indexes.lookup(
            "name", "wakeup_event::id"))
        edge = next(e for e in graph.edges_of(field, Direction.IN,
                                              ("writes_member",
                                               "reads_member")))
        properties = graph.edge_properties(edge)
        result = frappe.query(
            "START n=node:node_auto_index('short_name: id') "
            "WHERE (n) <-[{name_file_id: $file, name_start_line: $line, "
            "name_start_col: $col}]- () RETURN n",
            parameters={"file": properties["name_file_id"],
                        "line": properties["name_start_line"],
                        "col": properties["name_start_col"]})
        assert {row[0].id for row in result.rows} == {field}
        api = queries.goto_definition(
            graph, "id", properties["name_file_id"],
            properties["name_start_line"],
            properties["name_start_col"])
        assert field in api


class TestFigure5Cypher:
    def test_debugging_query(self, frappe, mini_kernel_graph):
        graph = mini_kernel_graph
        to_line = frappe.query(
            "MATCH (a{short_name:'sr_media_change'}) -[r:calls]-> "
            "(b{short_name:'get_sectorsize'}) "
            "RETURN r.use_start_line").value()
        result = frappe.query(f"""
START from=node:node_auto_index('short_name: sr_media_change'),
 to=node:node_auto_index('short_name: get_sectorsize'),
 b=node:node_auto_index('short_name: packet_command')
MATCH writer -[write:writes_member]-> ({{SHORT_NAME:'cmd'}})
    <-[:contains]- b
WITH to, from, writer, write
MATCH direct <-[s:calls]- from -[r:calls{{use_start_line: {to_line}}}]-> to
WHERE r.use_start_line >= s.use_start_line
    AND direct -[:calls*]-> writer
RETURN distinct writer, write.use_start_line""")
        cypher_writers = {row[0].id for row in result.rows}
        api_writers = {w.writer_node for w in
                       queries.writers_of_field_between(
                           graph, "sr_media_change", "get_sectorsize",
                           "packet_command", "cmd")}
        assert cypher_writers == api_writers
        assert cypher_writers


class TestFigure6Cypher:
    QUERY = ("START n=node:node_auto_index('short_name: "
             "sr_media_change') MATCH n -[:calls*]-> m "
             "RETURN distinct m")

    def test_closure_matches_traversal(self, frappe):
        cypher_ids = {row[0].id for row in frappe.query(self.QUERY).rows}
        assert cypher_ids == frappe.backward_slice("sr_media_change")


class TestTable6Cypher:
    def test_both_syntaxes_agree(self, frappe):
        legacy = frappe.query(
            "START n=node:node_auto_index('(TYPE: struct TYPE: union "
            "TYPE: enum_def) AND NAME: packet_command') RETURN n")
        modern = frappe.query(
            'MATCH (n:container:symbol{name: "packet_command"}) '
            "RETURN n")
        assert {row[0].id for row in legacy.rows} == \
            {row[0].id for row in modern.rows}
        assert legacy.rows


class TestReturnTypes:
    def test_nodes_come_back_as_refs(self, frappe):
        result = frappe.query("MATCH (n:module) RETURN n LIMIT 1")
        assert isinstance(result.rows[0][0], NodeRef)
