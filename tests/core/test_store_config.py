"""StoreConfig: the consolidated Frappe.open surface and its shim."""

import pickle

import pytest

from repro.core import DEFAULT_CONFIG, StoreConfig
from repro.core.frappe import Frappe
from repro.graphdb import PropertyGraph
from repro.graphdb.storage import GraphStore, PageCache


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    graph = PropertyGraph()
    for name in ("alpha", "beta", "gamma"):
        graph.add_node("function", short_name=name, type="function")
    path = tmp_path_factory.mktemp("config") / "store"
    GraphStore.write(graph, str(path))
    return str(path)


QUERY = "MATCH (n:function) RETURN n.short_name ORDER BY n.short_name"


class TestValidation:
    def test_defaults(self):
        config = StoreConfig()
        assert config == DEFAULT_CONFIG
        assert config.make_page_cache() is None

    def test_rejects_bad_execution_mode(self):
        with pytest.raises(ValueError, match="execution_mode"):
            StoreConfig(execution_mode="vectorized")

    def test_rejects_bad_morsel_size(self):
        with pytest.raises(ValueError, match="morsel_size"):
            StoreConfig(morsel_size=0)

    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError, match="default_timeout"):
            StoreConfig(default_timeout=-1.0)

    def test_mmap_makes_mmap_cache(self):
        cache = StoreConfig(mmap=True).make_page_cache()
        assert isinstance(cache, PageCache)

    def test_explicit_cache_wins_over_mmap(self):
        cache = PageCache(capacity_pages=16)
        config = StoreConfig(page_cache=cache, mmap=True)
        assert config.make_page_cache() is cache


class TestWireForm:
    def test_dict_roundtrip(self):
        config = StoreConfig(mmap=True, execution_mode="batch",
                             morsel_size=512, default_timeout=3.0)
        assert StoreConfig.from_dict(config.to_dict()) == config

    def test_to_dict_drops_page_cache(self):
        config = StoreConfig(page_cache=PageCache(capacity_pages=4))
        assert "page_cache" not in config.to_dict()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="mmaped"):
            StoreConfig.from_dict({"mmaped": True})

    def test_picklable_without_explicit_cache(self):
        config = StoreConfig(mmap=True, morsel_size=256)
        assert pickle.loads(pickle.dumps(config)) == config


class TestOpenWithConfig:
    def test_open_default_config(self, store_dir):
        with Frappe.open(store_dir) as frappe:
            assert frappe.query(QUERY).values() == \
                ["alpha", "beta", "gamma"]

    def test_open_applies_engine_knobs(self, store_dir):
        config = StoreConfig(execution_mode="rows",
                             default_timeout=30.0)
        with Frappe.open(store_dir, config=config) as frappe:
            result = frappe.query(QUERY)
            assert result.stats.execution_mode == "rows"
            assert frappe.engine.default_timeout == 30.0

    def test_open_mmap_config(self, store_dir):
        config = StoreConfig(mmap=True)
        with Frappe.open(store_dir, config=config) as frappe:
            assert frappe.query(QUERY).values() == \
                ["alpha", "beta", "gamma"]


class TestDeprecationShim:
    def test_legacy_keyword_warns_and_works(self, store_dir):
        with pytest.warns(DeprecationWarning, match="StoreConfig"):
            frappe = Frappe.open(store_dir, mmap=True)
        with frappe:
            assert len(frappe.query(QUERY)) == 3

    def test_legacy_positional_page_cache(self, store_dir):
        cache = PageCache(capacity_pages=64)
        with pytest.warns(DeprecationWarning):
            frappe = Frappe.open(store_dir, cache)
        with frappe:
            frappe.query(QUERY)
            assert cache.stats.hits + cache.stats.misses > 0

    def test_legacy_execution_mode_kwarg(self, store_dir):
        with pytest.warns(DeprecationWarning):
            frappe = Frappe.open(store_dir, execution_mode="rows")
        with frappe:
            assert frappe.query(QUERY).stats.execution_mode == "rows"

    def test_config_plus_legacy_is_an_error(self, store_dir):
        with pytest.raises(TypeError, match="config="):
            Frappe.open(store_dir, mmap=True,
                        config=StoreConfig(mmap=True))

    def test_unknown_kwarg_is_an_error(self, store_dir):
        with pytest.raises(TypeError, match="mmaped"):
            Frappe.open(store_dir, mmaped=True)

    def test_too_many_positionals_is_an_error(self, store_dir):
        with pytest.raises(TypeError, match="positional"):
            Frappe.open(store_dir, None, None, True)

    def test_duplicate_positional_and_keyword(self, store_dir):
        cache = PageCache(capacity_pages=8)
        with pytest.raises(TypeError, match="page_cache"):
            Frappe.open(store_dir, cache, page_cache=cache)
