"""Whole-system integration: every layer in one flow.

Generates a synthetic codebase, compiles it through the front end,
extracts the graph, saves it to disk, reopens it page-cached, runs the
paper's use cases cold and warm, renders the map, and versions an
evolved release — the complete life of a Frappé deployment.
"""

import pytest

from repro.build import Build
from repro.codemap import build_hierarchy, layout_map, render_svg
from repro.core import extract_build
from repro.core.frappe import Frappe
from repro.graphdb import stats
from repro.lang.source import VirtualFileSystem
from repro.versioned import VersionedGraphStore, align_graph, change_impact
from repro.workloads import generate_codebase
from repro.workloads.synthc import evolve


@pytest.fixture(scope="module")
def codebase():
    return generate_codebase(subsystems=4, files_per_subsystem=3,
                             functions_per_file=4, seed=99)


@pytest.fixture(scope="module")
def graph(codebase):
    build = Build(VirtualFileSystem(codebase.files))
    build.run_script(codebase.build_script)
    return extract_build(build)


@pytest.fixture(scope="module")
def disk_frappe(graph, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("system") / "store")
    Frappe(graph).save(directory)
    with Frappe.open(directory) as frappe:
        yield frappe


class TestEndToEnd:
    def test_extraction_scale(self, graph, codebase):
        metrics = stats.graph_metrics(graph)
        # a few graph entities per source line is the expected density
        assert metrics.node_count > codebase.line_count * 0.5
        assert metrics.edge_count > metrics.node_count * 2

    def test_cold_use_cases_on_disk(self, disk_frappe):
        disk_frappe.evict_caches()
        functions = disk_frappe.search("*_init_*", node_type="function")
        assert functions
        disk_frappe.evict_caches()
        closure = disk_frappe.backward_slice("start_kernel")
        assert len(closure) > 5
        disk_frappe.evict_caches()
        result = disk_frappe.query(
            "MATCH (f:file) -[:file_contains]-> (n:function) "
            "RETURN f.short_name, count(*) AS functions "
            "ORDER BY functions DESC LIMIT 3")
        assert len(result) == 3

    def test_cypher_and_api_agree_on_disk(self, disk_frappe):
        cypher = {row[0].id for row in disk_frappe.query(
            "START n=node:node_auto_index('short_name: start_kernel') "
            "MATCH n -[:calls*]-> m RETURN distinct m",
            timeout=30.0).rows}
        assert cypher == disk_frappe.backward_slice("start_kernel")

    def test_map_renders_from_disk_store(self, disk_frappe):
        root = build_hierarchy(disk_frappe.view)
        box = layout_map(root, 800, 600)
        svg = render_svg(box)
        assert svg.count("<rect") > 10

    def test_macro_impact_spans_subsystems(self, disk_frappe, codebase):
        subsystem = codebase.subsystems[0]
        impacted = disk_frappe.macro_impact(f"{subsystem.upper()}_MAX")
        assert impacted

    def test_versioning_lifecycle(self, codebase, graph,
                                  tmp_path_factory):
        store = VersionedGraphStore(
            str(tmp_path_factory.mktemp("vers") / "repo"), mode="delta")
        store.commit(graph, "r0")
        evolved = evolve(codebase, change_fraction=0.08)
        build = Build(VirtualFileSystem(evolved.files))
        build.run_script(evolved.build_script)
        new_graph = align_graph(graph, extract_build(build))
        store.commit(new_graph, "r1")
        # the delta is small relative to a snapshot
        records = store.versions()
        assert records[1].storage_bytes < records[0].storage_bytes / 10
        # impact finds the hotfix
        impact = change_impact(store.checkout("r0"),
                               store.checkout("r1"))
        names = {new_graph.node_property(n, "short_name")
                 for n in impact.changed_functions}
        assert any("hotfix" in name for name in names)

    def test_store_sizes_sane(self, graph, tmp_path_factory):
        directory = str(tmp_path_factory.mktemp("sz") / "s")
        sizes = Frappe(graph).save(directory)
        assert sizes["properties"] > sizes["nodes"]
        assert sizes["total"] < 50 * 1024 * 1024  # sanity ceiling
