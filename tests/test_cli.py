"""The frappe command-line interface, end to end."""

import os

import pytest

from repro.cli import main
from repro.workloads import generate_codebase


@pytest.fixture(scope="module")
def source_tree(tmp_path_factory):
    root = tmp_path_factory.mktemp("src")
    codebase = generate_codebase(subsystems=2, files_per_subsystem=2,
                                 functions_per_file=2, seed=11)
    for path, content in codebase.files.items():
        target = root / path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(content)
    script = root / "build.sh"
    script.write_text(codebase.build_script)
    return root, script


@pytest.fixture(scope="module")
def store(source_tree, tmp_path_factory):
    root, script = source_tree
    out = tmp_path_factory.mktemp("stores") / "kernel"
    code = main(["index", str(root), "--script", str(script),
                 "--out", str(out), "-I", "include"])
    assert code == 0
    return str(out)


class TestIndex:
    def test_store_created(self, store):
        assert os.path.exists(os.path.join(store, "metadata.json"))

    def test_index_output(self, source_tree, tmp_path, capsys):
        root, script = source_tree
        main(["index", str(root), "--script", str(script),
              "--out", str(tmp_path / "s"), "-I", "include"])
        out = capsys.readouterr().out
        assert "indexed" in out and "nodes" in out


class TestSearch:
    def test_search_by_name(self, store, capsys):
        assert main(["search", store, "start_kernel"]) == 0
        out = capsys.readouterr().out
        assert "function" in out

    def test_search_wildcard_with_type(self, store, capsys):
        assert main(["search", store, "scsi_*", "--type",
                     "function"]) == 0
        out = capsys.readouterr().out
        assert "(0 results)" not in out


class TestQuery:
    def test_cypher_query(self, store, capsys):
        assert main(["query", store,
                     "MATCH (n:macro) RETURN n.short_name "
                     "ORDER BY n.short_name LIMIT 3"]) == 0
        out = capsys.readouterr().out
        assert "rows" in out

    def test_bad_query_is_reported(self, store, capsys):
        assert main(["query", store, "MATCH MATCH"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_max_rows_truncates(self, store, capsys):
        assert main(["query", store,
                     "MATCH (n:function) RETURN n.short_name",
                     "--max-rows", "2"]) == 0
        out = capsys.readouterr().out
        assert "(2 rows (truncated)," in out

    def test_json_emits_canonical_payload(self, store, capsys):
        import json
        from repro.cypher.result import (RESULT_SCHEMA_VERSION,
                                         Result)
        assert main(["query", store,
                     "MATCH (n:function) RETURN count(*) AS n",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == RESULT_SCHEMA_VERSION
        result = Result.from_dict(payload)
        assert result.columns == ["n"]
        assert result.value() > 0


class TestExplain:
    def test_explain_plan(self, store, capsys):
        assert main(["explain", store,
                     "MATCH (n:function{short_name: 'start_kernel'}) "
                     "-[:calls*]-> m RETURN m"]) == 0
        out = capsys.readouterr().out
        assert "anchor" in out
        assert "index-seek" in out
        assert "path enumeration" in out


class TestProfile:
    def test_profile_operator_tree(self, store, capsys):
        assert main(["profile", store,
                     "MATCH (n:function{short_name: 'start_kernel'}) "
                     "-[:calls*]-> m RETURN distinct m"]) == 0
        out = capsys.readouterr().out
        assert "Query" in out
        assert "VarLengthExpand" in out
        assert "dbhits=" in out
        assert "db hits" in out
        assert "cache hit ratio" in out
        assert "hottest operator:" in out


class TestRefs:
    def test_find_references(self, store, capsys):
        assert main(["refs", store, "scsi_init_0", "--type",
                     "function"]) == 0
        out = capsys.readouterr().out
        assert "references" in out
        assert "calls" in out


class TestSlice:
    def test_backward_slice(self, store, capsys):
        assert main(["slice", store, "start_kernel"]) == 0
        out = capsys.readouterr().out
        assert "entities" in out

    def test_forward_slice(self, store, capsys):
        assert main(["slice", store, "start_kernel", "--forward"]) == 0
        assert "(0 entities)" in capsys.readouterr().out


class TestCycles:
    def test_call_cycles(self, store, capsys):
        assert main(["cycles", store]) == 0
        out = capsys.readouterr().out
        assert "cycles over calls" in out

    def test_include_cycles(self, store, capsys):
        assert main(["cycles", store, "--edges", "includes"]) == 0
        assert "cycles over includes" in capsys.readouterr().out


class TestMap:
    def test_ascii_map(self, store, capsys):
        assert main(["map", store]) == 0
        out = capsys.readouterr().out
        assert "|" in out

    def test_svg_map_with_highlight(self, store, tmp_path, capsys):
        svg_path = tmp_path / "map.svg"
        assert main(["map", store, "--svg", str(svg_path),
                     "--highlight", "start_kernel"]) == 0
        content = svg_path.read_text()
        assert content.startswith("<svg")
        assert "#e4572e" in content  # highlight color present


class TestStats:
    def test_stats_output(self, store, capsys):
        assert main(["stats", store]) == 0
        out = capsys.readouterr().out
        assert "nodes:" in out
        assert "hubs" in out
        assert "properties" in out


class TestGenerate:
    def test_generate_store(self, tmp_path, capsys):
        out_dir = tmp_path / "synth"
        assert main(["generate", "--scale", "0.002", "--out",
                     str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "generated" in out
        assert main(["stats", str(out_dir)]) == 0


def test_missing_store_reports_error(tmp_path, capsys):
    assert main(["search", str(tmp_path / "nope"), "x"]) == 1
    assert "error:" in capsys.readouterr().err


class TestFsck:
    def test_clean_store_exits_zero(self, store, capsys):
        assert main(["fsck", store]) == 0
        assert "clean" in capsys.readouterr().out

    def test_corrupt_store_exits_one_and_names_file(self, source_tree,
                                                    tmp_path, capsys):
        root, script = source_tree
        out = tmp_path / "damaged"
        main(["index", str(root), "--script", str(script),
              "--out", str(out), "-I", "include"])
        capsys.readouterr()
        from repro.graphdb.storage.faults import flip_byte
        flip_byte(str(out / "nodestore.db"), 40)
        assert main(["fsck", str(out)]) == 1
        printed = capsys.readouterr().out
        assert "corrupt" in printed and "nodestore.db" in printed

    def test_repairable_store_exits_two(self, source_tree, tmp_path,
                                        capsys):
        root, script = source_tree
        out = tmp_path / "dented"
        main(["index", str(root), "--script", str(script),
              "--out", str(out), "-I", "include"])
        capsys.readouterr()
        from repro.graphdb.storage.faults import flip_byte
        flip_byte(str(out / "index.postings.db"), 3)
        assert main(["fsck", str(out)]) == 2
        assert "repairable" in capsys.readouterr().out


class TestKeepGoing:
    def test_keep_going_indexes_through_broken_unit(self, tmp_path,
                                                    capsys):
        root = tmp_path / "src"
        root.mkdir()
        (root / "good.c").write_text("int good(void) { return 1; }\n")
        (root / "bad.c").write_text("int bad( { syntax error\n")
        script = root / "build.sh"
        script.write_text("gcc good.c -c -o good.o\n"
                          "gcc bad.c -c -o bad.o\n")
        out = tmp_path / "partial"
        assert main(["index", str(root), "--script", str(script),
                     "--out", str(out), "--keep-going"]) == 0
        captured = capsys.readouterr()
        assert "1 ok" in captured.out and "1 failed" in captured.out
        assert "bad.c" in captured.err
        assert main(["query", str(out),
                     "MATCH (n:function) RETURN n.short_name"]) == 0
        assert "good" in capsys.readouterr().out

    def test_fail_fast_default_stops_on_broken_unit(self, tmp_path,
                                                    capsys):
        root = tmp_path / "src"
        root.mkdir()
        (root / "bad.c").write_text("int bad( { syntax error\n")
        script = root / "build.sh"
        script.write_text("gcc bad.c -c -o bad.o\n")
        assert main(["index", str(root), "--script", str(script),
                     "--out", str(tmp_path / "s")]) == 1
        assert "error:" in capsys.readouterr().err


class TestServe:
    def test_serve_runs_stdin_queries(self, store, capsys,
                                      monkeypatch):
        import io
        monkeypatch.setattr("sys.stdin", io.StringIO(
            "# a comment line\n"
            "MATCH (n:function) RETURN count(*)\n"
            "\n"
            "MATCH (n:file) RETURN count(*)\n"))
        assert main(["serve", store, "--workers", "2"]) == 0
        captured = capsys.readouterr()
        assert "[0]" in captured.out and "[1]" in captured.out
        assert "2 queries, 0 failed" in captured.err

    def test_serve_reports_bad_query(self, store, capsys,
                                     monkeypatch):
        import io
        monkeypatch.setattr("sys.stdin",
                            io.StringIO("MATCH MATCH\n"))
        assert main(["serve", store]) == 1
        assert "[0] error:" in capsys.readouterr().err

    def test_serve_stdin_json_mode(self, store, capsys, monkeypatch):
        import io
        import json
        from repro.cypher.result import Result
        monkeypatch.setattr("sys.stdin", io.StringIO(
            "MATCH (n:function) RETURN count(*) AS n\n"))
        assert main(["serve", store, "--json"]) == 0
        line = capsys.readouterr().out.strip().splitlines()[-1]
        result = Result.from_dict(json.loads(line))
        assert result.columns == ["n"]

    def test_serve_http_flag_boots_and_answers(self, store):
        # drive the HTTP deployment through the same backend wiring
        # the CLI flag uses (the blocking run() loop itself is
        # exercised by the CI serve-smoke job)
        from repro.client import FrappeClient
        from repro.core.config import StoreConfig
        from repro.core.frappe import Frappe
        from repro.server.http import ExecutorBackend, HttpServer
        frappe = Frappe.open(store, config=StoreConfig())
        backend = ExecutorBackend(frappe, workers=2,
                                  queue_capacity=8)
        with HttpServer(backend) as server:
            with FrappeClient(port=server.port) as client:
                assert client.health()["status"] == "ok"
                assert client.query(
                    "MATCH (n:function) RETURN count(*)").value() > 0


class TestIndexJobs:
    def test_index_with_jobs_matches_serial(self, source_tree,
                                            tmp_path, capsys):
        root, script = source_tree
        assert main(["index", str(root), "--script", str(script),
                     "--out", str(tmp_path / "serial"),
                     "-I", "include"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["index", str(root), "--script", str(script),
                     "--out", str(tmp_path / "fanned"),
                     "-I", "include", "--jobs", "3"]) == 0
        fanned_out = capsys.readouterr().out
        assert fanned_out.splitlines()[0] == serial_out.splitlines()[0]


class TestCompact:
    def test_compact_prints_size_breakdown(self, source_tree, tmp_path,
                                           capsys):
        root, script = source_tree
        out = tmp_path / "compacted"
        main(["index", str(root), "--script", str(script),
              "--out", str(out), "-I", "include"])
        capsys.readouterr()
        assert main(["compact", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "compacted" in printed and "KiB" in printed
        assert "csr" in printed and "dictionary" in printed

    def test_compact_repairs_fsck_repairable_store(self, source_tree,
                                                   tmp_path, capsys):
        root, script = source_tree
        out = tmp_path / "torn"
        main(["index", str(root), "--script", str(script),
              "--out", str(out), "-I", "include"])
        capsys.readouterr()
        from repro.graphdb.storage.faults import flip_byte
        flip_byte(str(out / "csr.db"), 10)
        assert main(["fsck", str(out)]) == 2  # repairable, not corrupt
        assert "csr" in capsys.readouterr().out
        assert main(["compact", str(out)]) == 0
        capsys.readouterr()
        assert main(["fsck", str(out)]) == 0
        capsys.readouterr()
        assert main(["query", str(out),
                     "MATCH (n:function) RETURN count(*)"]) == 0

    def test_compact_shard_root_reports_every_shard(self, store,
                                                    tmp_path, capsys):
        shard_root = tmp_path / "shards"
        assert main(["shard-split", store, "--shards", "2",
                     "--out", str(shard_root), "--by-subtree"]) == 0
        capsys.readouterr()
        assert main(["compact", str(shard_root)]) == 0
        printed = capsys.readouterr().out
        assert printed.count("csr") >= 2  # one line per shard


class TestFsckBreakdown:
    def test_reports_compiled_files_with_sizes(self, store, capsys):
        assert main(["fsck", store]) == 0
        printed = capsys.readouterr().out
        assert "file" in printed and "category" in printed
        assert "records" in printed
        assert "csr.db" in printed and "dictionary.db" in printed
        assert "total" in printed


class TestNoCsrFlag:
    def test_query_answers_match_with_and_without_csr(self, store,
                                                      capsys):
        text = ("MATCH (a:function)-[:calls]->(b:function) "
                "RETURN a.short_name, b.short_name "
                "ORDER BY a.short_name, b.short_name")
        import re

        def normalize(text):
            return re.sub(r"[0-9.]+ ms", "", text)

        assert main(["query", store, text]) == 0
        default = capsys.readouterr().out
        assert main(["query", store, text, "--no-csr"]) == 0
        assert normalize(capsys.readouterr().out) == normalize(default)
