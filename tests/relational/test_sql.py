"""Mini-SQL parsing and execution."""

import pytest

from repro.errors import SqlError
from repro.graphdb import PropertyGraph
from repro.relational import Database, SqlEngine
from repro.relational.engine import load_graph_tables
from repro.relational.sql import parse_sql


@pytest.fixture
def db():
    database = Database()
    database.create_table("nodes", ["id", "type", "name"], [
        (0, "function", "main"), (1, "function", "helper"),
        (2, "function", "util"), (3, "global", "counter")])
    database.create_table("edges", ["src", "dst", "type"], [
        (0, 1, "calls"), (1, 2, "calls"), (0, 3, "writes")])
    return database


@pytest.fixture
def engine(db):
    return SqlEngine(db)


class TestParser:
    def test_simple_select(self):
        statement = parse_sql("SELECT a FROM t")
        core = statement.select.cores[0]
        assert core.source.name == "t"
        assert len(core.items) == 1

    def test_aliases(self):
        statement = parse_sql("SELECT t.a AS x FROM tab t")
        core = statement.select.cores[0]
        assert core.source.alias == "t"
        assert core.items[0].alias == "x"

    def test_join_on(self):
        statement = parse_sql(
            "SELECT * FROM a JOIN b ON a.x = b.y AND a.z > 1")
        assert len(statement.select.cores[0].joins) == 1

    def test_with_recursive(self):
        statement = parse_sql(
            "WITH RECURSIVE r(id) AS (SELECT x FROM t UNION "
            "SELECT y FROM r JOIN t ON t.x = r.id) SELECT id FROM r")
        assert statement.ctes[0].recursive
        assert statement.ctes[0].columns == ("id",)

    def test_group_order_limit(self):
        statement = parse_sql(
            "SELECT type, COUNT(*) FROM t GROUP BY type "
            "ORDER BY type DESC LIMIT 3")
        select = statement.select
        assert select.cores[0].group_by
        assert select.order_by[0].ascending is False
        assert select.limit == 3

    def test_string_literal_escape(self):
        statement = parse_sql("SELECT * FROM t WHERE a = 'it''s'")
        core = statement.select.cores[0]
        assert core.where.right.value == "it's"

    def test_empty_rejected(self):
        with pytest.raises(SqlError):
            parse_sql("  ")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlError):
            parse_sql("SELECT a FROM t garbage garbage")

    def test_bad_character(self):
        with pytest.raises(SqlError):
            parse_sql("SELECT @ FROM t")


class TestExecution:
    def test_projection_and_where(self, engine):
        result = engine.run(
            "SELECT name FROM nodes WHERE type = 'function' ORDER BY name")
        assert result.values() == ["helper", "main", "util"]

    def test_select_star(self, engine):
        result = engine.run("SELECT * FROM nodes n WHERE n.id = 0")
        assert result.columns == ["n.id", "n.type", "n.name"]
        assert result.rows == [(0, "function", "main")]

    def test_hash_join(self, engine):
        result = engine.run(
            "SELECT a.name, b.name FROM nodes a "
            "JOIN edges e ON e.src = a.id "
            "JOIN nodes b ON b.id = e.dst "
            "WHERE e.type = 'calls' ORDER BY a.name")
        assert result.rows == [("helper", "util"), ("main", "helper")]

    def test_join_counts_examined_rows(self, engine):
        engine.run("SELECT * FROM nodes a JOIN edges e ON e.src = a.id")
        assert engine.join_rows_examined > 0

    def test_non_equi_join_nested_loop(self, engine):
        result = engine.run(
            "SELECT a.id, b.id FROM nodes a JOIN nodes b ON a.id < b.id")
        assert len(result) == 6  # C(4,2)

    def test_union_distinct(self, engine):
        result = engine.run(
            "SELECT name FROM nodes WHERE id = 0 UNION "
            "SELECT name FROM nodes WHERE type = 'function'")
        assert sorted(result.values()) == ["helper", "main", "util"]

    def test_union_all(self, engine):
        result = engine.run(
            "SELECT name FROM nodes WHERE id = 0 UNION ALL "
            "SELECT name FROM nodes WHERE id = 0")
        assert result.values() == ["main", "main"]

    def test_aggregates(self, engine):
        result = engine.run(
            "SELECT type, COUNT(*) AS c FROM nodes GROUP BY type "
            "ORDER BY type")
        assert result.rows == [("function", 3), ("global", 1)]

    def test_aggregate_without_group(self, engine):
        assert engine.run("SELECT COUNT(*) FROM edges").value() == 3

    def test_min_max_sum_avg(self, engine):
        result = engine.run(
            "SELECT MIN(id), MAX(id), SUM(id), AVG(id) FROM nodes")
        assert result.rows == [(0, 3, 6, 1.5)]

    def test_count_distinct(self, engine):
        assert engine.run(
            "SELECT COUNT(DISTINCT type) FROM edges").value() == 2

    def test_limit(self, engine):
        result = engine.run("SELECT id FROM nodes ORDER BY id LIMIT 2")
        assert result.values() == [0, 1]

    def test_arithmetic(self, engine):
        result = engine.run("SELECT id + 10 FROM nodes WHERE id = 2")
        assert result.value() == 12

    def test_unknown_column(self, engine):
        with pytest.raises(SqlError):
            engine.run("SELECT ghost FROM nodes")

    def test_unknown_table(self, engine):
        with pytest.raises(SqlError):
            engine.run("SELECT a FROM ghost")

    def test_result_iteration(self, engine):
        result = engine.run("SELECT id FROM nodes WHERE id = 0")
        assert list(result) == [{"id": 0}]


class TestRecursion:
    def test_transitive_closure(self, engine):
        result = engine.run("""
            WITH RECURSIVE reach(id) AS (
                SELECT e.dst FROM edges e WHERE e.src = 0
                    AND e.type = 'calls'
                UNION
                SELECT e.dst FROM reach r JOIN edges e ON e.src = r.id
                    WHERE e.type = 'calls'
            )
            SELECT n.name FROM reach r JOIN nodes n ON n.id = r.id
            ORDER BY n.name""")
        assert result.values() == ["helper", "util"]

    def test_cycle_converges(self):
        db = Database()
        db.create_table("edges", ["src", "dst"], [(0, 1), (1, 0)])
        engine = SqlEngine(db)
        result = engine.run("""
            WITH RECURSIVE reach(id) AS (
                SELECT dst FROM edges WHERE src = 0
                UNION
                SELECT e.dst FROM reach r JOIN edges e ON e.src = r.id
            ) SELECT id FROM reach ORDER BY id""")
        assert result.values() == [0, 1]

    def test_non_recursive_cte(self, engine):
        result = engine.run(
            "WITH funcs AS (SELECT id FROM nodes WHERE type = 'function') "
            "SELECT COUNT(*) FROM funcs")
        assert result.value() == 3

    def test_recursive_without_base_rejected(self, engine):
        with pytest.raises(SqlError):
            engine.run(
                "WITH RECURSIVE r(id) AS ("
                "SELECT e.dst FROM r JOIN edges e ON e.src = r.id) "
                "SELECT id FROM r")


class TestLoadGraphTables:
    def test_roundtrip_from_graph(self):
        g = PropertyGraph()
        a = g.add_node("function", short_name="a", type="function")
        b = g.add_node("function", short_name="b", type="function")
        g.add_edge(a, b, "calls")
        db = Database()
        load_graph_tables(db, g)
        engine = SqlEngine(db)
        assert engine.run("SELECT COUNT(*) FROM nodes").value() == 2
        result = engine.run(
            "SELECT n.short_name FROM edges e "
            "JOIN nodes n ON n.id = e.dst")
        assert result.values() == ["b"]
