"""Relational tables and catalog."""

import pytest

from repro.errors import SqlError
from repro.relational import Database, Table


class TestTable:
    def test_basic_insert_and_iterate(self):
        table = Table("t", ["a", "b"], [(1, 2)])
        table.insert((3, 4))
        assert list(table) == [(1, 2), (3, 4)]
        assert len(table) == 2

    def test_columns_lowercased(self):
        table = Table("T", ["A", "B"])
        assert table.name == "t"
        assert table.columns == ["a", "b"]

    def test_arity_enforced(self):
        table = Table("t", ["a"])
        with pytest.raises(SqlError):
            table.insert((1, 2))

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SqlError):
            Table("t", ["a", "A"])

    def test_no_columns_rejected(self):
        with pytest.raises(SqlError):
            Table("t", [])

    def test_column_index(self):
        table = Table("t", ["a", "b"])
        assert table.column_index("B") == 1
        with pytest.raises(SqlError):
            table.column_index("c")

    def test_insert_many(self):
        table = Table("t", ["a"])
        table.insert_many([(1,), (2,)])
        assert len(table) == 2


class TestDatabase:
    def test_create_and_lookup(self):
        db = Database()
        db.create_table("t", ["a"])
        assert db.table("T").name == "t"
        assert "t" in db
        assert db.table_names() == ["t"]

    def test_duplicate_create_rejected(self):
        db = Database()
        db.create_table("t", ["a"])
        with pytest.raises(SqlError):
            db.create_table("T", ["b"])

    def test_missing_table(self):
        with pytest.raises(SqlError):
            Database().table("ghost")

    def test_drop(self):
        db = Database()
        db.create_table("t", ["a"])
        db.drop_table("t")
        assert not db.has_table("t")
        with pytest.raises(SqlError):
            db.drop_table("t")
