"""Regression tests: obs instruments must survive concurrent use.

Counter increments and SlowQueryLog appends used to be plain
read-modify-writes; two threads hammering them lost updates (the
classic ``+=`` interleaving) and tore the slow-log sequence counter.
These tests fail reliably on the unlocked implementations.
"""

import threading

from repro.obs import MetricsRegistry, SlowQueryLog, Tracer

THREADS = 2
ITERATIONS = 30_000


def _hammer(fn, threads=THREADS):
    workers = [threading.Thread(target=fn) for _ in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()


class TestCounterConcurrency:
    def test_no_lost_increments(self):
        counter = MetricsRegistry().counter("hits")
        _hammer(lambda: [counter.inc() for _ in range(ITERATIONS)])
        assert counter.value == THREADS * ITERATIONS

    def test_gauge_inc_dec_balance(self):
        gauge = MetricsRegistry().gauge("depth")

        def work():
            for _ in range(ITERATIONS):
                gauge.inc()
                gauge.dec()

        _hammer(work)
        assert gauge.value == 0.0

    def test_histogram_counts(self):
        histogram = MetricsRegistry().histogram("lat")
        _hammer(lambda: [histogram.observe(0.002)
                         for _ in range(ITERATIONS // 10)])
        assert histogram.count == THREADS * (ITERATIONS // 10)
        assert histogram.snapshot().buckets[1][1] == histogram.count

    def test_get_or_create_races_to_one_instrument(self):
        registry = MetricsRegistry()
        seen = []

        def work():
            for index in range(200):
                seen.append(registry.counter(f"c{index % 7}"))

        _hammer(work, threads=4)
        names = {id(registry.counter(f"c{i}")) for i in range(7)}
        assert {id(instrument) for instrument in seen} == names


class TestSlowLogConcurrency:
    def test_sequences_unique_and_complete(self):
        log = SlowQueryLog(capacity=4 * ITERATIONS,
                           threshold_seconds=0.0)
        _hammer(lambda: [log.observe("q", 1.0)
                         for _ in range(ITERATIONS // 10)])
        entries = log.entries()
        assert len(entries) == THREADS * (ITERATIONS // 10)
        sequences = [entry.sequence for entry in entries]
        assert len(set(sequences)) == len(sequences)
        assert log.total_observed == len(entries)


class TestTracerConcurrency:
    def test_spans_do_not_cross_threads(self):
        tracer = Tracer()

        def work():
            for _ in range(500):
                with tracer.span("root"):
                    with tracer.span("child"):
                        pass

        _hammer(work)
        roots = tracer.recent()
        # every finished root is a well-formed 1-child tree; no span
        # from one thread nested into another thread's open root
        for root in roots:
            assert root.name == "root"
            assert [child.name for child in root.children] == ["child"]
