"""The operator-level query profiler (PROFILE's engine)."""

from repro.obs import QueryProfiler


class TestOperatorTree:
    def test_operator_get_or_create(self):
        profiler = QueryProfiler()
        first = profiler.operator(None, "k", "Expand", types="calls")
        second = profiler.operator(None, "k", "SomethingElse")
        assert first is second
        assert first.name == "Expand"
        assert profiler.root.children == [first]

    def test_none_args_dropped(self):
        profiler = QueryProfiler()
        operator = profiler.operator(None, "k", "Filter", note=None,
                                     kept=1)
        assert operator.args == {"kept": 1}

    def test_nested_operators(self):
        profiler = QueryProfiler()
        parent = profiler.operator(None, "p", "Match")
        child = profiler.operator(parent, "c", "Expand")
        assert profiler.root.children == [parent]
        assert parent.children == [child]


class TestAccounting:
    def test_hits_charge_open_frame(self):
        profiler = QueryProfiler()
        operator = profiler.operator(None, "k", "Expand")
        with profiler.timed(operator):
            profiler.hit()
            profiler.hit(2)
        assert operator.db_hits == 3

    def test_hits_fall_back_to_root(self):
        profiler = QueryProfiler()
        profiler.hit(5)
        assert profiler.root.db_hits == 5

    def test_self_time_excludes_children(self):
        profiler = QueryProfiler()
        outer = profiler.operator(None, "o", "Match")
        inner = profiler.operator(outer, "i", "Expand")
        with profiler.timed(outer):
            with profiler.timed(inner):
                pass
        assert outer.time_ns >= 0
        assert inner.time_ns >= 0

    def test_iterate_counts_rows(self):
        profiler = QueryProfiler()
        operator = profiler.operator(None, "k", "Scan")
        rows = list(profiler.iterate(operator, iter([1, 2, 3]),
                                     hits_per_row=2))
        assert rows == [1, 2, 3]
        assert operator.rows == 3
        assert operator.db_hits == 6
        assert operator.time_ns > 0

    def test_abandoned_iterator_leaves_no_open_frame(self):
        profiler = QueryProfiler()
        operator = profiler.operator(None, "k", "Scan")
        wrapped = profiler.iterate(operator, iter([1, 2, 3]))
        next(wrapped)
        wrapped.close()
        assert profiler._stack == []
        assert operator.rows == 1


class TestToPlan:
    def test_plan_mirrors_tree(self):
        profiler = QueryProfiler()
        match = profiler.operator(None, "m", "Match", pattern="(a)")
        expand = profiler.operator(match, "e", "Expand")
        with profiler.timed(expand):
            profiler.hit(4)
        expand.rows += 2
        profiler.finish(rows=2, elapsed_seconds=0.5)
        plan = profiler.to_plan()
        assert plan.name == "Query"
        assert plan.rows == 2
        assert plan.time_ms == 500.0
        expand_plan = plan.find_one("Expand")
        assert expand_plan.rows == 2
        assert expand_plan.db_hits == 4
        assert plan.total_db_hits() == 4
        assert plan.profiled


class TestMergeOperatorStats:
    """Folding per-task profiler trees back into the main tree (the
    parallel batch driver's PROFILE merge)."""

    @staticmethod
    def _task_tree(rows, hits):
        profiler = QueryProfiler()
        match = profiler.operator(None, "m", "Match", pattern="(a)")
        match.rows += rows
        expand = profiler.operator(match, ("expand", 0, 1), "Expand",
                                   types="calls")
        expand.rows += rows
        expand.db_hits += hits
        expand.time_ns += 10
        return profiler

    def test_counters_sum_children_match_by_key(self):
        from repro.obs import merge_operator_stats
        main = self._task_tree(rows=3, hits=5)
        task = self._task_tree(rows=2, hits=7)
        merge_operator_stats(main.root, task.root)
        match = main.root.children[0]
        assert len(main.root.children) == 1  # merged, not appended
        assert match.rows == 5
        assert len(match.children) == 1
        expand = match.children[0]
        assert expand.rows == 5
        assert expand.db_hits == 12
        assert expand.time_ns == 20

    def test_merge_order_invariant_totals(self):
        # per-operator totals must not depend on which task merges
        # first — the schedule-independence PROFILE parity relies on
        from repro.obs import merge_operator_stats
        forward = self._task_tree(1, 1)
        for rows, hits in ((2, 3), (4, 5)):
            merge_operator_stats(forward.root,
                                 self._task_tree(rows, hits).root)
        backward = self._task_tree(1, 1)
        for rows, hits in ((4, 5), (2, 3)):
            merge_operator_stats(backward.root,
                                 self._task_tree(rows, hits).root)
        f = forward.root.children[0].children[0]
        b = backward.root.children[0].children[0]
        assert (f.rows, f.db_hits, f.time_ns) == \
            (b.rows, b.db_hits, b.time_ns)

    def test_unseen_children_are_grafted(self):
        from repro.obs import merge_operator_stats
        main = QueryProfiler()
        main.operator(None, "m", "Match")
        task = self._task_tree(rows=2, hits=3)
        merge_operator_stats(main.root, task.root)
        match = main.root.children[0]
        assert [child.name for child in match.children] == ["Expand"]
        assert match.children[0].db_hits == 3

    def test_first_visit_wins_args_and_estimate(self):
        from repro.obs import merge_operator_stats
        main = self._task_tree(1, 1)
        main.root.children[0].estimated_rows = None
        task = self._task_tree(1, 1)
        task.root.children[0].estimated_rows = 9
        merge_operator_stats(main.root, task.root)
        assert main.root.children[0].estimated_rows == 9
        task2 = self._task_tree(1, 1)
        task2.root.children[0].estimated_rows = 77
        merge_operator_stats(main.root, task2.root)
        assert main.root.children[0].estimated_rows == 9
