"""Nestable trace spans."""

import pytest

from repro.obs import Tracer


class TestTracer:
    def test_nesting(self):
        tracer = Tracer()
        with tracer.span("outer", query="q") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None
        (root,) = tracer.recent()
        assert root is outer
        assert root.children == [inner]
        assert root.attributes == {"query": "q"}

    def test_walk_is_preorder(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        (root,) = tracer.recent()
        assert [span.name for span in root.walk()] == ["a", "b", "c"]

    def test_durations(self):
        tracer = Tracer()
        with tracer.span("a") as span:
            assert not span.finished
        assert span.finished
        assert span.duration_seconds >= 0.0

    def test_span_survives_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("a"):
                raise RuntimeError("boom")
        assert tracer.current is None
        assert tracer.recent()[0].finished

    def test_ring_bound(self):
        tracer = Tracer(capacity=2)
        for index in range(4):
            with tracer.span(f"s{index}"):
                pass
        assert [span.name for span in tracer.recent()] == ["s2", "s3"]

    def test_validation(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)
