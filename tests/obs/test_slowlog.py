"""The slow-query ring buffer."""

import pytest

from repro.obs import SlowQueryLog


class TestSlowQueryLog:
    def test_fast_queries_are_not_logged(self):
        log = SlowQueryLog(threshold_seconds=1.0)
        assert log.observe("MATCH (n) RETURN n", 0.1) is False
        assert len(log) == 0

    def test_slow_queries_are_logged(self):
        log = SlowQueryLog(threshold_seconds=0.5)
        assert log.observe("q", 0.5, rows=3) is True
        (entry,) = log.entries()
        assert entry.query == "q"
        assert entry.rows == 3
        assert not entry.timed_out

    def test_timeouts_always_log(self):
        log = SlowQueryLog(threshold_seconds=100.0)
        assert log.observe("q", 0.01, timed_out=True) is True
        assert "TIMEOUT" in str(log.entries()[0])

    def test_ring_evicts_oldest(self):
        log = SlowQueryLog(capacity=2, threshold_seconds=0.0)
        for index in range(4):
            log.observe(f"q{index}", 1.0)
        queries = [entry.query for entry in log.entries()]
        assert queries == ["q2", "q3"]
        assert log.total_observed == 4
        sequences = [entry.sequence for entry in log.entries()]
        assert sequences == [2, 3]

    def test_clear(self):
        log = SlowQueryLog(threshold_seconds=0.0)
        log.observe("q", 1.0)
        log.clear()
        assert len(log) == 0
        assert log.total_observed == 1  # eviction doesn't rewind

    def test_validation(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_seconds=-1.0)
