"""The metrics registry: counters, gauges, histograms, snapshots."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_inc(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_reset(self):
        counter = Counter("c")
        counter.inc(3)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10.0)
        gauge.inc(2.0)
        gauge.dec()
        assert gauge.value == 11.0


class TestHistogram:
    def test_observe_tracks_extremes(self):
        hist = Histogram("h", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(2.0)
        snap = hist.snapshot()
        assert snap.count == 3
        assert snap.min == 0.05
        assert snap.max == 2.0
        assert snap.mean == pytest.approx(2.55 / 3)

    def test_buckets_are_cumulative(self):
        hist = Histogram("h", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(2.0)
        buckets = dict(hist.snapshot().buckets)
        assert buckets[0.1] == 1
        assert buckets[1.0] == 2  # includes the 0.05 observation

    def test_non_ascending_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 0.1))

    def test_empty_mean_is_none(self):
        assert Histogram("h").snapshot().mean is None


class TestRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_name_collision_across_types(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.gauge("resident").set(7.0)
        registry.histogram("lat").observe(0.2)
        snap = registry.snapshot()
        assert snap.counter("hits") == 3
        assert snap.gauge("resident") == 7.0
        assert snap.histogram("lat").count == 1
        assert snap.counter("missing") == 0
        assert "hits" in snap and "nope" not in snap
        assert snap["hits"] == 3
        with pytest.raises(KeyError):
            snap["nope"]

    def test_snapshot_is_frozen_in_time(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        snap = registry.snapshot()
        counter.inc(10)
        assert snap.counter("hits") == 1

    def test_ratio(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.counter("misses").inc(1)
        snap = registry.snapshot()
        assert snap.ratio("hits", "misses") == 0.75
        assert snap.ratio("nohits", "nomisses") == 0.0

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.gauge("g").set(4.0)
        registry.histogram("h").observe(1.0)
        registry.reset()
        snap = registry.snapshot()
        assert snap.counter("hits") == 0
        assert snap.gauge("g") == 0.0
        assert snap.histogram("h").count == 0

    def test_as_dict(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(2)
        registry.histogram("lat").observe(0.5)
        flat = registry.snapshot().as_dict()
        assert flat["hits"] == 2
        assert flat["lat"]["count"] == 1
