"""Vectorized batch execution: RowBatch, mode selection, parity.

The deeper row-vs-batch equivalence coverage lives in
tests/cypher/test_batch_equivalence.py (property-based); this file
pins the batch machinery itself — RowBatch/BatchRow mechanics, the
auto/batch/rows mode choice at engine and per-query level, the
fallback path for clauses without a batch kernel, and the ``batches``
column PROFILE grows under batch execution.
"""

import pytest

from repro.cypher import (CypherEngine, DEFAULT_MORSEL_SIZE, QueryOptions,
                          RowBatch, batch_supported, parse)
from repro.cypher.batch import BatchRow
from repro.graphdb import PropertyGraph


@pytest.fixture
def graph():
    g = PropertyGraph()
    functions = [g.add_node("function", short_name=f"fn{index}",
                            type="function", size=index % 3)
                 for index in range(12)]
    for index, source in enumerate(functions):
        g.add_edge(source, functions[(index + 1) % len(functions)],
                   "calls")
        g.add_edge(source, functions[(index + 5) % len(functions)],
                   "calls")
    g.add_node("file", path="a.c")
    return g


@pytest.fixture
def engine(graph):
    return CypherEngine(graph)


# --------------------------------------------------------------------------
# RowBatch / BatchRow mechanics
# --------------------------------------------------------------------------

class TestRowBatch:
    def test_unit_batch_is_one_empty_row(self):
        unit = RowBatch.unit()
        assert unit.count == 1
        assert dict(unit.row_view(0)) == {}

    def test_row_view_reads_columns(self):
        batch = RowBatch({"a": 0, "b": 1}, [[1, 2], ["x", "y"]], 2)
        view = batch.row_view(1)
        assert view["a"] == 2
        assert view.get("b") == "y"
        assert view.get("missing", "default") == "default"
        assert "a" in view and "missing" not in view
        assert dict(view) == {"a": 2, "b": "y"}
        assert len(view) == 2

    def test_row_view_keyerror(self):
        batch = RowBatch({"a": 0}, [[1]], 1)
        with pytest.raises(KeyError):
            batch.row_view(0)["nope"]

    def test_views_iterates_all_rows(self):
        batch = RowBatch({"a": 0}, [[10, 20, 30]], 3)
        assert [view["a"] for view in batch.views()] == [10, 20, 30]

    def test_row_values_pads_to_width(self):
        batch = RowBatch({"a": 0}, [[7]], 1)
        assert batch.row_values(0) == [7]
        assert batch.row_values(0, width=3) == [7, None, None]

    def test_batch_row_is_a_mapping(self):
        view = RowBatch({"a": 0}, [[1]], 1).row_view(0)
        assert isinstance(view, BatchRow)
        merged = {**view, "b": 2}
        assert merged == {"a": 1, "b": 2}


# --------------------------------------------------------------------------
# batch_supported / mode selection
# --------------------------------------------------------------------------

class TestModeSelection:
    def test_simple_query_is_batch_supported(self):
        assert batch_supported(parse(
            "MATCH (n:function) WHERE n.size > 0 "
            "RETURN n.short_name ORDER BY n.short_name LIMIT 5"))

    @pytest.mark.parametrize("text", [
        "MATCH (a:function) OPTIONAL MATCH (a)-[:calls]->(b) RETURN b",
        "MATCH (a:function), (b:file) RETURN a, b",
        "MATCH p = shortestPath((a:function)-[:calls*]->(b:function)) "
        "RETURN p",
    ])
    def test_unsupported_clauses_fall_back(self, text):
        assert not batch_supported(parse(text))

    def test_auto_mode_routes_tiny_scan_to_rows(self, engine):
        # Cost-based routing: the fixture graph has 12 function nodes,
        # well under the row-mode source threshold, so auto picks the
        # generator pipeline even though every clause has a batch
        # kernel.  Forcing batch still works.
        result = engine.run("MATCH (n:function) RETURN count(n)")
        assert result.stats.execution_mode == "rows"
        forced = engine.run("MATCH (n:function) RETURN count(n)",
                            options=QueryOptions(execution_mode="batch"))
        assert forced.stats.execution_mode == "batch"
        assert forced.rows == result.rows

    def test_auto_mode_picks_batch_for_var_length(self, engine):
        # Var-length traversal is where the vectorized engine wins;
        # auto must keep routing it to batch regardless of source size.
        result = engine.run(
            "MATCH (a:function)-[:calls*]->(b) RETURN count(distinct b)")
        assert result.stats.execution_mode == "batch"

    def test_auto_mode_picks_rows_when_not_supported(self, engine):
        result = engine.run(
            "MATCH (a:function) OPTIONAL MATCH (a)-[:zz]->(b) "
            "RETURN count(b)")
        assert result.stats.execution_mode == "rows"

    def test_engine_level_rows_mode(self, graph):
        engine = CypherEngine(graph, execution_mode="rows")
        result = engine.run("MATCH (n:function) RETURN count(n)")
        assert result.stats.execution_mode == "rows"

    def test_query_options_override_engine_mode(self, graph):
        engine = CypherEngine(graph, execution_mode="rows")
        result = engine.run(
            "MATCH (n:function) RETURN count(n)",
            options=QueryOptions(execution_mode="batch"))
        assert result.stats.execution_mode == "batch"

    def test_forced_batch_runs_fallback_clauses(self, engine):
        # OPTIONAL MATCH has no batch kernel; forcing batch mode must
        # still produce row-mode results via the fallback path
        text = ("MATCH (a:function) OPTIONAL MATCH (a)-[:calls]->(b) "
                "RETURN a.short_name, b.short_name "
                "ORDER BY a.short_name, b.short_name")
        forced = engine.run(text,
                            options=QueryOptions(execution_mode="batch"))
        rows = engine.run(text,
                          options=QueryOptions(execution_mode="rows"))
        assert forced.stats.execution_mode == "batch"
        assert forced.rows == rows.rows

    def test_invalid_engine_mode_rejected(self, graph):
        with pytest.raises(ValueError):
            CypherEngine(graph, execution_mode="columnar")

    def test_invalid_option_mode_rejected(self):
        with pytest.raises(ValueError):
            QueryOptions(execution_mode="columnar")
        with pytest.raises(ValueError):
            QueryOptions(morsel_size=0)


# --------------------------------------------------------------------------
# Cost-based auto routing (prefer_rows)
# --------------------------------------------------------------------------

class TestAutoRouting:
    """Pins the auto-mode cost decision from ISSUE 8 satellite 1:
    short pipelines (the Table 5 debugging shape, 0.90x under batch)
    route to rows; wide scans and traversals keep the batch engine."""

    @pytest.fixture
    def wide_graph(self):
        g = PropertyGraph()
        nodes = [g.add_node("function", short_name=f"fn{i}",
                            type="function") for i in range(200)]
        for index, source in enumerate(nodes):
            g.add_edge(source, nodes[(index + 1) % len(nodes)], "calls")
        return g

    def test_debugging_shape_routes_to_rows(self, engine):
        # START seeds from index points with a cartesian product of a
        # couple of rows — the per-morsel setup never amortizes.
        result = engine.run(
            "START a=node:node_auto_index('short_name: fn1'), "
            "b=node:node_auto_index('short_name: fn2') "
            "MATCH a -[r:calls]-> c RETURN b, c")
        assert result.stats.execution_mode == "rows"

    def test_wide_scan_routes_to_batch(self, wide_graph):
        engine = CypherEngine(wide_graph)
        result = engine.run(
            "MATCH (n:function) WHERE n.short_name <> 'fn0' "
            "RETURN count(n)")
        assert result.stats.execution_mode == "batch"

    def test_prefer_rows_unit(self, graph, wide_graph):
        from repro.cypher.planner import prefer_rows
        from repro.graphdb.snapshot import pin_view
        tiny, wide = pin_view(graph), pin_view(wide_graph)
        assert prefer_rows(parse("MATCH (n:function) RETURN n"), tiny)
        assert not prefer_rows(parse("MATCH (n:function) RETURN n"),
                               wide)
        # var-length always goes to batch, even on a tiny source
        assert not prefer_rows(
            parse("MATCH (a:function)-[:calls*]->(b) RETURN b"), tiny)
        # explicit node ids: product under/over the threshold
        assert prefer_rows(parse("START n=node(1, 2, 3) RETURN n"),
                           tiny)
        assert not prefer_rows(
            parse("START a=node(%s), b=node(%s) RETURN a, b"
                  % (", ".join(map(str, range(9))),
                     ", ".join(map(str, range(9))))), tiny)

    def test_route_decision_is_memoized_per_epoch(self, engine):
        text = "MATCH (n:function) RETURN count(n)"
        first = engine.run(text)
        second = engine.run(text)
        assert first.stats.execution_mode == "rows"
        assert second.stats.execution_mode == "rows"


# --------------------------------------------------------------------------
# Morsel sizing
# --------------------------------------------------------------------------

class TestMorselSize:
    def test_default_morsel_size(self, engine):
        assert engine.morsel_size == DEFAULT_MORSEL_SIZE

    def test_results_independent_of_morsel_size(self, engine):
        text = ("MATCH (a:function)-[:calls]->(b:function) "
                "RETURN a.short_name, b.short_name "
                "ORDER BY a.short_name, b.short_name")
        baseline = engine.run(
            text, options=QueryOptions(execution_mode="rows"))
        for morsel_size in (1, 2, 7, 4096):
            result = engine.run(text, options=QueryOptions(
                execution_mode="batch", morsel_size=morsel_size))
            assert result.rows == baseline.rows, morsel_size

    def test_morsel_size_bounds_batch_count(self, engine):
        result = engine.run(
            "PROFILE MATCH (n:function) RETURN n.short_name",
            options=QueryOptions(execution_mode="batch",
                                 morsel_size=4))
        match = result.profile.find_one("Match")
        # 12 function nodes in morsels of 4 -> exactly 3 batches
        assert match.batches == 3
        assert match.rows == 12


# --------------------------------------------------------------------------
# PROFILE integration
# --------------------------------------------------------------------------

class TestBatchProfile:
    def test_batches_column_present_in_batch_mode(self, engine):
        result = engine.run(
            "PROFILE MATCH (n:function) WHERE n.size > 0 "
            "RETURN n.short_name",
            options=QueryOptions(execution_mode="batch"))
        assert result.stats.execution_mode == "batch"
        assert "batches=" in result.profile.pretty()

    def test_batches_column_absent_in_row_mode(self, engine):
        result = engine.run(
            "PROFILE MATCH (n:function) RETURN n.short_name",
            options=QueryOptions(execution_mode="rows"))
        assert "batches=" not in result.profile.pretty()

    def test_db_hit_parity_with_row_mode(self, engine):
        text = ("PROFILE MATCH (a:function)-[:calls]->(b:function) "
                "WHERE b.size = 1 RETURN a.short_name, count(b)")
        batch = engine.run(text,
                           options=QueryOptions(execution_mode="batch"))
        rows = engine.run(text,
                          options=QueryOptions(execution_mode="rows"))
        assert batch.rows == rows.rows
        assert batch.profile.total_db_hits() == \
            rows.profile.total_db_hits()
        assert batch.stats.db_hits == batch.profile.total_db_hits()

    def test_operator_tree_shape_matches_row_mode(self, engine):
        text = ("PROFILE MATCH (a:function)-[:calls]->(b) "
                "RETURN DISTINCT a.short_name ORDER BY a.short_name "
                "SKIP 1 LIMIT 3")
        batch = engine.run(text,
                           options=QueryOptions(execution_mode="batch"))
        rows = engine.run(text,
                          options=QueryOptions(execution_mode="rows"))
        assert batch.rows == rows.rows
        assert [op.name for op in batch.profile.operators()] == \
            [op.name for op in rows.profile.operators()]
        # ORDER BY + LIMIT runs as a bounded top-K heap in batch mode:
        # Sort/Skip report only the skip+limit rows actually retained,
        # while row mode sorts (and then skips through) everything
        assert batch.profile.find_one("Sort").rows == 4
        assert rows.profile.find_one("Sort").rows == 12

    def test_operator_rows_match_without_limit(self, engine):
        text = ("PROFILE MATCH (a:function)-[:calls]->(b) "
                "RETURN DISTINCT a.short_name ORDER BY a.short_name "
                "SKIP 1")
        batch = engine.run(text,
                           options=QueryOptions(execution_mode="batch"))
        rows = engine.run(text,
                          options=QueryOptions(execution_mode="rows"))
        assert batch.rows == rows.rows
        assert [(op.name, op.rows)
                for op in batch.profile.operators()] == \
            [(op.name, op.rows) for op in rows.profile.operators()]
