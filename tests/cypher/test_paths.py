"""Path variables and shortestPath()/allShortestPaths().

The paper's Section 4.4: "Beyond transitive closures, shortest path
queries are also useful in understanding how the parts of a codebase
fit together."
"""

import pytest

from repro.cypher import CypherEngine, PathValue
from repro.errors import CypherSemanticError, CypherSyntaxError
from repro.graphdb import PropertyGraph


@pytest.fixture
def graph():
    r"""0->1->2->3 (long), 0->4->3 (short), 3->5, isolated 6."""
    g = PropertyGraph()
    for index in range(7):
        g.add_node("function", short_name=f"f{index}", type="function")
    for source, target in ((0, 1), (1, 2), (2, 3), (0, 4), (4, 3),
                           (3, 5)):
        g.add_edge(source, target, "calls", use_start_line=source + 1)
    return g


@pytest.fixture
def engine(graph):
    return CypherEngine(graph)


class TestPathVariables:
    def test_fixed_length_path(self, engine):
        result = engine.run(
            "MATCH p = (a{short_name:'f0'}) -[:calls]-> b "
            "RETURN p ORDER BY p")
        paths = result.values()
        assert all(isinstance(path, PathValue) for path in paths)
        assert [[n.id for n in path.nodes] for path in paths] == \
            [[0, 1], [0, 4]]

    def test_var_length_path_includes_intermediates(self, engine):
        result = engine.run(
            "MATCH p = (a{short_name:'f1'}) -[:calls*]-> "
            "(b{short_name:'f5'}) RETURN nodes(p)")
        assert [[n.id for n in row[0]] for row in result.rows] == \
            [[1, 2, 3, 5]]

    def test_length_function(self, engine):
        result = engine.run(
            "MATCH p = (a{short_name:'f0'}) -[:calls*]-> "
            "(b{short_name:'f3'}) RETURN length(p) ORDER BY length(p)")
        assert result.values() == [2, 3]

    def test_relationships_function(self, engine, graph):
        result = engine.run(
            "MATCH p = (a{short_name:'f0'}) -[:calls]-> "
            "(b{short_name:'f1'}) RETURN relationships(p)")
        edges = result.value()
        assert len(edges) == 1
        assert graph.edge_target(edges[0].id) == 1

    def test_start_end_node_functions(self, engine):
        result = engine.run(
            "MATCH p = (a{short_name:'f1'}) -[:calls]-> b "
            "RETURN startNode(p), endNode(p)")
        row = result.single()
        assert row["startnode(p)"].id == 1
        assert row["endnode(p)"].id == 2

    def test_reversed_anchor_keeps_pattern_order(self, engine):
        # anchor resolves at the right end; the path must still read
        # left to right
        result = engine.run(
            "MATCH p = a -[:calls*]-> (b{short_name:'f5'}) "
            "WHERE a.short_name = 'f2' RETURN nodes(p)")
        assert [[n.id for n in row[0]] for row in result.rows] == \
            [[2, 3, 5]]


class TestShortestPath:
    def test_single_shortest(self, engine):
        result = engine.run(
            "MATCH p = shortestPath((a{short_name:'f0'}) -[:calls*]-> "
            "(b{short_name:'f3'})) RETURN length(p), nodes(p)")
        row = result.single()
        assert row["length(p)"] == 2
        assert [n.id for n in row["nodes(p)"]] == [0, 4, 3]

    def test_all_shortest(self, engine, graph):
        graph.add_edge(0, 6, "calls")
        graph.add_edge(6, 3, "calls")  # second 2-hop route
        result = engine.run(
            "MATCH p = allShortestPaths((a{short_name:'f0'}) "
            "-[:calls*]-> (b{short_name:'f3'})) RETURN p ORDER BY p")
        assert len(result) == 2
        assert all(len(row[0]) == 2 for row in result.rows)

    def test_no_path_no_rows(self, engine):
        result = engine.run(
            "MATCH p = shortestPath((a{short_name:'f5'}) -[:calls*]-> "
            "(b{short_name:'f0'})) RETURN p")
        assert len(result) == 0

    def test_direction_respected(self, engine):
        result = engine.run(
            "MATCH p = shortestPath((a{short_name:'f3'}) <-[:calls*]- "
            "(b{short_name:'f0'})) RETURN length(p)")
        assert result.value() == 2

    def test_rel_variable_bound(self, engine):
        result = engine.run(
            "MATCH p = shortestPath((a{short_name:'f0'}) "
            "-[r:calls*]-> (b{short_name:'f3'})) RETURN size(r)")
        assert result.value() == 2

    def test_max_hops_excludes(self, engine):
        result = engine.run(
            "MATCH p = shortestPath((a{short_name:'f0'}) "
            "-[:calls*..1]-> (b{short_name:'f3'})) RETURN p")
        assert len(result) == 0

    def test_edge_property_filter(self, engine):
        # only edges with use_start_line = 1 usable: kills both routes
        result = engine.run(
            "MATCH p = shortestPath((a{short_name:'f0'}) "
            "-[:calls*{use_start_line: 99}]-> (b{short_name:'f3'})) "
            "RETURN p")
        assert len(result) == 0

    def test_requires_var_length(self, engine):
        with pytest.raises(CypherSyntaxError):
            engine.run(
                "MATCH p = shortestPath((a) -[:calls]-> (b)) RETURN p")

    def test_multi_hop_pattern_rejected(self, engine):
        with pytest.raises(CypherSemanticError):
            engine.run(
                "MATCH p = shortestPath((a) -[:calls*]-> (b) "
                "-[:calls*]-> (c)) RETURN p")

    def test_works_on_kernel_use_case(self, engine):
        """The Section 4.4 story: entry point to function of interest."""
        result = engine.run(
            "MATCH p = shortestPath((entry{short_name:'f0'}) "
            "-[:calls*]-> (target{short_name:'f5'})) "
            "RETURN length(p), nodes(p)")
        row = result.single()
        assert row["length(p)"] == 3  # 0 -> 4 -> 3 -> 5


class TestPathsInProjection:
    def test_distinct_on_paths(self, engine):
        result = engine.run(
            "MATCH p = (a{short_name:'f0'}) -[:calls]-> b "
            "RETURN distinct p")
        assert len(result) == 2

    def test_order_by_path_length_proxy(self, engine):
        result = engine.run(
            "MATCH p = (a{short_name:'f0'}) -[:calls*]-> "
            "(b{short_name:'f3'}) RETURN p ORDER BY p")
        lengths = [len(row[0]) for row in result.rows]
        assert lengths == sorted(lengths)

    def test_collect_paths(self, engine):
        result = engine.run(
            "MATCH p = (a{short_name:'f0'}) -[:calls]-> b "
            "RETURN count(p)")
        assert result.value() == 2
