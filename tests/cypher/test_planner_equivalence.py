"""Property-based equivalence of the planner's three gates.

Whatever the cost-based planner, the WHERE pushdown, or the var-length
reachability rewrite decide, the row *sets* a query produces must be
identical to the legacy heuristic path — the planner is allowed to be
faster, never different. Graph strategies are shared with
``tests.test_property_based``.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cypher import CypherEngine
from tests.test_property_based import dags, graphs

#: MATCH shapes for cost-based vs heuristic planning (no var-length,
#: so they run fast under enumeration on cyclic random graphs)
PLANNER_QUERIES = (
    "MATCH (n:function) RETURN id(n)",
    "MATCH (n) -[:calls]-> (m) RETURN id(n), id(m)",
    "MATCH (n:function) -[:calls]-> (m) <-[:reads]- (k) "
    "RETURN id(n), id(m), id(k)",
    "MATCH (n) -[:calls|reads]- (m) RETURN id(n), id(m)",
    "MATCH (n) WHERE n.short_name = 'f1' RETURN id(n)",
)

#: var-length shapes for rewrite-on vs rewrite-off; hop bounds keep
#: enumeration tractable on cyclic graphs
REWRITE_QUERIES = (
    "MATCH (n) -[:calls*0..2]-> (m) RETURN distinct id(n), id(m)",
    "MATCH (n) -[:calls*1..2]- (m) RETURN distinct id(m)",
    "MATCH (n), (m) WHERE n -[:calls*1..2]-> m "
    "RETURN id(n), id(m)",
    "MATCH (n) -[:calls*1..2]-> (m) RETURN id(n), id(m)",
)


def rows_of(graph, query, **engine_kwargs):
    engine = CypherEngine(graph, **engine_kwargs)
    return sorted(engine.run(query).rows)


class TestCostBasedMatchesHeuristic:
    @settings(max_examples=20, deadline=None)
    @given(graph=graphs(), query=st.sampled_from(PLANNER_QUERIES))
    def test_same_rows(self, graph, query):
        assert rows_of(graph, query, use_cost_based_planner=True) == \
            rows_of(graph, query, use_cost_based_planner=False)


class TestRewriteMatchesEnumeration:
    @settings(max_examples=20, deadline=None)
    @given(graph=graphs(), query=st.sampled_from(REWRITE_QUERIES))
    def test_same_rows_bounded(self, graph, query):
        assert rows_of(graph, query, use_reachability_rewrite=True) == \
            rows_of(graph, query, use_reachability_rewrite=False)

    @settings(max_examples=25, deadline=None)
    @given(graph=dags())
    def test_unbounded_closure_on_dags(self, graph):
        query = ("MATCH (n{short_name: 'f0'}) -[:calls*]-> (m) "
                 "RETURN distinct id(m)")
        assert rows_of(graph, query, use_reachability_rewrite=True) == \
            rows_of(graph, query, use_reachability_rewrite=False)

    @settings(max_examples=15, deadline=None)
    @given(graph=dags())
    def test_closure_through_with_clause(self, graph):
        query = ("MATCH (n{short_name: 'f0'}) -[:calls*]-> (m) "
                 "WITH distinct m RETURN id(m)")
        assert rows_of(graph, query, use_reachability_rewrite=True) == \
            rows_of(graph, query, use_reachability_rewrite=False)


class TestAllGatesTogether:
    @settings(max_examples=15, deadline=None)
    @given(graph=dags())
    def test_full_planner_vs_fully_legacy(self, graph):
        query = ("MATCH (n{short_name: 'f0'}) -[:calls*]-> (m) "
                 "WHERE m.short_name = 'f1' RETURN distinct id(m)")
        planned = rows_of(graph, query)
        legacy = rows_of(graph, query, use_cost_based_planner=False,
                         use_reachability_rewrite=False,
                         use_index_seek=False)
        assert planned == legacy
