"""End-to-end Cypher execution: matching, projection, aggregation."""

import pytest

from repro.cypher import CypherEngine, NodeRef
from repro.errors import (CypherSemanticError, QueryError,
                          QueryTimeoutError)
from repro.graphdb import PropertyGraph


@pytest.fixture
def graph():
    r"""A small call graph with files.

    f1 contains main, helper; f2 contains util, helper2.
    main calls helper (line 5) and util (line 9); helper calls util;
    util calls helper2. main writes global counter.
    """
    g = PropertyGraph()
    f1 = g.add_node("file", short_name="main.c", type="file")
    f2 = g.add_node("file", short_name="util.c", type="file")
    main = g.add_node("function", "symbol", short_name="main",
                      type="function")
    helper = g.add_node("function", "symbol", short_name="helper",
                        type="function")
    util = g.add_node("function", "symbol", short_name="util",
                      type="function")
    helper2 = g.add_node("function", "symbol", short_name="helper2",
                         type="function")
    counter = g.add_node("global", "symbol", short_name="counter",
                         type="global")
    g.add_edge(f1, main, "file_contains")
    g.add_edge(f1, helper, "file_contains")
    g.add_edge(f2, util, "file_contains")
    g.add_edge(f2, helper2, "file_contains")
    g.add_edge(main, helper, "calls", use_start_line=5)
    g.add_edge(main, util, "calls", use_start_line=9)
    g.add_edge(helper, util, "calls", use_start_line=2)
    g.add_edge(util, helper2, "calls", use_start_line=1)
    g.add_edge(main, counter, "writes", use_start_line=7)
    return g


@pytest.fixture
def engine(graph):
    return CypherEngine(graph)


def names(result, column=0):
    return sorted(row[column] for row in result.rows)


class TestStart:
    def test_index_start(self, engine):
        result = engine.run(
            "START n=node:node_auto_index('short_name: main') "
            "RETURN n.short_name")
        assert result.rows == [("main",)]

    def test_start_by_id(self, engine):
        result = engine.run("START n=node(2) RETURN n.short_name")
        assert result.rows == [("main",)]

    def test_start_all(self, engine, graph):
        result = engine.run("START n=node(*) RETURN count(*)")
        assert result.value() == graph.node_count()

    def test_start_missing_id(self, engine):
        with pytest.raises(QueryError):
            engine.run("START n=node(999) RETURN n")

    def test_cartesian_start_points(self, engine):
        result = engine.run(
            "START a=node:node_auto_index('type: file'), "
            "b=node:node_auto_index('type: global') RETURN a, b")
        assert len(result) == 2  # 2 files x 1 global


class TestMatch:
    def test_label_scan(self, engine):
        result = engine.run("MATCH (n:function) RETURN n.short_name")
        assert names(result) == ["helper", "helper2", "main", "util"]

    def test_property_map_filter(self, engine):
        result = engine.run(
            "MATCH (n:function{short_name: 'util'}) RETURN id(n)")
        assert result.value() == 4

    def test_expand_out(self, engine):
        result = engine.run(
            "MATCH (f:file{short_name: 'main.c'}) -[:file_contains]-> n "
            "RETURN n.short_name")
        assert names(result) == ["helper", "main"]

    def test_expand_in(self, engine):
        result = engine.run(
            "MATCH (n:function{short_name: 'util'}) <-[:calls]- m "
            "RETURN m.short_name")
        assert names(result) == ["helper", "main"]

    def test_undirected_expand(self, engine):
        result = engine.run(
            "MATCH (n{short_name: 'util'}) -[:calls]- m "
            "RETURN m.short_name")
        assert names(result) == ["helper", "helper2", "main"]

    def test_edge_property_filter(self, engine):
        result = engine.run(
            "MATCH m -[:calls{use_start_line: 9}]-> n "
            "RETURN m.short_name, n.short_name")
        assert result.rows == [("main", "util")]

    def test_relationship_variable(self, engine):
        result = engine.run(
            "MATCH (m{short_name:'main'}) -[r:calls]-> n "
            "RETURN n.short_name, r.use_start_line ORDER BY "
            "r.use_start_line")
        assert result.rows == [("helper", 5), ("util", 9)]

    def test_chain_pattern(self, engine):
        result = engine.run(
            "MATCH (f:file) -[:file_contains]-> m -[:calls]-> "
            "(n{short_name: 'util'}) RETURN f.short_name, m.short_name")
        assert sorted(result.rows) == [("main.c", "helper"),
                                       ("main.c", "main")]

    def test_var_length_closure(self, engine):
        result = engine.run(
            "MATCH (n{short_name: 'main'}) -[:calls*]-> m "
            "RETURN distinct m.short_name")
        assert names(result) == ["helper", "helper2", "util"]

    def test_var_length_bounded(self, engine):
        result = engine.run(
            "MATCH (n{short_name: 'main'}) -[:calls*1..1]-> m "
            "RETURN distinct m.short_name")
        assert names(result) == ["helper", "util"]

    def test_var_length_zero_includes_start(self, engine):
        result = engine.run(
            "MATCH (n{short_name: 'main'}) -[:calls*0..1]-> m "
            "RETURN distinct m.short_name")
        assert names(result) == ["helper", "main", "util"]

    def test_var_length_enumerates_paths(self, engine):
        # main->util directly and via helper: two rows before distinct
        result = engine.run(
            "MATCH (n{short_name: 'main'}) -[:calls*]-> "
            "(m{short_name: 'util'}) RETURN m.short_name")
        assert len(result) == 2

    def test_multi_type_relationship(self, engine):
        result = engine.run(
            "MATCH (n{short_name: 'main'}) -[:calls|writes]-> m "
            "RETURN m.short_name")
        assert names(result) == ["counter", "helper", "util"]

    def test_comma_patterns_join_on_variable(self, engine):
        result = engine.run(
            "MATCH (f:file) -[:file_contains]-> m, m -[:writes]-> g "
            "RETURN f.short_name, g.short_name")
        assert result.rows == [("main.c", "counter")]

    def test_anonymous_endpoints(self, engine):
        result = engine.run(
            "MATCH () -[:writes]-> (g) RETURN g.short_name")
        assert result.rows == [("counter",)]

    def test_optional_match_pads_with_null(self, engine):
        result = engine.run(
            "MATCH (n:function) OPTIONAL MATCH n -[:writes]-> g "
            "RETURN n.short_name, g.short_name ORDER BY n.short_name")
        assert result.rows == [("helper", None), ("helper2", None),
                               ("main", "counter"), ("util", None)]

    def test_edge_uniqueness_within_match(self, engine):
        # a -[:calls]-> b <-[:calls]- c cannot bind the same edge twice,
        # so b=util gives (main, helper) and (helper, main) only.
        result = engine.run(
            "MATCH a -[:calls]-> (b{short_name:'util'}) <-[:calls]- c "
            "RETURN a.short_name, c.short_name")
        assert sorted(result.rows) == [("helper", "main"),
                                       ("main", "helper")]

    def test_no_match_empty(self, engine):
        result = engine.run(
            "MATCH (n{short_name: 'ghost'}) RETURN n")
        assert len(result) == 0


class TestWhere:
    def test_property_comparison(self, engine):
        result = engine.run(
            "MATCH m -[r:calls]-> n WHERE r.use_start_line > 4 "
            "RETURN n.short_name")
        assert names(result) == ["helper", "util"]

    def test_pattern_predicate(self, engine):
        result = engine.run(
            "MATCH (n:function) WHERE n -[:writes]-> () "
            "RETURN n.short_name")
        assert result.rows == [("main",)]

    def test_negated_pattern_predicate(self, engine):
        result = engine.run(
            "MATCH (n:function) WHERE NOT n -[:calls]-> () "
            "RETURN n.short_name")
        assert result.rows == [("helper2",)]

    def test_var_length_pattern_predicate(self, engine):
        result = engine.run(
            "MATCH (n:function) "
            "WHERE n -[:calls*]-> ({short_name: 'helper2'}) "
            "RETURN n.short_name")
        assert names(result) == ["helper", "main", "util"]

    def test_null_predicate_drops_row(self, engine):
        result = engine.run(
            "MATCH (n:function) WHERE n.missing > 1 RETURN n")
        assert len(result) == 0


class TestProjection:
    def test_distinct(self, engine):
        result = engine.run("MATCH (f:file) -[:file_contains]-> () "
                            "RETURN distinct f.short_name")
        assert names(result) == ["main.c", "util.c"]

    def test_aliases_and_columns(self, engine):
        result = engine.run("MATCH (n:global) RETURN n.short_name AS name")
        assert result.columns == ["name"]
        assert result.value("name") == "counter"

    def test_default_column_names(self, engine):
        result = engine.run("MATCH (n:global) RETURN n, n.short_name")
        assert result.columns == ["n", "n.short_name"]

    def test_return_star(self, engine):
        result = engine.run(
            "MATCH (n{short_name:'counter'}) <-[:writes]- m RETURN *")
        assert result.columns == ["m", "n"]

    def test_order_by_desc(self, engine):
        result = engine.run("MATCH (n:function) RETURN n.short_name "
                            "ORDER BY n.short_name DESC")
        assert result.values() == ["util", "main", "helper2", "helper"]

    def test_order_nulls_last(self, engine):
        result = engine.run(
            "MATCH (n:symbol) RETURN n.short_name, n.missing "
            "ORDER BY n.missing, n.short_name")
        assert result.values(0)[0] == "counter"

    def test_skip_limit(self, engine):
        result = engine.run("MATCH (n:function) RETURN n.short_name "
                            "ORDER BY n.short_name SKIP 1 LIMIT 2")
        assert result.values() == ["helper2", "main"]

    def test_with_pipeline(self, engine):
        result = engine.run(
            "MATCH (f:file) -[:file_contains]-> m "
            "WITH distinct f "
            "MATCH f -[:file_contains]-> (n{short_name: 'util'}) "
            "RETURN f.short_name")
        assert result.rows == [("util.c",)]

    def test_with_where(self, engine):
        result = engine.run(
            "MATCH m -[r:calls]-> n WITH n, r.use_start_line AS line "
            "WHERE line < 3 RETURN n.short_name ORDER BY n.short_name")
        assert result.values() == ["helper2", "util"]

    def test_query_ending_in_with(self, engine):
        result = engine.run("MATCH (n:global) WITH n.short_name AS name")
        assert result.columns == ["name"]
        assert result.rows == [("counter",)]


class TestAggregation:
    def test_count_star(self, engine):
        assert engine.run("MATCH (n:function) RETURN count(*)").value() == 4

    def test_count_expression_skips_null(self, engine):
        result = engine.run("MATCH (n:symbol) RETURN count(n.type)")
        assert result.value() == 5

    def test_grouping(self, engine):
        result = engine.run(
            "MATCH (f:file) -[:file_contains]-> n "
            "RETURN f.short_name, count(*) ORDER BY f.short_name")
        assert result.rows == [("main.c", 2), ("util.c", 2)]

    def test_collect(self, engine):
        result = engine.run(
            "MATCH (f:file{short_name:'main.c'}) -[:file_contains]-> n "
            "RETURN collect(n.short_name)")
        assert sorted(result.value()) == ["helper", "main"]

    def test_min_max_sum_avg(self, engine):
        result = engine.run(
            "MATCH () -[r:calls]-> () "
            "RETURN min(r.use_start_line), max(r.use_start_line), "
            "sum(r.use_start_line), avg(r.use_start_line)")
        assert result.rows == [(1, 9, 17, 17 / 4)]

    def test_count_distinct(self, engine):
        result = engine.run(
            "MATCH (f:file) -[:file_contains]-> () "
            "RETURN count(distinct f)")
        assert result.value() == 2

    def test_aggregate_on_empty_input(self, engine):
        result = engine.run("MATCH (n:nonexistent) RETURN count(*)")
        assert result.value() == 0

    def test_aggregate_in_arithmetic(self, engine):
        result = engine.run("MATCH (n:function) RETURN count(*) + 1")
        assert result.value() == 5


class TestTimeout:
    def test_timeout_enforced(self, graph):
        # build a dense graph where path enumeration explodes
        g = PropertyGraph()
        nodes = [g.add_node(short_name=f"n{index}") for index in range(14)]
        for a in nodes:
            for b in nodes:
                if a != b:
                    g.add_edge(a, b, "calls")
        engine = CypherEngine(g)
        with pytest.raises(QueryTimeoutError):
            engine.run("MATCH (n{short_name: 'n0'}) -[:calls*]-> m "
                       "RETURN count(*)", timeout=0.05)

    def test_default_timeout(self, graph):
        engine = CypherEngine(graph, default_timeout=30.0)
        result = engine.run("MATCH n RETURN count(*)")
        assert result.value() == graph.node_count()


class TestResultApi:
    def test_iteration_as_dicts(self, engine):
        result = engine.run("MATCH (n:global) RETURN n.short_name AS name")
        assert list(result) == [{"name": "counter"}]

    def test_single(self, engine):
        row = engine.run("MATCH (n:global) RETURN n").single()
        assert isinstance(row["n"], NodeRef)

    def test_single_raises_on_many(self, engine):
        with pytest.raises(QueryError):
            engine.run("MATCH (n:function) RETURN n").single()

    def test_value_on_empty(self, engine):
        with pytest.raises(QueryError):
            engine.run("MATCH (n:none) RETURN n").value()

    def test_stats_populated(self, engine):
        result = engine.run("MATCH (n:function) RETURN n")
        assert result.stats.rows_produced == 4
        assert result.stats.elapsed_seconds >= 0

    def test_plan_cache(self, engine):
        engine.run("MATCH n RETURN count(*)")
        assert "MATCH n RETURN count(*)" in engine._plan_cache
        engine.clear_cache()
        assert not engine._plan_cache


class TestSemanticErrors:
    def test_unknown_index(self, engine):
        with pytest.raises(CypherSemanticError):
            engine.run("START n=node:other_index('a: b') RETURN n")

    def test_limit_must_be_integer(self, engine):
        with pytest.raises(CypherSemanticError):
            engine.run("MATCH n RETURN n LIMIT 'five'")
