"""The canonical ResultPayload: Result.to_dict / from_dict and the
QueryOptions wire form every JSON surface shares."""

import json

import pytest

from repro.core.frappe import Frappe
from repro.cypher import QueryOptions
from repro.cypher.result import (RESULT_SCHEMA_VERSION, EdgeRef,
                                 NodeRef, PathValue, QueryStats,
                                 Result, decode_value, encode_value)
from repro.errors import QueryError
from repro.graphdb import PropertyGraph


@pytest.fixture()
def frappe():
    graph = PropertyGraph()
    ids = [graph.add_node("function", short_name=name,
                          type="function")
           for name in ("alpha", "beta", "gamma")]
    graph.add_edge(ids[0], ids[1], "calls")
    graph.add_edge(ids[1], ids[2], "calls")
    with Frappe(graph) as instance:
        yield instance


class TestValueEncoding:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "name"):
            assert encode_value(value) == value
            assert decode_value(encode_value(value)) == value

    def test_node_and_edge_refs_tagged(self):
        assert encode_value(NodeRef(7)) == {"@node": 7}
        assert encode_value(EdgeRef(9)) == {"@rel": 9}
        assert decode_value({"@node": 7}) == NodeRef(7)
        assert decode_value({"@rel": 9}) == EdgeRef(9)

    def test_path_roundtrip(self):
        path = PathValue(nodes=(NodeRef(1), NodeRef(2)),
                         edges=(EdgeRef(5),))
        assert decode_value(encode_value(path)) == path

    def test_nested_collections(self):
        value = [{"node": NodeRef(1)}, [EdgeRef(2), 3]]
        assert decode_value(encode_value(value)) == value

    def test_unserializable_value_rejected(self):
        with pytest.raises(QueryError, match="serialize"):
            encode_value(object())


class TestResultRoundtrip:
    def test_scalar_result(self, frappe):
        result = frappe.query(
            "MATCH (n:function) RETURN n.short_name "
            "ORDER BY n.short_name")
        payload = result.to_dict()
        assert payload["schema_version"] == RESULT_SCHEMA_VERSION
        back = Result.from_dict(json.loads(json.dumps(payload)))
        assert back.columns == result.columns
        assert back.rows == result.rows
        assert back.stats.rows_produced == result.stats.rows_produced
        assert back.stats.execution_mode == \
            result.stats.execution_mode

    def test_node_references_survive(self, frappe):
        result = frappe.query("MATCH (n:function) RETURN n LIMIT 2")
        back = Result.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert back.rows == result.rows
        assert all(isinstance(row[0], NodeRef) for row in back.rows)

    def test_profile_tree_survives(self, frappe):
        result = frappe.query(
            "MATCH (n:function) RETURN count(*)",
            options=QueryOptions(profile=True))
        back = Result.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert back.profile is not None
        assert back.profile.total_db_hits() == \
            result.profile.total_db_hits()
        assert back.profile.name == result.profile.name

    def test_empty_result(self):
        result = Result(columns=["x"], rows=[],
                        stats=QueryStats())
        back = Result.from_dict(result.to_dict())
        assert back.columns == ["x"]
        assert back.rows == []

    def test_wrong_schema_version_rejected(self, frappe):
        payload = frappe.query("MATCH (n) RETURN count(*)").to_dict()
        payload["schema_version"] = 99
        with pytest.raises(QueryError, match="schema_version"):
            Result.from_dict(payload)

    def test_missing_schema_version_rejected(self):
        with pytest.raises(QueryError, match="schema_version"):
            Result.from_dict({"columns": [], "rows": []})


class TestOptionsWireForm:
    def test_roundtrip_non_defaults_only(self):
        options = QueryOptions(timeout=1.5, max_rows=10,
                               execution_mode="batch")
        payload = options.to_dict()
        assert set(payload) == {"timeout", "max_rows",
                                "execution_mode"}
        assert QueryOptions.from_dict(payload) == options

    def test_defaults_encode_empty(self):
        assert QueryOptions().to_dict() == {}
        assert QueryOptions.from_dict({}) == QueryOptions()

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="max_row"):
            QueryOptions.from_dict({"max_row": 5})

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError):
            QueryOptions.from_dict({"timeout": -2})


class TestResolve:
    def test_none_gives_defaults(self):
        assert QueryOptions.resolve(None) == QueryOptions()

    def test_explicit_keywords_win(self):
        base = QueryOptions(timeout=9.0, max_rows=5,
                            parameters={"a": 1})
        merged = QueryOptions.resolve(base, timeout=1.0,
                                      parameters={"b": 2})
        assert merged.timeout == 1.0
        assert merged.parameters == {"b": 2}
        assert merged.max_rows == 5  # untouched field carried over

    def test_profile_override(self):
        merged = QueryOptions.resolve(QueryOptions(), profile=True)
        assert merged.profile is True

    def test_original_not_mutated(self):
        base = QueryOptions(timeout=9.0)
        QueryOptions.resolve(base, timeout=1.0)
        assert base.timeout == 9.0
