"""Property-based compiled-CSR vs record-decode equivalence.

The compiled CSR adjacency is a pure physical-layer change: for any
graph and any traversal query, a compiled store must produce the same
columns, the same rows in the same order, the same profiled db-hit
totals, and the same PROFILE operator tree (modulo wall-clock times)
as the record-decode path — in both buffered and mmap cache modes.
db-hit parity is the sharp edge: the execution context charges hits
above the physical layer, so a CSR read that touched a different
*number* of logical adjacency requests would show up here first.

Stores are written to ``tempfile.mkdtemp`` (not ``tmp_path``) because
hypothesis re-runs the test body many times per fixture instantiation.
"""

import re
import shutil
import tempfile

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.core.config import StoreConfig
from repro.core.frappe import Frappe
from repro.cypher import QueryOptions
from repro.graphdb import PropertyGraph
from repro.graphdb.storage import GraphStore

_NAMES = ["alpha", "beta", "gamma"]
_EDGE_TYPES = ["calls", "reads", "writes"]

#: the (use_compiled_csr, mmap) grid; index 0 is the baseline
_CONFIGS = [(False, False), (False, True), (True, False), (True, True)]


@st.composite
def stored_graphs(draw, max_nodes=7):
    """Small multi-type graphs with type-skewed edges, so typed
    expansions exercise the selective CSR segment reads."""
    graph = PropertyGraph()
    node_count = draw(st.integers(min_value=2, max_value=max_nodes))
    for index in range(node_count):
        if index % 3 == 2:
            graph.add_node("global",
                           short_name=draw(st.sampled_from(_NAMES)),
                           size=draw(st.sampled_from([0, 1, 2])))
        else:
            graph.add_node("function",
                           short_name=draw(st.sampled_from(_NAMES)),
                           size=draw(st.sampled_from([0, 1, 2])))
    nodes = list(graph.node_ids())
    edge_count = draw(st.integers(min_value=0,
                                  max_value=3 * node_count))
    for _ in range(edge_count):
        graph.add_edge(draw(st.sampled_from(nodes)),
                       draw(st.sampled_from(nodes)),
                       draw(st.sampled_from(_EDGE_TYPES)))
    return graph


@st.composite
def traversal_queries(draw):
    pattern = draw(st.sampled_from([
        "MATCH (a:function)-[:calls]->(b)",
        "MATCH (a:function)<-[:calls]-(b)",
        "MATCH (a:function)-[:calls|reads]->(b)",
        "MATCH (a:function)-[r:writes]->(b:global)",
        "MATCH (a:function)-[:calls*1..2]->(b)",
        "MATCH (a:function)-[:calls*]->(b)",
        "MATCH (a)-[:reads]->(b)<-[:writes]-(c)",
    ]))
    returns = draw(st.sampled_from(
        ["RETURN a.short_name, b.short_name",
         "RETURN DISTINCT a.short_name",
         "RETURN a.short_name, count(b)",
         "RETURN count(*)"]))
    order = ""
    if returns == "RETURN a.short_name, b.short_name":
        order = draw(st.sampled_from(["", " ORDER BY a.short_name"]))
    mode = draw(st.sampled_from(["rows", "batch"]))
    return pattern + " " + returns + order, mode


def _normalize(profile):
    """PROFILE tree with wall-clock times stripped: structure,
    operator names, row counts and db-hits all remain comparable."""
    return re.sub(r"time[=:][0-9.]+\S*", "", str(profile))


def run_matrix(graph, text, mode):
    directory = tempfile.mkdtemp(prefix="csr-equiv-")
    try:
        GraphStore.write(graph, directory)
        observed = []
        for use_csr, mmap in _CONFIGS:
            with Frappe.open(directory, config=StoreConfig(
                    mmap=mmap, use_compiled_csr=use_csr)) as frappe:
                result = frappe.query(text, options=QueryOptions(
                    execution_mode=mode, profile=True))
                observed.append((result.columns, result.rows,
                                 result.stats.db_hits,
                                 _normalize(result.profile)))
        baseline = observed[0]
        for config, other in zip(_CONFIGS[1:], observed[1:]):
            assert other == baseline, (text, mode, config)
    finally:
        shutil.rmtree(directory, ignore_errors=True)


class TestCompiledCsrEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(graph=stored_graphs(), query=traversal_queries())
    def test_traversals_identical_across_configs(self, graph, query):
        text, mode = query
        run_matrix(graph, text, mode)

    @settings(max_examples=15, deadline=None)
    @given(graph=stored_graphs(max_nodes=5))
    def test_native_slices_identical(self, graph):
        directory = tempfile.mkdtemp(prefix="csr-equiv-")
        try:
            GraphStore.write(graph, directory)
            slices = []
            for use_csr, mmap in _CONFIGS:
                with Frappe.open(directory, config=StoreConfig(
                        mmap=mmap, use_compiled_csr=use_csr)) as frappe:
                    slices.append([
                        (frappe.backward_slice(name),
                         frappe.forward_slice(name))
                        for name in _NAMES])
            assert all(other == slices[0] for other in slices[1:])
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    @settings(max_examples=15, deadline=None)
    @given(graph=stored_graphs(max_nodes=5), query=traversal_queries())
    def test_damaged_csr_answers_from_records(self, graph, query):
        """A torn compiled segment must never change an answer: the
        reader refuses it at open and the record path serves."""
        import os
        from repro.graphdb.storage import store as store_mod
        assume(graph.edge_count() > 0)  # else the CSR payload is empty
        text, mode = query
        directory = tempfile.mkdtemp(prefix="csr-equiv-")
        try:
            GraphStore.write(graph, directory)
            with Frappe.open(directory, config=StoreConfig(
                    use_compiled_csr=False)) as frappe:
                want = frappe.query(text, options=QueryOptions(
                    execution_mode=mode)).rows
            path = os.path.join(directory, store_mod.CSR_FILE)
            with open(path, "r+b") as handle:
                handle.truncate(max(0, handle.seek(0, 2) - 5))
            with Frappe.open(directory) as frappe:
                assert frappe.view._csr_reader is None
                got = frappe.query(text, options=QueryOptions(
                    execution_mode=mode)).rows
            assert got == want
        finally:
            shutil.rmtree(directory, ignore_errors=True)
