"""Property-based batch-vs-row equivalence (hypothesis).

Batch execution must be observationally identical to the generator
pipeline: same columns, same rows, in the same order, for any query
over any graph — including the cases where a divergence would hide
easily: ORDER BY columns full of ties (a non-stable sort or a
mis-ordered top-K heap passes unordered comparison but fails here),
implicit-grouping aggregation (group-key ordering), DISTINCT + SKIP +
LIMIT stacking, and morsel sizes small enough that every operator
boundary is crossed mid-pipeline.

CI runs this file as its own job with a fixed ``--hypothesis-seed``
so a red run is reproducible from the printed failing example.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cypher import CypherEngine, QueryOptions
from repro.graphdb import PropertyGraph

# Deliberately tiny value pools: collisions in ORDER BY keys and
# aggregation group keys are the interesting case, so force them.
_NAMES = ["alpha", "beta", "gamma"]
_SIZES = [0, 1, 2]


@st.composite
def call_graphs(draw, max_nodes=8):
    graph = PropertyGraph()
    node_count = draw(st.integers(min_value=1, max_value=max_nodes))
    for _ in range(node_count):
        graph.add_node("function",
                       short_name=draw(st.sampled_from(_NAMES)),
                       size=draw(st.sampled_from(_SIZES)))
    nodes = list(graph.node_ids())
    edge_count = draw(st.integers(min_value=0,
                                  max_value=2 * node_count))
    for _ in range(edge_count):
        graph.add_edge(draw(st.sampled_from(nodes)),
                       draw(st.sampled_from(nodes)),
                       draw(st.sampled_from(["calls", "reads"])))
    return graph


@st.composite
def queries(draw):
    pattern = draw(st.sampled_from([
        "MATCH (a:function)",
        "MATCH (a:function {size: 1})",
        "MATCH (a:function)-[:calls]->(b)",
        "MATCH (a:function)-[r:calls]->(b:function)",
        "MATCH (a:function)<-[:calls]-(b)",
        "MATCH (a:function)-[:calls|reads]->(b)",
        "MATCH (a:function)-[:calls*1..2]->(b)",
    ]))
    has_b = "(b" in pattern or "->(b)" in pattern or "-(b)" in pattern
    where = draw(st.sampled_from(
        ["", " WHERE a.size > 0", " WHERE a.short_name = 'alpha'"] +
        ([" WHERE a.size <= b.size"] if has_b else [])))
    returns = draw(st.sampled_from(
        ["RETURN a.short_name, a.size",
         "RETURN DISTINCT a.short_name",
         "RETURN a.size, count(a)",
         "RETURN count(a), sum(a.size)"] +
        (["RETURN a.short_name, b.size",
          "RETURN a.short_name, count(b)"] if has_b else [])))
    order = ""
    if "count(" not in returns or ", count(" in returns:
        # ORDER BY the first projected column (tie-heavy by design)
        order = draw(st.sampled_from(
            ["", " ORDER BY a.short_name", " ORDER BY a.size DESC",
             " ORDER BY a.size, a.short_name DESC"]))
        if "DISTINCT" in returns and "a.size" in order:
            order = " ORDER BY a.short_name"
    paging = draw(st.sampled_from(
        ["", " SKIP 1", " LIMIT 3", " SKIP 1 LIMIT 2"]))
    if paging and not order:
        # unordered SKIP/LIMIT is only well-defined given order parity
        # — which is exactly what this suite asserts, so keep it
        pass
    return pattern + where + " " + returns + order + paging


@st.composite
def with_queries(draw):
    """Two-stage WITH pipelines (re-batching across clause boundary)."""
    where = draw(st.sampled_from(["", " WHERE total > 1"]))
    tail = draw(st.sampled_from(
        ["RETURN name, total ORDER BY name",
         "RETURN total, count(name) ORDER BY total"]))
    return ("MATCH (a:function) "
            "WITH a.short_name AS name, sum(a.size) AS total" +
            where + " " + tail)


def assert_modes_agree(graph, text, morsel_size):
    engine = CypherEngine(graph)
    row_result = engine.run(
        text, options=QueryOptions(execution_mode="rows"))
    batch_result = engine.run(
        text, options=QueryOptions(execution_mode="batch",
                                   morsel_size=morsel_size))
    assert batch_result.columns == row_result.columns
    assert batch_result.rows == row_result.rows, text
    assert batch_result.stats.rows_produced == \
        row_result.stats.rows_produced


def assert_three_way(engine, text, morsel_size, parallelism):
    """rows == serial batch == parallel batch: columns, rows, order
    AND profiled db-hit totals (the morsel driver's ordered merge must
    leave no observable trace of the task decomposition)."""
    rows = engine.run(
        text, options=QueryOptions(execution_mode="rows",
                                   profile=True))
    serial = engine.run(
        text, options=QueryOptions(execution_mode="batch",
                                   morsel_size=morsel_size,
                                   parallelism=1, profile=True))
    parallel = engine.run(
        text, options=QueryOptions(execution_mode="batch",
                                   morsel_size=morsel_size,
                                   parallelism=parallelism,
                                   profile=True))
    assert serial.columns == rows.columns == parallel.columns
    assert serial.rows == rows.rows, text
    assert parallel.rows == serial.rows, \
        f"{text} (morsel={morsel_size}, parallelism={parallelism})"
    assert parallel.stats.rows_produced == serial.stats.rows_produced
    assert parallel.stats.db_hits == serial.stats.db_hits, \
        f"{text} (morsel={morsel_size}, parallelism={parallelism})"


class TestBatchRowEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(graph=call_graphs(), text=queries(),
           morsel_size=st.sampled_from([1, 2, 3, 7, 1024]))
    def test_single_match_pipeline(self, graph, text, morsel_size):
        assert_modes_agree(graph, text, morsel_size)

    @settings(max_examples=60, deadline=None)
    @given(graph=call_graphs(), text=with_queries(),
           morsel_size=st.sampled_from([1, 3, 1024]))
    def test_with_pipeline(self, graph, text, morsel_size):
        assert_modes_agree(graph, text, morsel_size)

    @settings(max_examples=40, deadline=None)
    @given(graph=call_graphs(max_nodes=6),
           morsel_size=st.sampled_from([1, 2, 1024]))
    def test_fallback_clause_under_forced_batch(self, graph,
                                                morsel_size):
        # OPTIONAL MATCH has no batch kernel: forced batch mode routes
        # the clause through the row fallback and re-batches its output
        assert_modes_agree(
            graph,
            "MATCH (a:function) OPTIONAL MATCH (a)-[:calls]->(b) "
            "RETURN a.short_name, b.size "
            "ORDER BY a.short_name, b.size",
            morsel_size)

    @settings(max_examples=40, deadline=None)
    @given(graph=call_graphs(), text=queries())
    def test_auto_mode_matches_rows(self, graph, text):
        engine = CypherEngine(graph)
        auto = engine.run(text)
        rows = engine.run(
            text, options=QueryOptions(execution_mode="rows"))
        assert auto.rows == rows.rows


class TestParallelBatchEquivalence:
    """ISSUE 8: the morsel-parallel driver is observationally
    identical to serial batch (which is identical to rows) — same
    rows, same order, same profiled db-hit totals — across the full
    (parallelism x morsel size) grid. Without a pool attached the
    driver falls back to inline tasks, which exercises the exact same
    fork/ordered-merge path; determinism is a property of the merge,
    not of the schedule."""

    @settings(max_examples=100, deadline=None)
    @given(graph=call_graphs(), text=queries(),
           morsel_size=st.sampled_from([1, 128, 1024]),
           parallelism=st.sampled_from([1, 2, 8]))
    def test_single_match_pipeline(self, graph, text, morsel_size,
                                   parallelism):
        assert_three_way(CypherEngine(graph), text, morsel_size,
                         parallelism)

    @settings(max_examples=40, deadline=None)
    @given(graph=call_graphs(), text=with_queries(),
           morsel_size=st.sampled_from([1, 128]),
           parallelism=st.sampled_from([2, 8]))
    def test_with_pipeline(self, graph, text, morsel_size,
                           parallelism):
        assert_three_way(CypherEngine(graph), text, morsel_size,
                         parallelism)

    @settings(max_examples=40, deadline=None)
    @given(graph=call_graphs(max_nodes=6), text=queries(),
           morsel_size=st.sampled_from([1, 128]),
           parallelism=st.sampled_from([2, 8]))
    def test_on_a_real_thread_pool(self, graph, text, morsel_size,
                                   parallelism):
        # same grid, but tasks really run on Executor worker threads
        from repro.server.executor import Executor
        executor = Executor(lambda *a, **k: None, workers=2)
        engine = CypherEngine(graph)
        engine.task_spawner = executor.spawn_task
        engine.pool_workers = executor.workers
        try:
            assert_three_way(engine, text, morsel_size, parallelism)
        finally:
            engine.task_spawner = None
            executor.close(wait=True)

    @settings(max_examples=25, deadline=None)
    @given(graph=call_graphs(),
           morsel_size=st.sampled_from([1, 128]),
           parallelism=st.sampled_from([2, 8]))
    def test_var_length_frontier_parallel(self, graph, morsel_size,
                                          parallelism):
        # reachability expansion takes the frontier-parallel path;
        # first-reach order (hence DISTINCT row order) must not move
        assert_three_way(
            CypherEngine(graph),
            "MATCH (a:function)-[:calls*]->(b) "
            "RETURN DISTINCT a.short_name, b.short_name",
            morsel_size, parallelism)
