"""Cypher tokenizer."""

import pytest

from repro.cypher import lexer
from repro.errors import CypherSyntaxError


def kinds(text):
    return [token.kind for token in lexer.tokenize(text)][:-1]  # drop EOF


def texts(text):
    return [token.text for token in lexer.tokenize(text)][:-1]


class TestBasicTokens:
    def test_identifiers_and_keywords_are_idents(self):
        assert kinds("MATCH n RETURN n") == ["ident"] * 4

    def test_numbers(self):
        tokens = list(lexer.tokenize("42 3.5 1e3 2.5e-2"))
        assert [t.kind for t in tokens[:-1]] == \
            ["int", "float", "float", "float"]
        assert tokens[0].value == 42
        assert tokens[1].value == 3.5
        assert tokens[2].value == 1000.0

    def test_strings_both_quotes(self):
        tokens = list(lexer.tokenize("'abc' \"def\""))
        assert [t.value for t in tokens[:-1]] == ["abc", "def"]

    def test_string_escapes(self):
        tokens = list(lexer.tokenize(r"'a\'b\n'"))
        assert tokens[0].value == "a'b\n"

    def test_backtick_identifier(self):
        tokens = list(lexer.tokenize("`weird name`"))
        assert tokens[0].kind == "ident"
        assert tokens[0].value == "weird name"

    def test_parameter(self):
        tokens = list(lexer.tokenize("$param"))
        assert tokens[0].kind == "param"
        assert tokens[0].value == "param"

    def test_punctuation_longest_match(self):
        assert texts("<= >= <> != .. =~") == \
            ["<=", ">=", "<>", "!=", "..", "=~"]

    def test_arrow_components(self):
        # arrows are not fused; the parser assembles them
        assert texts("-[:calls]->") == ["-", "[", ":", "calls", "]",
                                        "-", ">"]


class TestCommentsAndPositions:
    def test_line_comment_skipped(self):
        assert kinds("MATCH // comment\n n") == ["ident", "ident"]

    def test_line_numbers(self):
        tokens = list(lexer.tokenize("a\nb\n  c"))
        assert [(t.line, t.column) for t in tokens[:-1]] == \
            [(1, 1), (2, 1), (3, 3)]

    def test_eof_token(self):
        tokens = list(lexer.tokenize("a"))
        assert tokens[-1].kind == "eof"


class TestErrors:
    def test_bad_character(self):
        with pytest.raises(CypherSyntaxError):
            list(lexer.tokenize("MATCH @"))

    def test_error_carries_position(self):
        with pytest.raises(CypherSyntaxError) as info:
            list(lexer.tokenize("ab\ncd @"))
        assert info.value.line == 2


def test_is_keyword_case_insensitive():
    token = next(lexer.tokenize("match"))
    assert token.is_keyword("MATCH")
    assert not token.is_keyword("RETURN")
