"""Expression evaluation and null semantics."""

import pytest

from repro.cypher import parse
from repro.cypher.evaluator import ExecutionContext, evaluate
from repro.cypher.result import EdgeRef, NodeRef
from repro.errors import CypherSemanticError, QueryTimeoutError
from repro.graphdb import PropertyGraph


@pytest.fixture
def ctx():
    g = PropertyGraph()
    g.add_node("function", short_name="f", value=10)
    g.add_node("global", short_name="g")
    g.add_edge(0, 1, "writes", use_start_line=3)
    return ExecutionContext(g, parameters={"p": 42})


def expr(text):
    """Parse an expression by wrapping it in a dummy query."""
    query = parse(f"MATCH x WHERE {text} RETURN x")
    return query.clauses[1].predicate


def ev(text, ctx, row=None):
    return evaluate(expr(text), row or {}, ctx)


class TestLiteralsAndArithmetic:
    def test_arithmetic(self, ctx):
        assert ev("1 + 2 * 3 = 7", ctx) is True
        assert ev("2 ^ 10 = 1024", ctx) is True
        assert ev("7 % 3 = 1", ctx) is True

    def test_integer_division_truncates_toward_zero(self, ctx):
        assert ev("7 / 2 = 3", ctx) is True
        assert ev("0 - 7 / 2 = 0 - 3", ctx) is True

    def test_division_by_zero(self, ctx):
        with pytest.raises(CypherSemanticError):
            ev("1 / 0 = 1", ctx)

    def test_unary_minus(self, ctx):
        assert ev("-3 < 0", ctx) is True

    def test_string_concatenation(self, ctx):
        assert ev("'a' + 'b' = 'ab'", ctx) is True

    def test_regex_match(self, ctx):
        assert ev("'schedule' =~ 'sch.*'", ctx) is True
        assert ev("'schedule' =~ 'x.*'", ctx) is False


class TestNullSemantics:
    def test_comparison_with_null_is_null(self, ctx):
        assert ev("null = 1", ctx) is None
        assert ev("null <> 1", ctx) is None
        assert ev("null < 1", ctx) is None

    def test_kleene_and(self, ctx):
        assert ev("false AND null", ctx) is False
        assert ev("true AND null", ctx) is None

    def test_kleene_or(self, ctx):
        assert ev("true OR null", ctx) is True
        assert ev("false OR null", ctx) is None

    def test_not_null(self, ctx):
        assert ev("NOT null", ctx) is None

    def test_xor(self, ctx):
        assert ev("true XOR false", ctx) is True
        assert ev("true XOR true", ctx) is False
        assert ev("true XOR null", ctx) is None

    def test_is_null(self, ctx):
        assert ev("null IS NULL", ctx) is True
        assert ev("1 IS NOT NULL", ctx) is True

    def test_arithmetic_with_null(self, ctx):
        assert ev("(1 + null) IS NULL", ctx) is True

    def test_incomparable_types_yield_null(self, ctx):
        assert ev("(1 < 'a') IS NULL", ctx) is True


class TestGraphAccess:
    def test_node_property(self, ctx):
        row = {"n": NodeRef(0)}
        assert evaluate(expr("n.value = 10"), row, ctx) is True

    def test_missing_property_is_null(self, ctx):
        row = {"n": NodeRef(1)}
        assert evaluate(expr("n.value IS NULL"), row, ctx) is True

    def test_edge_property(self, ctx):
        row = {"r": EdgeRef(0)}
        assert evaluate(expr("r.use_start_line = 3"), row, ctx) is True

    def test_property_of_null_is_null(self, ctx):
        row = {"n": None}
        assert evaluate(expr("n.value IS NULL"), row, ctx) is True

    def test_unknown_variable(self, ctx):
        with pytest.raises(CypherSemanticError):
            evaluate(expr("ghost.x = 1"), {}, ctx)

    def test_property_of_scalar_rejected(self, ctx):
        with pytest.raises(CypherSemanticError):
            evaluate(expr("n.x = 1"), {"n": 5}, ctx)


class TestFunctions:
    def test_id(self, ctx):
        assert evaluate(expr("id(n) = 0"), {"n": NodeRef(0)}, ctx) is True

    def test_type(self, ctx):
        assert evaluate(expr("type(r) = 'writes'"),
                        {"r": EdgeRef(0)}, ctx) is True

    def test_labels(self, ctx):
        query = parse("MATCH x WHERE labels(n) = ['function'] RETURN x")
        assert evaluate(query.clauses[1].predicate,
                        {"n": NodeRef(0)}, ctx) is True

    def test_coalesce(self, ctx):
        assert ev("coalesce(null, 3) = 3", ctx) is True

    def test_size_and_length(self, ctx):
        assert ev("size([1, 2, 3]) = 3", ctx) is True
        assert ev("length('abc') = 3", ctx) is True

    def test_string_helpers(self, ctx):
        assert ev("toUpper('ab') = 'AB'", ctx) is True
        assert ev("toLower('AB') = 'ab'", ctx) is True
        assert ev("toString(5) = '5'", ctx) is True
        assert ev("toInt('5') = 5", ctx) is True

    def test_abs(self, ctx):
        assert ev("abs(0 - 5) = 5", ctx) is True

    def test_unknown_function(self, ctx):
        with pytest.raises(CypherSemanticError):
            ev("frobnicate(1) = 1", ctx)

    def test_parameter(self, ctx):
        assert ev("$p = 42", ctx) is True

    def test_missing_parameter(self, ctx):
        with pytest.raises(CypherSemanticError):
            ev("$missing = 1", ctx)


class TestExecutionContext:
    def test_timeout_raises(self):
        g = PropertyGraph()
        ctx = ExecutionContext(g, timeout=0.0)
        with pytest.raises(QueryTimeoutError):
            for _ in range(10000):
                ctx.tick()

    def test_no_timeout_by_default(self):
        ctx = ExecutionContext(PropertyGraph())
        for _ in range(10000):
            ctx.tick()
        assert ctx.expansions == 10000

    def test_check_deadline_direct(self):
        ctx = ExecutionContext(PropertyGraph(), timeout=0.0)
        import time
        time.sleep(0.001)
        with pytest.raises(QueryTimeoutError):
            ctx.check_deadline()

    def test_non_boolean_in_logical_rejected(self, ctx):
        with pytest.raises(CypherSemanticError):
            ev("1 AND true", ctx)
