"""Compiled columnar kernels (ISSUE 8 tentpole b).

WHERE/projection expressions are lowered to closure kernels at prepare
time and cached on the planned AST (which the plan cache owns), so a
cached plan never recompiles.  The kernels must be bit-for-bit
observationally identical to the interpreted ``evaluate()`` baseline —
rows, order, three-valued WHERE semantics, error types and profiled
db-hit totals — because ``use_compiled_kernels=False`` is the
compiled-vs-interpreted ablation and any drift would poison it.
"""

import pytest

from repro.cypher import CypherEngine, QueryOptions, parse
from repro.cypher.evaluator import (ExecutionContext, compile_expr,
                                    evaluate, expr_kernel,
                                    precompile_query)
from repro.errors import CypherSemanticError
from repro.graphdb import PropertyGraph


@pytest.fixture
def graph():
    g = PropertyGraph()
    sizes = [0, 1, 2, 3, None]
    for index in range(10):
        props = {"short_name": f"fn{index}", "type": "function"}
        size = sizes[index % len(sizes)]
        if size is not None:
            props["size"] = size
        g.add_node("function", **props)
    nodes = list(g.node_ids())
    for index, source in enumerate(nodes):
        g.add_edge(source, nodes[(index + 3) % len(nodes)], "calls",
                   use_start_line=index)
    return g


@pytest.fixture
def engine(graph):
    return CypherEngine(graph)


def _where_predicate(text):
    """The WHERE predicate AST of a parsed query."""
    query = parse(text)
    from repro.cypher import ast
    for clause in query.clauses:
        if isinstance(clause, ast.Where):
            return clause.predicate
    raise AssertionError("no WHERE clause in " + text)


WHERE_FRAGMENTS = [
    "n.size > 1",
    "n.size >= 1 AND n.size < 3",
    "n.size = 2 OR n.short_name = 'fn0'",
    "NOT n.size = 2",
    "n.size + 1 = 3",
    "n.size * 2 - 1 >= 3",
    "n.size / 2 = 1",
    "n.size % 2 = 0",
    "n.short_name =~ 'fn[0-3]'",
    "n.size IN [1, 2]",
    "n.size IS NULL",
    "n.size IS NOT NULL",
    "n.missing = 1",          # NULL comparison: row filtered, no error
    "n.size > 1 XOR n.size < 3",
]

RETURN_FRAGMENTS = [
    "n.short_name",
    "n.size + 100",
    "n.size, n.short_name",
    "id(n)",
    "coalesce(n.size, -1)",
    "n.size, count(*)",
]


class TestKernelInterpreterParity:
    @pytest.mark.parametrize("where", WHERE_FRAGMENTS)
    def test_where_parity(self, engine, where):
        text = (f"MATCH (n:function) WHERE {where} "
                "RETURN n.short_name ORDER BY n.short_name")
        compiled = engine.run(text, options=QueryOptions(
            execution_mode="batch", use_compiled_kernels=True,
            profile=True))
        interpreted = engine.run(text, options=QueryOptions(
            execution_mode="batch", use_compiled_kernels=False,
            profile=True))
        rows = engine.run(text, options=QueryOptions(
            execution_mode="rows", profile=True))
        assert compiled.rows == interpreted.rows == rows.rows, where
        assert compiled.stats.db_hits == interpreted.stats.db_hits, \
            where

    @pytest.mark.parametrize("returns", RETURN_FRAGMENTS)
    def test_projection_parity(self, engine, returns):
        text = f"MATCH (n:function) RETURN {returns}"
        compiled = engine.run(text, options=QueryOptions(
            execution_mode="batch", use_compiled_kernels=True))
        interpreted = engine.run(text, options=QueryOptions(
            execution_mode="batch", use_compiled_kernels=False))
        assert compiled.rows == interpreted.rows, returns

    def test_pattern_property_parity(self, engine):
        text = ("MATCH (n:function {size: 2})-[r:calls]->(m) "
                "RETURN n.short_name, m.short_name "
                "ORDER BY n.short_name, m.short_name")
        compiled = engine.run(text, options=QueryOptions(
            execution_mode="batch", use_compiled_kernels=True,
            profile=True))
        interpreted = engine.run(text, options=QueryOptions(
            execution_mode="batch", use_compiled_kernels=False,
            profile=True))
        assert compiled.rows == interpreted.rows
        assert compiled.stats.db_hits == interpreted.stats.db_hits

    def test_edge_property_parity(self, engine):
        text = ("MATCH (n)-[r:calls {use_start_line: 4}]->(m) "
                "RETURN n.short_name, m.short_name")
        compiled = engine.run(text, options=QueryOptions(
            execution_mode="batch", use_compiled_kernels=True,
            profile=True))
        interpreted = engine.run(text, options=QueryOptions(
            execution_mode="batch", use_compiled_kernels=False,
            profile=True))
        assert compiled.rows == interpreted.rows
        assert compiled.stats.db_hits == interpreted.stats.db_hits

    def test_missing_parameter_error_parity(self, engine):
        text = "MATCH (n:function) WHERE n.size = $missing RETURN n"
        for use_kernels in (True, False):
            with pytest.raises(CypherSemanticError):
                engine.run(text, options=QueryOptions(
                    execution_mode="batch",
                    use_compiled_kernels=use_kernels))


class TestKernelMachinery:
    def test_kernel_caches_on_the_ast_node(self):
        predicate = _where_predicate(
            "MATCH (n) WHERE n.size > 1 RETURN n")
        assert compile_expr(predicate) is compile_expr(predicate)

    def test_precompile_query_populates_kernels(self):
        query = parse("MATCH (n:function {size: 1}) "
                      "WHERE n.size > 0 RETURN n.short_name")
        precompile_query(query)
        from repro.cypher import ast
        for clause in query.clauses:
            if isinstance(clause, ast.Where):
                assert getattr(clause.predicate, "_compiled_kernel",
                               None) is not None

    def test_kernel_matches_evaluate_directly(self, graph):
        predicate = _where_predicate(
            "MATCH (n) WHERE n.size + 1 >= 2 RETURN n")
        ctx = ExecutionContext(graph, {}, None)
        kernel = compile_expr(predicate)
        for row in ({"n": {"size": 1}}, {"n": {"size": 0}},
                    {"n": {}}):
            assert kernel(row, ctx) == evaluate(predicate, row, ctx)

    def test_ablation_gate_returns_interpreted_shim(self, graph):
        predicate = _where_predicate(
            "MATCH (n) WHERE n.size > 1 RETURN n")
        off = ExecutionContext(graph, {}, None,
                               use_compiled_kernels=False)
        on = ExecutionContext(graph, {}, None,
                              use_compiled_kernels=True)
        assert expr_kernel(predicate, on) is compile_expr(predicate)
        shim = expr_kernel(predicate, off)
        assert shim is not compile_expr(predicate)
        assert shim({"n": {"size": 2}}, off) is True

    def test_engine_prepare_precompiles(self, engine):
        text = "MATCH (n:function) WHERE n.size > 1 RETURN n.size"
        prepared = engine.prepare(text)
        from repro.cypher import ast
        predicates = [clause.predicate
                      for clause in prepared.clauses
                      if isinstance(clause, ast.Where)]
        assert predicates
        assert all(getattr(p, "_compiled_kernel", None) is not None
                   for p in predicates)

    def test_engine_level_ablation_flag(self, graph):
        baseline = CypherEngine(graph).run(
            "MATCH (n:function) WHERE n.size > 0 RETURN n.short_name")
        ablated_engine = CypherEngine(graph,
                                      use_compiled_kernels=False)
        ablated = ablated_engine.run(
            "MATCH (n:function) WHERE n.size > 0 RETURN n.short_name")
        assert ablated.rows == baseline.rows
