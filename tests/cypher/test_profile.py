"""PROFILE execution: annotated operator trees over the paper queries.

Covers the tentpole's acceptance shape: the Figure 3-6 queries report
per-operator rows / wall time / db-hits, row counts shrink monotonically
down the pipeline, the E8 Cypher blow-up is attributable to the
var-length expand operator, and a store-backed warm run's cache hit
ratio strictly exceeds the cold run's.
"""

import pytest

from repro.core.frappe import Frappe
from repro.cypher import CypherEngine
from repro.graphdb import PropertyGraph

FIGURE3_STYLE = (
    "START m=node:node_auto_index('short_name: main.c') "
    "MATCH m -[:file_contains]-> f "
    "WITH distinct f "
    "MATCH f -[:calls]-> n "
    "RETURN n")


@pytest.fixture
def graph():
    """main.c contains main/helper; a small call graph underneath."""
    g = PropertyGraph()
    f1 = g.add_node("file", short_name="main.c", type="file")
    main = g.add_node("function", "symbol", short_name="main",
                      type="function")
    helper = g.add_node("function", "symbol", short_name="helper",
                        type="function")
    util = g.add_node("function", "symbol", short_name="util",
                      type="function")
    g.add_edge(f1, main, "file_contains")
    g.add_edge(f1, helper, "file_contains")
    g.add_edge(main, helper, "calls", use_start_line=5)
    g.add_edge(main, util, "calls", use_start_line=9)
    g.add_edge(helper, util, "calls", use_start_line=2)
    return g


@pytest.fixture
def engine(graph):
    return CypherEngine(graph)


class TestProfileActivation:
    def test_profile_keyword(self, engine):
        result = engine.run("PROFILE MATCH (n:function) RETURN n")
        assert result.profile is not None
        assert len(result) == 3

    def test_profile_method(self, engine):
        result = engine.profile("MATCH (n:function) RETURN n")
        assert result.profile is not None

    def test_unprofiled_run_has_no_plan(self, engine):
        result = engine.run("MATCH (n:function) RETURN n")
        assert result.profile is None
        assert result.stats.db_hits == 0

    def test_profile_keyword_not_part_of_results(self, engine):
        plain = engine.run("MATCH (n:function) RETURN n.short_name")
        profiled = engine.run(
            "PROFILE MATCH (n:function) RETURN n.short_name")
        assert sorted(plain.rows) == sorted(profiled.rows)


class TestOperatorTree:
    def test_root_mirrors_result(self, engine):
        result = engine.profile("MATCH (n:function) RETURN n")
        plan = result.profile
        assert plan.name == "Query"
        assert plan.rows == len(result)
        assert plan.time_ms is not None and plan.time_ms >= 0.0

    def test_start_clause_operators(self, engine):
        result = engine.profile(
            "START n=node:node_auto_index('short_name: main') RETURN n")
        plan = result.profile
        start = plan.find_one("Start")
        seek = plan.find_one("NodeByIndexQuery")
        assert seek in [op for op in start.operators()]
        assert seek.args["query"] == "short_name: main"
        assert seek.rows == 1
        assert seek.db_hits >= 1

    def test_match_anchor_and_expand(self, engine):
        result = engine.profile(
            "MATCH (f:file{short_name: 'main.c'}) "
            "-[:file_contains]-> n RETURN n")
        plan = result.profile
        match = plan.find_one("Match")
        anchor = plan.find_one("NodeIndexSeek")
        expand = plan.find_one("Expand")
        assert anchor in [op for op in match.operators()]
        assert expand.args["types"] == "file_contains"
        assert expand.rows == 2
        assert expand.db_hits > 0

    def test_var_length_expand_named(self, engine):
        result = engine.profile(
            "MATCH (n:function{short_name: 'main'}) -[:calls*]-> m "
            "RETURN distinct m")
        plan = result.profile
        expand = plan.find_one("VarLengthExpand")
        assert expand.args["bounds"].startswith("*")
        assert expand.rows >= len(result)

    def test_projection_operators(self, engine):
        result = engine.profile(
            "MATCH (n:function) RETURN distinct n.type "
            "ORDER BY n.type LIMIT 1")
        plan = result.profile
        projection = plan.find_one("Projection")
        assert projection.args.get("distinct") is True
        assert plan.find_one("Distinct").rows == 1
        assert plan.find_one("Sort").rows == 1
        assert plan.find_one("Limit").rows == 1
        assert len(result) == 1

    def test_aggregation_operator(self, engine):
        result = engine.profile(
            "MATCH (n:function) RETURN count(*) AS functions")
        assert result.profile.find("EagerAggregation")
        assert result.rows == [(3,)]

    def test_filter_rows_monotone(self, engine):
        result = engine.profile(
            "MATCH (n:function) -[:calls]-> m "
            "WHERE n.short_name = 'main' RETURN m")
        plan = result.profile
        match = plan.find_one("Match")
        filter_op = plan.find_one("Filter")
        # a filter never produces more rows than its input
        assert filter_op.rows <= match.rows
        assert filter_op.rows == len(result)

    def test_db_hits_total(self, engine):
        result = engine.profile("MATCH (n:function) RETURN n.short_name")
        assert result.stats.db_hits == result.profile.total_db_hits()
        assert result.stats.db_hits > 0

    def test_multi_clause_pipeline(self, engine):
        result = engine.profile(FIGURE3_STYLE)
        plan = result.profile
        names = [op.name for op in plan.children]
        assert names == ["Start", "Match", "Projection", "Match",
                         "Projection"]
        # row counts are monotone down this pipeline: each stage's
        # output feeds the next
        start, match1 = plan.children[0], plan.children[1]
        assert start.rows <= match1.rows or match1.rows == 0
        assert plan.rows == len(result)

    def test_pretty_rendering(self, engine):
        plan = engine.profile("MATCH (n:function) RETURN n").profile
        rendered = plan.pretty()
        assert "Query" in rendered
        assert "rows=" in rendered
        assert "dbhits=" in rendered
        assert "time=" in rendered


class TestE8Attribution:
    """The paper's Cypher-vs-native asymmetry, pinned to an operator."""

    @pytest.fixture
    def layered(self):
        """5 fully-connected layers of 5: path counts explode."""
        g = PropertyGraph()
        layers = [[g.add_node("function",
                              short_name=f"l{level}_{index}",
                              type="function")
                   for index in range(5)] for level in range(5)]
        for upper, lower in zip(layers, layers[1:]):
            for source in upper:
                for target in lower:
                    g.add_edge(source, target, "calls")
        return g

    CLOSURE = ("START n=node:node_auto_index('short_name: l0_0') "
               "MATCH n -[:calls*]-> m RETURN distinct m")

    def test_var_length_expand_dominates(self, layered):
        # the Section 6.1 blow-up: with the reachability rewrite off,
        # the var-length expansion enumerates every path
        engine = CypherEngine(layered, use_reachability_rewrite=False)
        result = engine.profile(self.CLOSURE)
        plan = result.profile
        assert len(result) == 20  # closure: 4 layers of 5
        hottest = plan.hottest()
        assert hottest is not None
        assert hottest.name == "VarLengthExpand"
        # path enumeration also dominates the db-hit account
        expand = plan.find_one("VarLengthExpand")
        assert expand.db_hits > plan.total_db_hits() / 2
        # far more paths enumerated than distinct results
        assert expand.rows > len(result) * 5

    def test_reachability_rewrite_collapses_paths(self, layered):
        # same query, rewrite on (the default): one row per endpoint
        # and db-hits linear in the reachable adjacency lists
        engine = CypherEngine(layered)
        result = engine.profile(self.CLOSURE)
        plan = result.profile
        assert len(result) == 20
        expand = plan.find_one("VarLengthExpand")
        assert expand.args.get("mode") == "reachability"
        assert expand.rows == len(result)
        # 21 reachable nodes (source + 20), <= 5 out-edges each
        assert expand.db_hits <= 21 * 5

    def test_rewrite_on_off_same_rows(self, layered):
        on = CypherEngine(layered).run(self.CLOSURE)
        off = CypherEngine(layered, use_reachability_rewrite=False) \
            .run(self.CLOSURE)
        assert sorted(r[0].id for r in on.rows) == \
            sorted(r[0].id for r in off.rows)


class TestStoreBackedProfile:
    @pytest.fixture
    def disk_frappe(self, graph, tmp_path):
        directory = str(tmp_path / "store")
        Frappe(graph).save(directory)
        with Frappe.open(directory) as frappe:
            yield frappe

    def test_profile_over_disk_store(self, disk_frappe):
        result = disk_frappe.profile(
            "MATCH (n:function) RETURN n.short_name")
        assert result.profile is not None
        assert result.profile.find_one("NodeByLabelScan").db_hits > 0

    def test_warm_hit_ratio_exceeds_cold(self, disk_frappe):
        query = FIGURE3_STYLE
        disk_frappe.evict_caches()  # also resets the counters
        disk_frappe.query(query)
        cold_ratio = disk_frappe.cache_hit_ratio()
        disk_frappe.reset_counters()
        disk_frappe.query(query)
        warm_ratio = disk_frappe.cache_hit_ratio()
        assert 0.0 <= cold_ratio < 1.0
        assert warm_ratio > cold_ratio

    def test_counters_cover_the_read_path(self, disk_frappe):
        disk_frappe.evict_caches()
        disk_frappe.query(FIGURE3_STYLE)
        snapshot = disk_frappe.counters()
        assert snapshot.counter("query.count") == 1
        assert snapshot.counter("pagecache.misses") > 0
        assert snapshot.counter("store.record_faults") > 0
        assert snapshot.counter("index.lookups") > 0
        assert snapshot.histogram("query.seconds").count == 1

    def test_traversal_counters(self, disk_frappe):
        disk_frappe.reset_counters()
        closure = disk_frappe.backward_slice("main")
        assert closure
        snapshot = disk_frappe.counters()
        assert snapshot.counter("traversal.expansions") > 0
        assert snapshot.counter("traversal.paths") > 0


class TestObservabilityFacade:
    def test_slow_log_captures_timeouts(self, graph):
        frappe = Frappe(graph)
        with pytest.raises(Exception):
            frappe.query("MATCH n -[:calls*]-> m "
                         "MATCH m -[:calls*]-> o RETURN count(*)",
                         timeout=1e-9)
        entries = frappe.slow_queries()
        assert entries and entries[-1].timed_out
        assert frappe.counters().counter("query.timeouts") == 1

    def test_traces_record_queries(self, graph):
        frappe = Frappe(graph)
        frappe.query("MATCH (n:function) RETURN n")
        (span,) = frappe.traces()
        assert span.name == "cypher.query"
        assert "MATCH" in span.attributes["query"]

    def test_evict_resets_counters(self, graph):
        frappe = Frappe(graph)
        frappe.query("MATCH (n:function) RETURN n")
        assert frappe.counters().counter("query.count") == 1
        frappe.evict_caches()
        assert frappe.counters().counter("query.count") == 0
