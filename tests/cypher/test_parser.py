"""Cypher parser: clause structure, patterns, expressions."""

import pytest

from repro.cypher import ast, parse
from repro.errors import CypherSyntaxError


class TestStartClause:
    def test_index_start(self):
        query = parse("START n=node:node_auto_index('short_name: x') "
                      "RETURN n")
        start = query.clauses[0]
        assert isinstance(start, ast.Start)
        point = start.points[0]
        assert isinstance(point, ast.IndexStartPoint)
        assert point.variable == "n"
        assert point.index_name == "node_auto_index"
        assert point.query == "short_name: x"

    def test_multiple_points(self):
        query = parse(
            "START a=node:node_auto_index('x: 1'), b=node(3, 4) RETURN a")
        start = query.clauses[0]
        assert len(start.points) == 2
        assert isinstance(start.points[1], ast.NodeIdStartPoint)
        assert start.points[1].ids == (3, 4)

    def test_all_nodes_start(self):
        query = parse("START n=node(*) RETURN n")
        assert query.clauses[0].points[0].all_nodes

    def test_rejects_relationship_start(self):
        with pytest.raises(CypherSyntaxError):
            parse("START r=rel:index('x') RETURN r")


class TestMatchPatterns:
    def _pattern(self, text):
        query = parse(f"MATCH {text} RETURN 1")
        return query.clauses[0].patterns[0]

    def test_bare_identifier_nodes(self):
        pattern = self._pattern("a -[:calls]-> b")
        assert pattern.nodes[0].variable == "a"
        assert pattern.nodes[1].variable == "b"
        assert pattern.rels[0].types == ("calls",)
        assert pattern.rels[0].direction == "out"

    def test_parenthesized_nodes_with_labels(self):
        pattern = self._pattern("(n:container:symbol{name: 'foo'})")
        node = pattern.nodes[0]
        assert node.variable == "n"
        assert node.labels == ("container", "symbol")
        assert node.properties[0][0] == "name"

    def test_anonymous_property_node(self):
        pattern = self._pattern("a -[:writes]-> ({SHORT_NAME: 'cmd'})")
        node = pattern.nodes[1]
        assert node.variable is None
        assert node.properties == (("short_name", ast.Literal("cmd")),)

    def test_incoming_direction(self):
        pattern = self._pattern("a <-[:calls]- b")
        assert pattern.rels[0].direction == "in"

    def test_undirected(self):
        pattern = self._pattern("a -[:calls]- b")
        assert pattern.rels[0].direction == "both"

    def test_bare_arrows(self):
        assert self._pattern("a --> b").rels[0].direction == "out"
        assert self._pattern("a <-- b").rels[0].direction == "in"
        assert self._pattern("a -- b").rels[0].direction == "both"

    def test_multi_type_relationship(self):
        pattern = self._pattern("m -[:compiled_from|linked_from*]-> f")
        rel = pattern.rels[0]
        assert rel.types == ("compiled_from", "linked_from")
        assert rel.var_length
        assert (rel.min_hops, rel.max_hops) == (1, None)

    def test_pipe_with_colons(self):
        pattern = self._pattern("a -[:x|:y]-> b")
        assert pattern.rels[0].types == ("x", "y")

    def test_relationship_variable_and_props(self):
        pattern = self._pattern("a -[r:calls{use_start_line: 236}]-> b")
        rel = pattern.rels[0]
        assert rel.variable == "r"
        assert rel.properties == (("use_start_line", ast.Literal(236)),)

    @pytest.mark.parametrize("spec,expected", [
        ("*", (1, None)),
        ("*2", (2, 2)),
        ("*1..3", (1, 3)),
        ("*..4", (1, 4)),
        ("*2..", (2, None)),
    ])
    def test_hop_ranges(self, spec, expected):
        pattern = self._pattern(f"a -[:t{spec}]-> b")
        rel = pattern.rels[0]
        assert (rel.min_hops, rel.max_hops) == expected

    def test_chain(self):
        pattern = self._pattern(
            "writer -[w:writes_member]-> ({short_name:'cmd'}) "
            "<-[:contains]- b")
        assert len(pattern.nodes) == 3
        assert len(pattern.rels) == 2
        assert pattern.rels[1].direction == "in"

    def test_comma_separated_patterns(self):
        query = parse("MATCH a --> b, c --> d RETURN a")
        assert len(query.clauses[0].patterns) == 2

    def test_keys_and_types_lowercased(self):
        pattern = self._pattern("(N:Field{SHORT_NAME: 'x'}) -[:CALLS]-> m")
        assert pattern.nodes[0].labels == ("field",)
        assert pattern.nodes[0].properties[0][0] == "short_name"
        assert pattern.rels[0].types == ("calls",)

    def test_conflicting_arrows_rejected(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH a <-[:t]-> b RETURN a")


class TestExpressions:
    def _where(self, text):
        query = parse(f"MATCH n WHERE {text} RETURN n")
        return query.clauses[1].predicate

    def test_comparison_chain(self):
        predicate = self._where("r.use_start_line >= s.use_start_line")
        assert isinstance(predicate, ast.Binary)
        assert predicate.op == ">="
        assert isinstance(predicate.left, ast.PropertyAccess)

    def test_property_access_lowercased(self):
        predicate = self._where("n.USE_START_LINE = 1")
        assert predicate.left.key == "use_start_line"

    def test_boolean_precedence(self):
        predicate = self._where("a.x = 1 OR b.y = 2 AND c.z = 3")
        assert predicate.op == "or"
        assert predicate.right.op == "and"

    def test_not(self):
        predicate = self._where("NOT n.x = 1")
        assert isinstance(predicate, ast.Unary)
        assert predicate.op == "not"

    def test_arithmetic_precedence(self):
        predicate = self._where("n.x = 1 + 2 * 3")
        addition = predicate.right
        assert addition.op == "+"
        assert addition.right.op == "*"

    def test_pattern_predicate(self):
        predicate = self._where("direct -[:calls*]-> writer")
        assert isinstance(predicate, ast.PatternPredicate)
        assert predicate.pattern.rels[0].var_length

    def test_pattern_predicate_parenthesized(self):
        predicate = self._where(
            "(n) <-[{name_start_line: 104}]- ()")
        assert isinstance(predicate, ast.PatternPredicate)
        assert predicate.pattern.rels[0].direction == "in"

    def test_pattern_predicate_in_conjunction(self):
        predicate = self._where("n.x >= 1 AND direct -[:calls*]-> writer")
        assert predicate.op == "and"
        assert isinstance(predicate.right, ast.PatternPredicate)

    def test_is_null(self):
        predicate = self._where("n.x IS NULL")
        assert isinstance(predicate, ast.FunctionCall)
        assert predicate.name == "isnull"

    def test_is_not_null(self):
        predicate = self._where("n.x IS NOT NULL")
        assert isinstance(predicate, ast.Unary)

    def test_literals(self):
        predicate = self._where("n.a = true AND n.b = null")
        assert predicate.left.right.value is True
        assert predicate.right.right.value is None

    def test_parameter(self):
        predicate = self._where("n.x = $limit")
        assert isinstance(predicate.right, ast.Parameter)

    def test_function_call(self):
        query = parse("MATCH n RETURN labels(n), id(n)")
        items = query.clauses[1].items
        assert items[0].expression.name == "labels"

    def test_list_literal(self):
        query = parse("MATCH n RETURN [1, 2, 3]")
        expression = query.clauses[1].items[0].expression
        assert expression.name == "__list__"
        assert len(expression.args) == 3

    def test_subtraction_still_works(self):
        predicate = self._where("n.x - 1 = 2")
        assert predicate.left.op == "-"


class TestReturnAndWith:
    def test_distinct(self):
        query = parse("MATCH n RETURN distinct n")
        assert query.clauses[1].distinct

    def test_aliases(self):
        query = parse("MATCH n RETURN n.x AS value")
        assert query.clauses[1].items[0].alias == "value"

    def test_star(self):
        query = parse("MATCH n RETURN *")
        assert query.clauses[1].star

    def test_order_skip_limit(self):
        query = parse("MATCH n RETURN n ORDER BY n.x DESC, n.y SKIP 1 "
                      "LIMIT 5")
        ret = query.clauses[1]
        assert len(ret.order_by) == 2
        assert ret.order_by[0].ascending is False
        assert ret.order_by[1].ascending is True
        assert ret.skip == ast.Literal(1)
        assert ret.limit == ast.Literal(5)

    def test_with_distinct_then_match(self):
        query = parse("MATCH m --> f WITH distinct f MATCH f --> n "
                      "RETURN n")
        assert isinstance(query.clauses[1], ast.With)
        assert query.clauses[1].distinct

    def test_with_where(self):
        query = parse("MATCH n WITH n.x AS x WHERE x > 3 RETURN x")
        with_clause = query.clauses[1]
        assert with_clause.where is not None

    def test_count_star(self):
        query = parse("MATCH n RETURN count(*)")
        assert isinstance(query.clauses[1].items[0].expression,
                          ast.CountStar)

    def test_count_distinct(self):
        query = parse("MATCH n RETURN count(distinct n.x)")
        call = query.clauses[1].items[0].expression
        assert call.distinct


class TestQueryValidation:
    def test_must_end_with_return_or_with(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH n")

    def test_return_must_be_last(self):
        with pytest.raises(CypherSyntaxError):
            parse("RETURN 1 MATCH n RETURN n")

    def test_empty_query(self):
        with pytest.raises(CypherSyntaxError):
            parse("   ")

    def test_optional_match(self):
        query = parse("MATCH n OPTIONAL MATCH n --> m RETURN m")
        assert query.clauses[1].optional

    def test_trailing_garbage(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH n RETURN n n n")


class TestPaperQueriesParse:
    """Every query printed in the paper parses."""

    def test_figure3(self):
        parse("START m=node:node_auto_index('short_name: wakeup.elf') "
              "MATCH m -[:compiled_from|linked_from*]-> f "
              "WITH distinct f "
              "MATCH f -[:file_contains]-> (n:field{short_name: 'id'}) "
              "RETURN n")

    def test_figure4(self):
        parse("START n=node:node_auto_index('short_name: id') "
              "WHERE (n) <-[{NAME_FILE_ID: 1423, NAME_START_LINE: 104, "
              "NAME_START_COLUMN: 16}]- () RETURN n")

    def test_figure5(self):
        parse("""
START from=node:node_auto_index('short_name: sr_media_change'),
 to=node:node_auto_index('short_name: get_sectorsize'),
 b=node:node_auto_index('short_name: packet_command')
MATCH writer -[write:writes_member]-> ({SHORT_NAME:'cmd'}) <-[:contains]- b
WITH to, from, writer, write
MATCH direct <-[s:calls]- from -[r:calls{use_start_line: 236}]-> to
WHERE r.use_start_line >= s.use_start_line AND direct -[:calls*]-> writer
RETURN distinct writer, write.use_start_line""")

    def test_figure6(self):
        parse("START n=node:node_auto_index('short_name: pci_read_bases') "
              "MATCH n -[:calls*]-> m RETURN distinct m")

    def test_table6_cypher2(self):
        query = parse('MATCH (n:container:symbol{name: "foo"}) RETURN n')
        node = query.clauses[0].patterns[0].nodes[0]
        assert node.labels == ("container", "symbol")
