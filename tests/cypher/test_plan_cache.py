"""The bounded LRU plan cache and its engine integration.

Plans are keyed on query text and the graph-statistics epoch they
were compiled at; any graph mutation bumps the epoch and so
invalidates every cached plan lazily on next lookup.
"""

import pytest

from repro.cypher import CypherEngine, parse
from repro.cypher.plan_cache import DEFAULT_CAPACITY, PlanCache
from repro.graphdb import PropertyGraph


class Counter:
    def __init__(self):
        self.count = 0

    def inc(self, amount=1):
        self.count += amount


@pytest.fixture
def counters():
    return {name: Counter() for name in
            ("hits", "misses", "evictions", "invalidations")}


@pytest.fixture
def cache(counters):
    return PlanCache(capacity=2, **counters)


PLAN = parse("MATCH (n) RETURN n")


class TestPlanCacheUnit:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(0)

    def test_default_capacity(self):
        assert PlanCache().capacity == DEFAULT_CAPACITY

    def test_miss_then_hit(self, cache, counters):
        assert cache.get("q", epoch=0) is None
        assert counters["misses"].count == 1
        cache.put("q", PLAN, epoch=0)
        assert cache.get("q", epoch=0) is PLAN
        assert counters["hits"].count == 1

    def test_lru_eviction_prefers_recently_used(self, cache, counters):
        cache.put("a", PLAN, 0)
        cache.put("b", PLAN, 0)
        cache.get("a", 0)  # touch: 'b' is now least recently used
        cache.put("c", PLAN, 0)
        assert counters["evictions"].count == 1
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert len(cache) == 2

    def test_stale_epoch_invalidates(self, cache, counters):
        cache.put("q", PLAN, epoch=3)
        assert cache.get("q", epoch=4) is None
        assert counters["invalidations"].count == 1
        assert counters["misses"].count == 1
        assert "q" not in cache  # dropped eagerly, not just skipped

    def test_clear(self, cache):
        cache.put("q", PLAN, 0)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("q", 0) is None


class TestEngineIntegration:
    QUERY = "MATCH (n:function) RETURN n"

    @pytest.fixture
    def graph(self):
        g = PropertyGraph()
        g.add_node("function", short_name="main")
        return g

    def snapshot(self, engine):
        return engine.obs.registry.snapshot()

    def test_repeat_query_hits_cache(self, graph):
        engine = CypherEngine(graph)
        engine.run(self.QUERY)
        engine.run(self.QUERY)
        snapshot = self.snapshot(engine)
        assert snapshot.counter("planner.plans") == 1
        assert snapshot.counter("planner.cache.misses") == 1
        assert snapshot.counter("planner.cache.hits") == 1

    def test_mutation_invalidates(self, graph):
        engine = CypherEngine(graph)
        engine.run(self.QUERY)
        graph.add_node("function", short_name="other")
        engine.run(self.QUERY)
        snapshot = self.snapshot(engine)
        assert snapshot.counter("planner.cache.invalidations") == 1
        assert snapshot.counter("planner.plans") == 2

    def test_capacity_evicts(self, graph):
        engine = CypherEngine(graph, plan_cache_capacity=1)
        engine.run("MATCH (n:function) RETURN n")
        engine.run("MATCH (m:function) RETURN m")
        engine.run("MATCH (n:function) RETURN n")  # evicted: replanned
        snapshot = self.snapshot(engine)
        assert snapshot.counter("planner.cache.evictions") >= 1
        assert snapshot.counter("planner.plans") == 3

    def test_clear_cache(self, graph):
        engine = CypherEngine(graph)
        engine.run(self.QUERY)
        engine.clear_cache()
        engine.run(self.QUERY)
        snapshot = self.snapshot(engine)
        assert snapshot.counter("planner.plans") == 2
        assert snapshot.counter("planner.cache.hits") == 0

    def test_pushdown_and_rewrite_counters(self, graph):
        engine = CypherEngine(graph)
        engine.run("MATCH (n:function) WHERE n.short_name = 'main' "
                   "RETURN n")
        engine.run("MATCH (n) -[:calls*]-> (m) RETURN distinct m")
        snapshot = self.snapshot(engine)
        assert snapshot.counter("planner.pushed_filters") == 1
        assert snapshot.counter("planner.reachability_rewrites") == 1


class TestSnapshotPinning:
    """run() pins one epoch for plan cache, planner and execution."""

    QUERY = "MATCH (n:function) RETURN n.short_name"

    @pytest.fixture
    def graph(self):
        g = PropertyGraph()
        g.add_node("function", short_name="main")
        return g

    def test_result_records_epoch(self, graph):
        engine = CypherEngine(graph)
        first = engine.run(self.QUERY)
        assert first.stats.epoch == graph.statistics.epoch
        graph.add_node("function", short_name="other")
        second = engine.run(self.QUERY)
        assert second.stats.epoch == graph.statistics.epoch
        assert second.stats.epoch > first.stats.epoch

    def test_writer_after_pin_is_invisible(self, graph):
        # interleave a writer right after run() pins its snapshot:
        # the query must report the pinned epoch and the pinned rows,
        # not the sneaked-in mutation
        engine = CypherEngine(graph)
        pinned_epoch = graph.statistics.epoch
        real_snapshot = graph.snapshot

        def write_after_pin():
            snap = real_snapshot()
            graph.add_node("function", short_name="late")
            return snap

        graph.snapshot = write_after_pin
        try:
            result = engine.run(self.QUERY)
        finally:
            del graph.snapshot
        assert result.values() == ["main"]
        assert result.stats.epoch == pinned_epoch
        assert graph.statistics.epoch > pinned_epoch

    def test_cached_plan_reused_for_unchanged_epoch(self, graph):
        # pinning must not defeat the cache: two runs at one epoch
        # share the plan, and the hit is keyed on the pinned epoch
        engine = CypherEngine(graph)
        first = engine.run(self.QUERY)
        second = engine.run(self.QUERY)
        assert first.stats.epoch == second.stats.epoch
        snapshot = engine.obs.registry.snapshot()
        assert snapshot.counter("planner.cache.hits") == 1

    def test_plain_view_still_works(self, graph):
        # pin_view passes through views without snapshot support
        # (the disk store path) — epoch stays at the statistics value
        class Plain:
            def __getattr__(self, name):
                if name == "snapshot":
                    raise AttributeError(name)
                return getattr(graph, name)

        engine = CypherEngine(Plain())
        result = engine.run(self.QUERY)
        assert result.values() == ["main"]
        assert result.stats.epoch == graph.statistics.epoch
