"""Unit tests for the cost-based planner (repro.cypher.planner).

Covers the three planner decisions: statistics-driven anchor choice,
greedy expansion ordering, and the prepare-time rewrites (WHERE
pushdown + reachability marking with its eligibility conditions).
"""

import pytest

from repro.cypher import ast, parse
from repro.cypher.planner import (VAR_LENGTH_DEPTH_ASSUMPTION,
                                  anchor_strategy, estimate_anchor,
                                  plan_pattern, plan_query,
                                  reachability_eligible, step_fanout)
from repro.graphdb import PropertyGraph
from repro.graphdb.stats import graph_statistics_for


@pytest.fixture
def graph():
    g = PropertyGraph()
    functions = [g.add_node("function", short_name=f"fn{i}",
                            type="function") for i in range(40)]
    field = g.add_node("field", short_name="id", type="field")
    for fn in functions:
        g.add_edge(fn, field, "reads")
    for left, right in zip(functions, functions[1:]):
        g.add_edge(left, right, "calls")
    return g


def first_match(text):
    for clause in parse(text).clauses:
        if isinstance(clause, ast.Match):
            return clause
    raise AssertionError(f"no MATCH in {text!r}")


def only_rel(query):
    for clause in query.clauses:
        if isinstance(clause, ast.Match):
            (pattern,) = [p for p in clause.patterns if p.rels]
            (rel,) = pattern.rels
            return rel
    raise AssertionError


class TestAnchorChoice:
    def test_index_seek_beats_label_scan(self, graph):
        pattern = first_match(
            "MATCH (f:function) -[:calls]-> (g{short_name: 'fn7'}) "
            "RETURN f").patterns[0]
        plan = plan_pattern(pattern, set(), graph)
        assert plan.anchor == 1
        assert plan.strategy == "index-seek"
        assert plan.anchor_estimate == pytest.approx(1.0)
        # the single step expands leftwards from the anchor
        assert plan.steps == ((0, 1, True),)

    def test_bound_variable_is_preferred(self, graph):
        pattern = first_match(
            "MATCH (f:function) -[:calls]-> (g:function) RETURN g"
            ).patterns[0]
        plan = plan_pattern(pattern, {"f"}, graph)
        assert plan.anchor == 0
        assert plan.strategy == "bound"
        assert plan.anchor_estimate == pytest.approx(1.0)

    def test_label_scan_over_all_nodes(self, graph):
        pattern = first_match(
            "MATCH (f:field) -[:reads]-> (g) RETURN g").patterns[0]
        plan = plan_pattern(pattern, set(), graph)
        assert plan.anchor == 0
        assert plan.strategy == "label-scan"
        assert plan.anchor_estimate == pytest.approx(1.0)  # one field

    def test_cost_is_anchor_plus_step_rows(self, graph):
        pattern = first_match(
            "MATCH (f:function) -[:calls]-> (g) RETURN g").patterns[0]
        plan = plan_pattern(pattern, set(), graph)
        assert len(plan.step_estimates) == len(plan.steps) == 1
        assert plan.cost == pytest.approx(
            plan.anchor_estimate + sum(plan.step_estimates))


class TestEstimates:
    def test_anchor_estimates_track_statistics(self, graph):
        stats = graph_statistics_for(graph)
        node = first_match("MATCH (n:function) RETURN n"
                           ).patterns[0].nodes[0]
        strategy, _ = anchor_strategy(node, set(), ("short_name",))
        assert strategy == "label-scan"
        assert estimate_anchor(node, strategy, graph, stats) == \
            pytest.approx(40.0)
        bare = first_match("MATCH (n) RETURN n").patterns[0].nodes[0]
        strategy, _ = anchor_strategy(bare, set(), ("short_name",))
        assert strategy == "all-nodes"
        assert estimate_anchor(bare, strategy, graph, stats) == \
            pytest.approx(41.0)

    def test_index_seek_uses_seek_count(self, graph):
        stats = graph_statistics_for(graph)
        node = first_match("MATCH (n{short_name: 'fn7'}) RETURN n"
                           ).patterns[0].nodes[0]
        strategy, detail = anchor_strategy(node, set(), ("short_name",))
        assert strategy == "index-seek"
        assert estimate_anchor(node, strategy, graph, stats) == \
            pytest.approx(1.0)

    def test_step_fanout_single_hop(self, graph):
        stats = graph_statistics_for(graph)
        rel = first_match("MATCH (a) -[:calls]-> (b) RETURN b"
                          ).patterns[0].rels[0]
        assert step_fanout(rel, stats) == pytest.approx(39 / 41)
        undirected = first_match("MATCH (a) -[:calls]- (b) RETURN b"
                                 ).patterns[0].rels[0]
        assert step_fanout(undirected, stats) == \
            pytest.approx(2 * 39 / 41)

    def test_step_fanout_var_length_geometric(self, graph):
        stats = graph_statistics_for(graph)
        rel = first_match("MATCH (a) -[:calls*]-> (b) RETURN b"
                          ).patterns[0].rels[0]
        per_hop = 39 / 41
        expected = sum(per_hop ** level for level in
                       range(1, VAR_LENGTH_DEPTH_ASSUMPTION + 1))
        assert step_fanout(rel, stats) == pytest.approx(expected)

    def test_bounded_var_length_caps_depth(self, graph):
        stats = graph_statistics_for(graph)
        rel = first_match("MATCH (a) -[:calls*1..2]-> (b) RETURN b"
                          ).patterns[0].rels[0]
        per_hop = 39 / 41
        assert step_fanout(rel, stats) == \
            pytest.approx(per_hop + per_hop ** 2)


class TestPushdown:
    def test_equality_conjunct_is_copied_into_match(self):
        query, report = plan_query(parse(
            "MATCH (n:field) WHERE n.short_name = 'id' AND n.x > 1 "
            "RETURN n"))
        assert report.pushed_filters == 1
        match, where = query.clauses[0], query.clauses[1]
        node = match.patterns[0].nodes[0]
        assert ("short_name", ast.Literal("id")) in node.properties
        # WHERE stays: residual conjuncts still filter
        assert isinstance(where, ast.Where)

    def test_reversed_equality_pushes_too(self):
        query, report = plan_query(parse(
            "MATCH (n:field) WHERE 'id' = n.short_name RETURN n"))
        assert report.pushed_filters == 1

    def test_null_equality_is_not_pushed(self):
        _query, report = plan_query(parse(
            "MATCH (n:field) WHERE n.short_name = null RETURN n"))
        assert report.pushed_filters == 0

    def test_optional_match_is_not_pushed(self):
        _query, report = plan_query(parse(
            "MATCH (m) OPTIONAL MATCH (n) WHERE n.a = 'b' RETURN n"))
        assert report.pushed_filters == 0

    def test_existing_property_not_duplicated(self):
        query, report = plan_query(parse(
            "MATCH (n{short_name: 'id'}) WHERE n.short_name = 'other' "
            "RETURN n"))
        assert report.pushed_filters == 0
        node = query.clauses[0].patterns[0].nodes[0]
        assert len(node.properties) == 1

    def test_pushdown_disabled(self):
        _query, report = plan_query(parse(
            "MATCH (n:field) WHERE n.short_name = 'id' RETURN n"),
            pushdown=False)
        assert report.pushed_filters == 0


class TestReachabilityMarking:
    def test_distinct_consumer_marks_rel(self):
        query, report = plan_query(parse(
            "MATCH (n) -[:calls*]-> (m) RETURN distinct m"))
        assert report.reachability_rewrites == 1
        assert only_rel(query).reachability

    def test_non_distinct_consumer_is_not_marked(self):
        query, report = plan_query(parse(
            "MATCH (n) -[:calls*]-> (m) RETURN m"))
        assert report.reachability_rewrites == 0
        assert not only_rel(query).reachability

    def test_aggregate_blocks_marking(self):
        _query, report = plan_query(parse(
            "MATCH (n) -[:calls*]-> (m) RETURN distinct m, count(m)"))
        assert report.reachability_rewrites == 0

    def test_bound_rel_variable_is_not_marked(self):
        query, report = plan_query(parse(
            "MATCH (n) -[r:calls*]-> (m) RETURN distinct m"))
        assert report.reachability_rewrites == 0
        assert not only_rel(query).reachability

    def test_path_variable_is_not_marked(self):
        _query, report = plan_query(parse(
            "MATCH p = (n) -[:calls*]-> (m) RETURN distinct m"))
        assert report.reachability_rewrites == 0

    def test_undirected_is_not_marked(self):
        # an undirected BFS could re-reach the source through the one
        # edge it left by, which path enumeration rejects as edge reuse
        _query, report = plan_query(parse(
            "MATCH (n) -[:calls*]- (m) RETURN distinct m"))
        assert report.reachability_rewrites == 0

    def test_min_hops_two_is_not_marked(self):
        _query, report = plan_query(parse(
            "MATCH (n) -[:calls*2..]-> (m) RETURN distinct m"))
        assert report.reachability_rewrites == 0

    def test_second_rel_in_clause_blocks_marking(self):
        _query, report = plan_query(parse(
            "MATCH (a) -[:calls*]-> (b), (c) -[:reads]-> (d) "
            "RETURN distinct b"))
        assert report.reachability_rewrites == 0

    def test_intervening_match_is_transparent(self):
        query, report = plan_query(parse(
            "MATCH (n) -[:calls*]-> (m) "
            "MATCH (m) -[:reads]-> (k) RETURN distinct k"))
        assert report.reachability_rewrites == 1
        first = query.clauses[0]
        assert first.patterns[0].rels[0].reachability

    def test_pattern_predicate_is_marked_without_distinct(self):
        # existence tests are multiplicity-insensitive, so the
        # endpoint-distinct requirement holds trivially
        query, report = plan_query(parse(
            "MATCH (n), (m) WHERE n -[:calls*]-> m RETURN n"))
        assert report.reachability_rewrites == 1
        where = [clause for clause in query.clauses
                 if isinstance(clause, ast.Where)][0]
        assert where.predicate.pattern.rels[0].reachability

    def test_shortest_path_is_not_marked(self):
        _query, report = plan_query(parse(
            "MATCH p = shortestPath((a) -[:calls*]-> (b)) "
            "RETURN distinct b"))
        assert report.reachability_rewrites == 0


class TestEligibilityHelper:
    def test_direct_call(self):
        clause = [c for c in parse(
            "MATCH (n) -[:calls*]-> (m) RETURN distinct m").clauses
            if isinstance(c, ast.Match)][0]
        assert len(reachability_eligible(clause)) == 1

    def test_fixed_length_rel_is_not_eligible(self):
        clause = [c for c in parse(
            "MATCH (n) -[:calls]-> (m) RETURN distinct m").clauses
            if isinstance(c, ast.Match)][0]
        assert reachability_eligible(clause) == []
