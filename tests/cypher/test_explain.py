"""EXPLAIN: plan descriptions mirror the matcher's actual choices."""

import pytest

from repro.cypher import CypherEngine
from repro.graphdb import PropertyGraph


@pytest.fixture
def engine():
    g = PropertyGraph()
    g.add_node("field", short_name="id", type="field")
    g.add_node("function", short_name="f", type="function")
    return CypherEngine(g)


class TestExplain:
    def test_start_clause(self, engine):
        plan = engine.explain(
            "START n=node:node_auto_index('short_name: x') RETURN n")
        assert "index query" in plan
        assert "'short_name: x'" in plan

    def test_bound_anchor(self, engine):
        plan = engine.explain(
            "START n=node(0) MATCH n -[:calls]-> m RETURN m")
        assert "via bound on n" in plan

    def test_index_seek_anchor(self, engine):
        plan = engine.explain(
            "MATCH (n:field{short_name: 'id'}) RETURN n")
        assert "index-seek on short_name = 'id'" in plan

    def test_label_scan_anchor(self, engine):
        plan = engine.explain("MATCH (n:field) RETURN n")
        assert "label-scan on field" in plan

    def test_all_nodes_anchor(self, engine):
        plan = engine.explain("MATCH n -[:calls]-> m RETURN n")
        assert "all-nodes" in plan

    def test_index_seek_off_falls_back(self, engine):
        scan_engine = CypherEngine(engine.view, use_index_seek=False)
        plan = scan_engine.explain(
            "MATCH (n:field{short_name: 'id'}) RETURN n")
        assert "label-scan" in plan
        assert "index-seek" not in plan

    def test_var_length_warning(self, engine):
        plan = engine.explain("MATCH n -[:calls*]-> m RETURN m")
        assert "path enumeration may explode" in plan
        assert "unbounded" in plan

    def test_bounded_var_length(self, engine):
        plan = engine.explain("MATCH n -[:calls*..3]-> m RETURN m")
        assert "max 3" in plan

    def test_shortest_path_strategy(self, engine):
        plan = engine.explain(
            "MATCH p = shortestPath((a{short_name:'id'}) -[:calls*]-> "
            "(b)) RETURN p")
        assert "BFS shortest path (single)" in plan
        assert "p = " in plan

    def test_pattern_predicate_count(self, engine):
        plan = engine.explain(
            "MATCH n WHERE n -[:calls]-> () AND NOT n -[:reads]-> () "
            "RETURN n")
        assert "2 pattern predicates" in plan

    def test_projection_notes(self, engine):
        plan = engine.explain(
            "MATCH n WITH distinct n.x AS x RETURN count(*)")
        assert "WITH n.x (distinct)" in plan
        assert "RETURN count(*) (aggregate)" in plan

    def test_optional_match_labeled(self, engine):
        plan = engine.explain(
            "MATCH n OPTIONAL MATCH n -[:calls]-> m RETURN m")
        assert "OPTIONAL MATCH" in plan

    def test_later_pattern_sees_with_bindings(self, engine):
        plan = engine.explain(
            "MATCH (a:field) WITH a MATCH a -[:calls]-> b RETURN b")
        lines = plan.splitlines()
        second_anchor = [line for line in lines
                         if "anchor" in line][-1]
        assert "bound on a" in second_anchor
