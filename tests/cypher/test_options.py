"""QueryOptions, the options= API and the positional-timeout shim."""

import pytest

from repro.core.frappe import Frappe
from repro.cypher import CypherEngine, QueryOptions
from repro.errors import QueryTimeoutError
from repro.graphdb import PropertyGraph


@pytest.fixture
def graph():
    g = PropertyGraph()
    functions = [g.add_node("function", short_name=f"fn{index}",
                            type="function") for index in range(6)]
    for source in functions:
        for target in functions:
            if source != target:
                g.add_edge(source, target, "calls")
    return g


@pytest.fixture
def engine(graph):
    return CypherEngine(graph)


class TestQueryOptions:
    def test_defaults(self):
        options = QueryOptions()
        assert options.timeout is None
        assert options.max_rows is None
        assert options.profile is False
        assert options.parameters is None

    def test_frozen(self):
        with pytest.raises(AttributeError):
            QueryOptions().timeout = 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryOptions(timeout=0)
        with pytest.raises(ValueError):
            QueryOptions(timeout=-1.0)
        with pytest.raises(ValueError):
            QueryOptions(max_rows=-1)
        QueryOptions(max_rows=0)  # zero rows is a valid cap

    def test_execution_mode_defaults_and_validation(self):
        options = QueryOptions()
        assert options.execution_mode is None  # defer to the engine
        assert options.morsel_size is None
        for mode in ("auto", "batch", "rows"):
            assert QueryOptions(execution_mode=mode).execution_mode \
                == mode
        with pytest.raises(ValueError):
            QueryOptions(execution_mode="vectorized")
        with pytest.raises(ValueError):
            QueryOptions(morsel_size=0)
        assert QueryOptions(morsel_size=1).morsel_size == 1


class TestOptionsOnRun:
    def test_plain_run_still_works(self, engine):
        result = engine.run("MATCH (n:function) RETURN n.short_name")
        assert len(result) == 6
        assert result.profile is None

    def test_max_rows_truncates(self, engine):
        result = engine.run("MATCH (n:function) RETURN n.short_name",
                            options=QueryOptions(max_rows=2))
        assert len(result) == 2
        assert result.stats.truncated
        assert result.stats.rows_produced == 2

    def test_max_rows_no_truncation_needed(self, engine):
        result = engine.run("MATCH (n:function) RETURN n.short_name",
                            options=QueryOptions(max_rows=100))
        assert len(result) == 6
        assert not result.stats.truncated

    def test_profile_option(self, engine):
        result = engine.run("MATCH (n:function) RETURN n",
                            options=QueryOptions(profile=True))
        assert result.profile is not None
        assert result.profile.name == "Query"

    def test_parameters_via_options(self, engine):
        result = engine.run(
            "MATCH (n:function) WHERE n.short_name = $name "
            "RETURN n.short_name",
            options=QueryOptions(parameters={"name": "fn3"}))
        assert result.rows == [("fn3",)]

    def test_explicit_parameters_beat_options(self, engine):
        result = engine.run(
            "MATCH (n:function) WHERE n.short_name = $name "
            "RETURN n.short_name",
            {"name": "fn1"},
            options=QueryOptions(parameters={"name": "fn3"}))
        assert result.rows == [("fn1",)]

    def test_options_timeout_enforced(self, engine):
        with pytest.raises(QueryTimeoutError):
            engine.run("MATCH n -[:calls*]-> m RETURN count(*)",
                       options=QueryOptions(timeout=1e-9))

    def test_explicit_timeout_beats_options(self, engine):
        # the generous keyword timeout must win over the tiny option
        result = engine.run("MATCH (n:function) RETURN n", timeout=60.0,
                            options=QueryOptions(timeout=1e-9))
        assert len(result) == 6


class TestDeprecatedPositionalTimeout:
    def test_engine_run_warns(self, engine):
        with pytest.warns(DeprecationWarning,
                          match="positionally is deprecated"):
            result = engine.run("MATCH (n:function) RETURN n", None,
                                60.0)
        assert len(result) == 6

    def test_positional_timeout_still_enforced(self, engine):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(QueryTimeoutError):
                engine.run("MATCH n -[:calls*]-> m RETURN count(*)",
                           None, 1e-9)

    def test_frappe_query_warns(self, graph):
        frappe = Frappe(graph)
        with pytest.warns(DeprecationWarning,
                          match="positionally is deprecated"):
            result = frappe.query("MATCH (n:function) RETURN n", None,
                                  60.0)
        assert len(result) == 6

    def test_keyword_timeout_does_not_warn(self, engine, recwarn):
        engine.run("MATCH (n:function) RETURN n", timeout=60.0)
        assert not [warning for warning in recwarn.list
                    if issubclass(warning.category, DeprecationWarning)]

    def test_double_timeout_rejected(self, engine):
        with pytest.raises(TypeError):
            engine.run("MATCH (n) RETURN n", None, 5.0, timeout=5.0)

    def test_too_many_positionals_rejected(self, engine):
        with pytest.raises(TypeError):
            engine.run("MATCH (n) RETURN n", None, 5.0, 6.0)


class TestFrappeOptions:
    def test_options_flow_through_facade(self, graph):
        frappe = Frappe(graph)
        result = frappe.query(
            "MATCH (n:function) RETURN n.short_name",
            options=QueryOptions(max_rows=3, profile=True))
        assert len(result) == 3
        assert result.stats.truncated
        assert result.profile is not None

    def test_execution_mode_flows_through_facade(self, graph):
        frappe = Frappe(graph, execution_mode="rows")
        text = "MATCH (n:function) RETURN count(n)"
        assert frappe.query(text).stats.execution_mode == "rows"
        forced = frappe.query(
            text, options=QueryOptions(execution_mode="batch",
                                       morsel_size=2))
        assert forced.stats.execution_mode == "batch"
