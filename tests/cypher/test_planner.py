"""The MATCH anchor planner: index seeks vs scans."""

import pytest

from repro.cypher import CypherEngine
from repro.graphdb import PropertyGraph


@pytest.fixture
def graph():
    g = PropertyGraph()
    for index in range(50):
        g.add_node("function", short_name=f"fn{index}", type="function")
    g.add_node("field", short_name="id", type="field")
    g.add_node("field", short_name="id", type="field")
    g.add_node("field", short_name="other", type="field")
    return g


class TestIndexSeek:
    def test_same_results_both_modes(self, graph):
        seek = CypherEngine(graph, use_index_seek=True)
        scan = CypherEngine(graph, use_index_seek=False)
        for query in (
                "MATCH (n:field{short_name: 'id'}) RETURN id(n)",
                "MATCH (n{short_name: 'fn7'}) RETURN id(n)",
                "MATCH (n{type: 'field', short_name: 'other'}) "
                "RETURN id(n)"):
            assert sorted(seek.run(query).rows) == \
                sorted(scan.run(query).rows)

    def test_seek_touches_fewer_candidates(self, graph):
        seek = CypherEngine(graph, use_index_seek=True)
        scan = CypherEngine(graph, use_index_seek=False)
        query = "MATCH (n{short_name: 'fn7'}) -[:calls]-> m RETURN m"
        seek_result = seek.run(query)
        scan_result = scan.run(query)
        # expansions counter includes candidate filtering work
        assert seek_result.stats.expansions <= \
            scan_result.stats.expansions

    def test_non_literal_property_falls_back(self, graph):
        # parameters are literals at runtime but not in the AST; the
        # planner must fall back to a scan yet produce equal answers
        seek = CypherEngine(graph, use_index_seek=True)
        result = seek.run(
            "MATCH (n:field{short_name: $name}) RETURN id(n)",
            parameters={"name": "id"})
        assert len(result) == 2

    def test_unindexed_key_falls_back(self, graph):
        graph.add_node("field", short_name="x", custom_key="special")
        seek = CypherEngine(graph, use_index_seek=True)
        result = seek.run(
            "MATCH (n{custom_key: 'special'}) RETURN n.short_name")
        assert result.values() == ["x"]

    def test_case_mismatch_filtered_exactly(self, graph):
        # the index is case-insensitive; node property equality is not
        graph.add_node("field", short_name="ID", type="field")
        seek = CypherEngine(graph, use_index_seek=True)
        result = seek.run(
            "MATCH (n:field{short_name: 'ID'}) RETURN n.short_name")
        assert result.values() == ["ID"]
