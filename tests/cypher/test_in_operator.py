"""The IN membership operator."""

import pytest

from repro.cypher import CypherEngine
from repro.errors import CypherSemanticError
from repro.graphdb import PropertyGraph


@pytest.fixture
def engine():
    g = PropertyGraph()
    g.add_node("struct", short_name="a", type="struct")
    g.add_node("union", short_name="b", type="union")
    g.add_node("enum_def", short_name="c", type="enum_def")
    g.add_node("function", short_name="d", type="function")
    return CypherEngine(g)


class TestIn:
    def test_membership_filter(self, engine):
        result = engine.run(
            "MATCH n WHERE n.type IN ['struct', 'union'] "
            "RETURN n.short_name ORDER BY n.short_name")
        assert result.values() == ["a", "b"]

    def test_not_in(self, engine):
        result = engine.run(
            "MATCH n WHERE NOT n.type IN ['function'] "
            "RETURN count(*)")
        assert result.value() == 3

    def test_in_with_numbers(self, engine):
        result = engine.run("MATCH n WHERE id(n) IN [0, 2] "
                            "RETURN count(*)")
        assert result.value() == 2

    def test_null_left_is_null(self, engine):
        result = engine.run(
            "MATCH n WHERE n.missing IN ['x'] RETURN n")
        assert len(result) == 0  # null predicate drops rows

    def test_null_in_list_is_unknown(self, engine):
        result = engine.run(
            "MATCH (n{short_name:'a'}) "
            "RETURN (n.type IN ['nope', null]) IS NULL")
        assert result.value() is True

    def test_found_despite_null_in_list(self, engine):
        result = engine.run(
            "MATCH (n{short_name:'a'}) "
            "RETURN n.type IN ['struct', null]")
        assert result.value() is True

    def test_non_list_right_rejected(self, engine):
        with pytest.raises(CypherSemanticError):
            engine.run("MATCH n WHERE n.type IN 'struct' RETURN n")


class TestDeadCodeQuery:
    def test_unreferenced_functions(self):
        from repro.core.frappe import Frappe
        frappe = Frappe.index_sources(
            {"m.c": "static int used(void) { return 1; }\n"
                    "static int orphan(void) { return 2; }\n"
                    "int (*slot)(void);\n"
                    "static int pointed(void) { return 3; }\n"
                    "int main(void) { slot = pointed; return used(); }\n"},
            "gcc m.c -c -o m.o")
        dead = frappe.dead_code()
        names = {frappe.view.node_property(n, "short_name")
                 for n in dead}
        assert names == {"orphan"}  # pointed is address-taken, main is entry
