"""Property-based tests (hypothesis) on core invariants.

Each class targets one load-bearing invariant:

* the disk store is a lossless codec for arbitrary property graphs,
* Cypher's variable-length closure agrees with BFS reachability,
* graph deltas replay to exactly the target graph,
* alignment never changes content, only identity,
* the treemap layout conserves area and never overlaps,
* recursive SQL agrees with graph reachability,
* edit distance behaves like a metric,
* snapshots stay frozen under arbitrary mutate/query/snapshot
  sequences (stateful machine vs a sequential model).
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis.stateful import (RuleBasedStateMachine, invariant,
                                 precondition, rule)

from repro.cypher import CypherEngine
from repro.graphdb import PropertyGraph, algo
from repro.graphdb.graph import clone_graph
from repro.graphdb.luceneql import edit_distance_at_most
from repro.graphdb.storage import GraphStore
from repro.graphdb.view import Direction
from repro.relational import Database, SqlEngine
from repro.relational.engine import load_graph_tables
from repro.versioned import align_graph, apply_delta, diff_graphs

# -- strategies --------------------------------------------------------------

scalars = st.one_of(
    st.integers(min_value=-2 ** 70, max_value=2 ** 70),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.text(max_size=20),
)
list_values = st.one_of(
    st.lists(st.integers(min_value=-1000, max_value=1000), max_size=5),
    st.lists(st.text(max_size=8), max_size=4),
    st.lists(st.booleans(), max_size=4),
)
property_maps = st.dictionaries(
    st.text(min_size=1, max_size=10,
            alphabet="abcdefghijklmnopqrstuvwxyz_"),
    st.one_of(scalars, list_values), max_size=4)
label_sets = st.lists(st.sampled_from(
    ["function", "file", "struct", "field", "macro", "symbol"]),
    max_size=3)


@st.composite
def graphs(draw, max_nodes=12, max_edges=24):
    graph = PropertyGraph()
    node_count = draw(st.integers(min_value=1, max_value=max_nodes))
    for _ in range(node_count):
        graph.add_node(*draw(label_sets),
                       properties=draw(property_maps))
    nodes = list(graph.node_ids())
    edge_count = draw(st.integers(min_value=0, max_value=max_edges))
    for _ in range(edge_count):
        source = draw(st.sampled_from(nodes))
        target = draw(st.sampled_from(nodes))
        edge_type = draw(st.sampled_from(["calls", "reads", "includes"]))
        graph.add_edge(source, target, edge_type,
                       properties=draw(property_maps))
    return graph


@st.composite
def dags(draw, max_nodes=10):
    """Random DAG over 'calls' edges (no cycles, so Cypher finishes)."""
    graph = PropertyGraph()
    node_count = draw(st.integers(min_value=2, max_value=max_nodes))
    for index in range(node_count):
        graph.add_node("function", short_name=f"f{index}")
    for source in range(node_count):
        for target in range(source + 1, node_count):
            if draw(st.booleans()):
                graph.add_edge(source, target, "calls")
    return graph


# -- store round trip -----------------------------------------------------------

class TestStoreRoundTrip:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(graph=graphs())
    def test_lossless(self, graph, tmp_path_factory):
        directory = str(tmp_path_factory.mktemp("h") / "store")
        GraphStore.write(graph, directory)
        with GraphStore.open(directory) as store:
            assert store.node_count() == graph.node_count()
            assert store.edge_count() == graph.edge_count()
            for node_id in graph.node_ids():
                assert store.node_labels(node_id) == \
                    graph.node_labels(node_id)
                assert store.node_properties(node_id) == \
                    pytest.approx(graph.node_properties(node_id))
            for edge_id in graph.edge_ids():
                assert store.edge_source(edge_id) == \
                    graph.edge_source(edge_id)
                assert store.edge_target(edge_id) == \
                    graph.edge_target(edge_id)
                assert store.edge_type(edge_id) == \
                    graph.edge_type(edge_id)
            for node_id in graph.node_ids():
                for direction in Direction:
                    assert sorted(store.edges_of(node_id, direction)) \
                        == sorted(graph.edges_of(node_id, direction))


# -- Cypher closure == BFS -----------------------------------------------------------

class TestCypherAgreesWithBfs:
    @settings(max_examples=30, deadline=None)
    @given(graph=dags())
    def test_var_length_closure(self, graph):
        engine = CypherEngine(graph)
        result = engine.run(
            "MATCH (n{short_name: 'f0'}) -[:calls*]-> m "
            "RETURN distinct id(m)")
        cypher_nodes = {row[0] for row in result.rows}
        native = algo.reachable_nodes(graph, 0, ("calls",),
                                      Direction.OUT)
        assert cypher_nodes == native

    @settings(max_examples=30, deadline=None)
    @given(graph=dags())
    def test_bounded_var_length(self, graph):
        engine = CypherEngine(graph)
        result = engine.run(
            "MATCH (n{short_name: 'f0'}) -[:calls*1..2]-> m "
            "RETURN distinct id(m)")
        cypher_nodes = {row[0] for row in result.rows}
        native = algo.reachable_nodes(graph, 0, ("calls",),
                                      Direction.OUT, max_depth=2)
        assert cypher_nodes == native


# -- deltas ---------------------------------------------------------------------------

class TestDeltaRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(old=graphs(), mutations=st.lists(
        st.tuples(st.sampled_from(["add_node", "remove_node", "add_edge",
                                   "set_prop"]),
                  st.integers(min_value=0, max_value=100)),
        max_size=6))
    def test_diff_apply_reproduces(self, old, mutations):
        new = clone_graph(old)
        for action, seed in mutations:
            nodes = list(new.node_ids())
            if action == "add_node":
                new.add_node("function", short_name=f"added{seed}")
            elif action == "remove_node" and len(nodes) > 1:
                new.remove_node(nodes[seed % len(nodes)])
            elif action == "add_edge" and nodes:
                new.add_edge(nodes[seed % len(nodes)],
                             nodes[(seed * 7) % len(nodes)], "calls")
            elif action == "set_prop" and nodes:
                new.set_node_property(nodes[seed % len(nodes)],
                                      "touched", seed)
        delta = diff_graphs(old, new)
        replayed = apply_delta(clone_graph(old), delta)
        assert diff_graphs(replayed, new).is_empty

    @settings(max_examples=25, deadline=None)
    @given(graph=graphs())
    def test_self_diff_empty(self, graph):
        assert diff_graphs(graph, clone_graph(graph)).is_empty


# -- alignment ---------------------------------------------------------------------------

class TestAlignment:
    @settings(max_examples=20, deadline=None)
    @given(graph=graphs())
    def test_align_to_self_is_identity(self, graph):
        aligned = align_graph(graph, clone_graph(graph))
        assert diff_graphs(graph, aligned).is_empty

    @settings(max_examples=20, deadline=None)
    @given(old=graphs(), new=graphs())
    def test_align_preserves_content(self, old, new):
        aligned = align_graph(old, new)
        assert aligned.node_count() == new.node_count()
        assert aligned.edge_count() == new.edge_count()

        def bag(view):
            return sorted(
                (tuple(sorted(view.node_labels(n))),
                 tuple(sorted(view.node_properties(n).items(),
                              key=lambda kv: kv[0])))
                for n in view.node_ids())

        def freeze(properties):
            return tuple(sorted(
                (key, tuple(value) if isinstance(value, list) else value)
                for key, value in properties.items()))

        old_bag = sorted((tuple(sorted(new.node_labels(n))),
                          freeze(new.node_properties(n)))
                         for n in new.node_ids())
        new_bag = sorted((tuple(sorted(aligned.node_labels(n))),
                          freeze(aligned.node_properties(n)))
                         for n in aligned.node_ids())
        assert old_bag == new_bag


# -- treemap --------------------------------------------------------------------------------

class TestTreemapInvariants:
    @settings(max_examples=40, deadline=None)
    @given(weights=st.lists(st.floats(min_value=0.1, max_value=100),
                            min_size=1, max_size=12))
    def test_areas_and_overlap(self, weights):
        from repro.codemap.hierarchy import CodeRegion
        from repro.codemap.layout import layout_map

        root = CodeRegion(0, "root", "directory")
        for index, weight in enumerate(weights):
            child = CodeRegion(index + 1, f"c{index}", "file",
                               weight=weight, depth=1)
            root.children.append(child)
        root.weight = sum(weights)
        box = layout_map(root, 100, 80, max_depth=1)
        total_child_area = sum(child.area for child in box.children)
        # children fill the padded interior: close to the full area
        assert total_child_area <= 100 * 80 + 1e-6
        assert total_child_area >= 0.9 * 100 * 80 * 0.96
        # pairwise disjoint
        for index, left in enumerate(box.children):
            for right in box.children[index + 1:]:
                overlap_w = min(left.x + left.width,
                                right.x + right.width) - max(left.x,
                                                             right.x)
                overlap_h = min(left.y + left.height,
                                right.y + right.height) - max(left.y,
                                                              right.y)
                assert overlap_w <= 1e-6 or overlap_h <= 1e-6
        # areas proportional to weights
        for child in box.children:
            expected = child.region.weight / root.weight
            actual = child.area / total_child_area
            assert actual == pytest.approx(expected, rel=1e-3)


# -- SQL reachability --------------------------------------------------------------------------

class TestSqlAgreesWithGraph:
    @settings(max_examples=20, deadline=None)
    @given(graph=dags(max_nodes=8))
    def test_recursive_closure(self, graph):
        database = Database()
        load_graph_tables(database, graph)
        engine = SqlEngine(database)
        result = engine.run("""
            WITH RECURSIVE reach(id) AS (
                SELECT e.dst FROM edges e WHERE e.src = 0
                UNION
                SELECT e.dst FROM reach r JOIN edges e ON e.src = r.id
            ) SELECT id FROM reach ORDER BY id""")
        assert set(result.values()) == algo.reachable_nodes(
            graph, 0, ("calls",), Direction.OUT)


# -- edit distance -----------------------------------------------------------------------------

class TestEditDistanceMetric:
    @settings(max_examples=60)
    @given(word=st.text(max_size=12))
    def test_identity(self, word):
        assert edit_distance_at_most(word, word, 0)

    @settings(max_examples=60)
    @given(left=st.text(max_size=10), right=st.text(max_size=10),
           limit=st.integers(min_value=0, max_value=4))
    def test_symmetry(self, left, right, limit):
        assert edit_distance_at_most(left, right, limit) == \
            edit_distance_at_most(right, left, limit)

    @settings(max_examples=60)
    @given(word=st.text(min_size=1, max_size=10),
           position=st.integers(min_value=0, max_value=9))
    def test_single_deletion_within_one(self, word, position):
        position = position % len(word)
        shorter = word[:position] + word[position + 1:]
        assert edit_distance_at_most(word, shorter, 1)

    @settings(max_examples=60)
    @given(left=st.text(max_size=10), right=st.text(max_size=10))
    def test_length_difference_lower_bound(self, left, right):
        gap = abs(len(left) - len(right))
        if gap > 0:
            assert not edit_distance_at_most(left, right, gap - 1)


# -- stateful snapshot isolation ----------------------------------------------------------------

class SnapshotIsolationMachine(RuleBasedStateMachine):
    """Random mutate/query/snapshot sequences vs a sequential model.

    Hypothesis drives arbitrary interleavings of ``add_node``,
    ``add_edge``, deletes, Cypher queries and ``snapshot()`` and
    shrinks any failure to a minimal op sequence.  The model is two
    plain dicts; every held snapshot is re-checked against the model
    state captured when it was pinned after *every* rule, so a
    copy-on-write bug anywhere (detach, index clone, shared adjacency)
    surfaces as a pinned snapshot drifting.
    """

    MODEL_QUERY = "MATCH (n:function) RETURN id(n), n.short_name"

    def __init__(self):
        super().__init__()
        self.graph = PropertyGraph()
        self.engine = CypherEngine(self.graph)
        self.nodes = {}   # node_id -> short_name (the model)
        self.edges = {}   # edge_id -> (source, target)
        self.held = []    # (snapshot, nodes-at-pin, edges-at-pin)
        self.fresh = 0

    # -- mutations ------------------------------------------------------

    @rule()
    def add_node(self):
        name = f"fn{self.fresh}"
        self.fresh += 1
        node_id = self.graph.add_node("function", short_name=name)
        self.nodes[node_id] = name

    @precondition(lambda self: self.nodes)
    @rule(seed=st.integers(min_value=0, max_value=10 ** 6))
    def add_edge(self, seed):
        ids = sorted(self.nodes)
        source = ids[seed % len(ids)]
        target = ids[(seed * 7) % len(ids)]
        edge_id = self.graph.add_edge(source, target, "calls")
        self.edges[edge_id] = (source, target)

    @precondition(lambda self: self.nodes)
    @rule(seed=st.integers(min_value=0, max_value=10 ** 6))
    def remove_node(self, seed):
        ids = sorted(self.nodes)
        victim = ids[seed % len(ids)]
        self.graph.remove_node(victim)
        del self.nodes[victim]
        self.edges = {edge_id: (source, target)
                      for edge_id, (source, target) in self.edges.items()
                      if victim not in (source, target)}

    @precondition(lambda self: self.edges)
    @rule(seed=st.integers(min_value=0, max_value=10 ** 6))
    def remove_edge(self, seed):
        ids = sorted(self.edges)
        victim = ids[seed % len(ids)]
        self.graph.remove_edge(victim)
        del self.edges[victim]

    @precondition(lambda self: self.nodes)
    @rule(seed=st.integers(min_value=0, max_value=10 ** 6))
    def rename_node(self, seed):
        ids = sorted(self.nodes)
        victim = ids[seed % len(ids)]
        name = f"renamed{self.fresh}"
        self.fresh += 1
        self.graph.set_node_property(victim, "short_name", name)
        self.nodes[victim] = name

    # -- observations ---------------------------------------------------

    @rule()
    def take_snapshot(self):
        snap = self.graph.snapshot()
        self.held.append((snap, dict(self.nodes), dict(self.edges)))
        if len(self.held) > 4:  # bound memory, keep old epochs alive
            self.held.pop(0)

    @rule()
    def query(self):
        result = self.engine.run(self.MODEL_QUERY)
        assert sorted(result.rows) == sorted(self.nodes.items())
        # a query on the live graph pins the *current* epoch
        assert result.stats.epoch == self.graph.statistics.epoch

    # -- the isolation invariant ----------------------------------------

    @invariant()
    def held_snapshots_never_move(self):
        for snap, nodes, edges in self.held:
            got_nodes = {
                node_id: snap.node_property(node_id, "short_name")
                for node_id in snap.node_ids()}
            assert got_nodes == nodes
            got_edges = {
                edge_id: (snap.edge_source(edge_id),
                          snap.edge_target(edge_id))
                for edge_id in snap.edge_ids()}
            assert got_edges == edges

    @invariant()
    def model_matches_graph(self):
        assert self.graph.node_count() == len(self.nodes)
        assert self.graph.edge_count() == len(self.edges)


SnapshotIsolationMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)
TestSnapshotIsolation = SnapshotIsolationMachine.TestCase
