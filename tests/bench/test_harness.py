"""The cold/warm measurement protocol."""

import pytest

from repro.bench import harness
from repro.errors import QueryTimeoutError


class TestTiming:
    def test_stats(self):
        timing = harness.Timing([1.0, 2.0, 3.0])
        assert timing.min == 1.0
        assert timing.avg == 2.0
        assert timing.max == 3.0
        assert "1.0" in timing.row()


class TestBenchScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("FRAPPE_BENCH_SCALE", raising=False)
        assert harness.bench_scale(0.5) == 0.5

    def test_override(self, monkeypatch):
        monkeypatch.setenv("FRAPPE_BENCH_SCALE", "0.25")
        assert harness.bench_scale() == 0.25

    def test_invalid_override(self, monkeypatch):
        monkeypatch.setenv("FRAPPE_BENCH_SCALE", "-1")
        with pytest.raises(ValueError):
            harness.bench_scale()


class TestRunColdWarm:
    def test_counts_and_runs(self):
        calls = {"query": 0, "evict": 0}

        def query():
            calls["query"] += 1
            return [1, 2, 3]

        def evict():
            calls["evict"] += 1

        result = harness.run_cold_warm("t", query, evict, runs=4)
        assert not result.aborted
        assert result.result_count == 3
        assert calls["evict"] == 4            # once per cold run
        assert calls["query"] == 4 + 1 + 4    # cold + settle + warm
        assert len(result.cold.samples_ms) == 4
        assert len(result.warm.samples_ms) == 4

    def test_timeout_becomes_aborted(self):
        def query():
            raise QueryTimeoutError(0.5)

        result = harness.run_cold_warm("t", query, lambda: None, runs=2,
                                       abort_after=0.5)
        assert result.aborted
        assert result.abort_after_seconds == 0.5
        assert "aborted" in result.format_row()

    def test_wall_clock_abort(self):
        import time

        def query():
            time.sleep(0.02)
            return []

        result = harness.run_cold_warm("t", query, lambda: None, runs=1,
                                       abort_after=0.001)
        assert result.aborted

    def test_custom_result_counter(self):
        result = harness.run_cold_warm(
            "t", lambda: 42, lambda: None, runs=1,
            count_results=lambda value: value)
        assert result.result_count == 42

    def test_format_row(self):
        result = harness.run_cold_warm("named", lambda: [1],
                                       lambda: None, runs=1)
        row = result.format_row()
        assert "named" in row
        assert "cold" in row and "warm" in row and "results 1" in row
        assert "pc-hit" not in row  # no hooks, no ratio columns

    def test_observability_hooks(self):
        # sampled after each of the two cold runs, then once warm
        ratios = iter([0.10, 0.25, 0.99])
        resets = {"count": 0}
        result = harness.run_cold_warm(
            "t", lambda: [1], lambda: None, runs=2,
            hit_ratio=lambda: next(ratios, 0.99),
            reset_counters=lambda: resets.__setitem__(
                "count", resets["count"] + 1),
            top_operator=lambda: "VarLengthExpand")
        assert resets["count"] == 1  # once, before the warm runs
        assert result.cold_hit_ratio == 0.25
        assert result.warm_hit_ratio == 0.99
        assert result.top_operator == "VarLengthExpand"
        row = result.format_row()
        assert "pc-hit 0.25/0.99" in row
        assert "top VarLengthExpand" in row

    def test_top_operator_timeout_is_tolerated(self):
        def top():
            raise QueryTimeoutError(0.5)

        result = harness.run_cold_warm("t", lambda: [1], lambda: None,
                                       runs=1, top_operator=top)
        assert not result.aborted
        assert result.top_operator is None


class TestTables:
    def test_print_table(self, capsys):
        rows = [harness.run_cold_warm("q1", lambda: [], lambda: None,
                                      runs=1)]
        table = harness.print_table("Table 5", rows)
        captured = capsys.readouterr().out
        assert "Table 5" in table
        assert "q1" in captured

    def test_print_kv_table(self, capsys):
        table = harness.print_kv_table("Table 3", [("Node count", 10),
                                                   ("Edge count", 80)])
        assert "Node count" in table
        assert "80" in capsys.readouterr().out
