"""C parser: declarations, declarators, statements, expressions."""

import pytest

from repro.errors import ParseError
from repro.lang import cast as c
from repro.lang import ctypes_ as ct
from repro.lang import lexer
from repro.lang.parser import parse_tokens


def parse(code, typedefs=None):
    return parse_tokens(lexer.tokenize(code, 0), "t.c", typedefs)


def first(code, typedefs=None):
    return parse(code, typedefs).declarations[0]


class TestDeclarations:
    def test_global_int(self):
        decl = first("int x;")
        assert isinstance(decl, c.VarDecl)
        assert decl.name == "x"
        assert decl.type == ct.Primitive("int")
        assert decl.is_file_scope

    def test_multiple_declarators(self):
        decls = parse("int a, *b, c[3];").declarations
        assert [d.name for d in decls] == ["a", "b", "c"]
        assert isinstance(decls[1].type, ct.Pointer)
        assert isinstance(decls[2].type, ct.Array)

    def test_storage_classes(self):
        assert first("static int x;").storage == "static"
        assert first("extern int x;").storage == "extern"

    def test_initializer(self):
        decl = first("int x = 1 + 2;")
        assert isinstance(decl.initializer, c.Binary)

    def test_init_list(self):
        decl = first("int a[3] = {1, 2, 3};")
        assert isinstance(decl.initializer, c.InitList)
        assert len(decl.initializer.items) == 3

    def test_designated_initializers_tolerated(self):
        decl = first("struct pt { int x; int y; } p = {.x = 1, .y = 2};")
        # the record decl comes first; find the var
        decls = parse(
            "struct pt { int x; int y; };"
            "struct pt p = {.x = 1, .y = 2};").declarations
        var = decls[-1]
        assert isinstance(var.initializer, c.InitList)

    def test_implicit_int_rejected_without_specifiers(self):
        with pytest.raises(ParseError):
            parse("foo;")

    def test_typedef_registers_name(self):
        decls = parse("typedef unsigned long size_t; size_t n;")
        var = decls.declarations[1]
        assert isinstance(var.type, ct.TypedefType)
        assert var.type.name == "size_t"


class TestDeclarators:
    def test_pointer_to_pointer(self):
        decl = first("char **argv;")
        assert ct.qualifier_code(decl.type) == "**"

    def test_array_of_pointers_vs_pointer_to_array(self):
        array_of_pointers = first("int *a[4];")
        assert isinstance(array_of_pointers.type, ct.Array)
        assert isinstance(array_of_pointers.type.element, ct.Pointer)
        pointer_to_array = first("int (*a)[4];")
        assert isinstance(pointer_to_array.type, ct.Pointer)
        assert isinstance(pointer_to_array.type.pointee, ct.Array)

    def test_multidimensional_array(self):
        decl = first("int m[2][3];")
        assert ct.array_lengths(decl.type) == [2, 3]

    def test_function_pointer(self):
        decl = first("int (*handler)(int, char *);")
        assert isinstance(decl.type, ct.Pointer)
        assert isinstance(decl.type.pointee, ct.FunctionType)
        assert len(decl.type.pointee.parameters) == 2

    def test_qualified_pointer(self):
        decl = first("const char * const p;")
        assert isinstance(decl.type, ct.Pointer)
        assert decl.type.qualifiers.const
        assert decl.type.pointee.qualifiers.const

    def test_array_dimension_constant_expr(self):
        decl = first("int a[4 * 2];")
        assert decl.type.length == 8

    def test_incomplete_array(self):
        decl = first("extern int a[];")
        assert decl.type.length is None


class TestFunctions:
    def test_prototype(self):
        decl = first("int f(int a, char *b);")
        assert isinstance(decl, c.FunctionDecl)
        assert [p.name for p in decl.parameters] == ["a", "b"]
        assert not decl.variadic

    def test_variadic(self):
        decl = first("int printf(const char *fmt, ...);")
        assert decl.variadic

    def test_void_parameter_list(self):
        decl = first("int f(void);")
        assert decl.parameters == []

    def test_definition_with_body(self):
        decl = first("int f(int a) { return a; }")
        assert isinstance(decl, c.FunctionDef)
        assert isinstance(decl.body.body[0], c.ReturnStmt)

    def test_static_inline(self):
        decl = first("static inline int f(void) { return 0; }")
        assert decl.storage == "static"
        assert decl.inline

    def test_unnamed_parameters(self):
        decl = first("int f(int, char);")
        assert [p.name for p in decl.parameters] == [None, None]

    def test_function_returning_pointer(self):
        decl = first("char *strdup(const char *s);")
        assert isinstance(decl.type.return_type, ct.Pointer)


class TestRecordsAndEnums:
    def test_struct_definition(self):
        decls = parse("struct point { int x; int y; };").declarations
        record = decls[0]
        assert isinstance(record, c.RecordDecl)
        assert record.kind == "struct"
        assert [f.name for f in record.fields] == ["x", "y"]

    def test_union(self):
        record = first("union u { int i; float f; };")
        assert record.kind == "union"

    def test_forward_declaration(self):
        record = first("struct opaque;")
        assert not record.is_definition

    def test_bitfields(self):
        record = first("struct flags { int a : 1; int : 2; int b : 3; };")
        widths = [f.bit_width for f in record.fields]
        assert widths == [1, 2, 3]
        assert record.fields[1].name is None

    def test_nested_struct(self):
        decls = parse(
            "struct outer { struct inner { int x; } in; int y; };"
        ).declarations
        tags = [d.tag for d in decls if isinstance(d, c.RecordDecl)]
        assert "inner" in tags and "outer" in tags

    def test_struct_variable_combined(self):
        decls = parse("struct p { int x; } origin;").declarations
        assert isinstance(decls[0], c.RecordDecl)
        assert isinstance(decls[1], c.VarDecl)
        assert isinstance(decls[1].type, ct.RecordType)

    def test_enum_values(self):
        enum = first("enum e { A, B = 10, C };")
        assert [(x.name, x.value) for x in enum.enumerators] == \
            [("A", 0), ("B", 10), ("C", 11)]

    def test_enum_value_references_previous(self):
        enum = first("enum e { A = 4, B = A * 2 };")
        assert enum.enumerators[1].value == 8


class TestStatements:
    def _body(self, code):
        return first(f"void f(int n) {{ {code} }}").body.body

    def test_if_else(self):
        stmt = self._body("if (n) n = 1; else n = 2;")[0]
        assert isinstance(stmt, c.IfStmt)
        assert stmt.else_branch is not None

    def test_loops(self):
        body = self._body(
            "while (n) n--; do n++; while (n < 3); "
            "for (n = 0; n < 5; n++) continue;")
        assert isinstance(body[0], c.WhileStmt)
        assert isinstance(body[1], c.DoStmt)
        assert isinstance(body[2], c.ForStmt)

    def test_for_with_declaration(self):
        stmt = self._body("for (int i = 0; i < 3; i++) break;")[0]
        assert isinstance(stmt.init, c.DeclStmt)

    def test_switch(self):
        stmt = self._body(
            "switch (n) { case 1: break; default: break; }")[0]
        assert isinstance(stmt, c.SwitchStmt)

    def test_goto_and_label(self):
        body = self._body("goto done; done: n = 0;")
        assert isinstance(body[0], c.GotoStmt)
        assert isinstance(body[1], c.LabelStmt)

    def test_locals(self):
        stmt = self._body("int a = 1, b;")[0]
        assert isinstance(stmt, c.DeclStmt)
        assert [d.name for d in stmt.declarations] == ["a", "b"]

    def test_static_local(self):
        stmt = self._body("static int cache;")[0]
        assert stmt.declarations[0].storage == "static"

    def test_empty_statement(self):
        assert isinstance(self._body(";")[0], c.EmptyStmt)


class TestExpressions:
    def _expr(self, code):
        body = first(f"void f(int n, int *p) {{ x = {code}; }}").body.body
        return body[0].expression.value

    def test_precedence(self):
        expression = self._expr("1 + 2 * 3")
        assert expression.op == "+"
        assert expression.right.op == "*"

    def test_comparison_and_logic(self):
        expression = self._expr("a < b && c == d || e")
        assert expression.op == "||"
        assert expression.left.op == "&&"

    def test_assignment_ops(self):
        body = first("void f(void) { a += 1; b <<= 2; }").body.body
        assert body[0].expression.op == "+="
        assert body[1].expression.op == "<<="

    def test_ternary(self):
        assert isinstance(self._expr("a ? b : c"), c.Conditional)

    def test_cast(self):
        expression = self._expr("(unsigned char)n")
        assert isinstance(expression, c.Cast)
        assert expression.type == ct.Primitive("unsigned char")

    def test_cast_vs_parenthesized(self):
        assert isinstance(self._expr("(n) + 1"), c.Binary)

    def test_sizeof_expression(self):
        expression = self._expr("sizeof n")
        assert isinstance(expression, c.Unary)
        assert expression.op == "sizeof"

    def test_sizeof_type(self):
        expression = self._expr("sizeof(struct s)")
        assert isinstance(expression, c.SizeofType)

    def test_alignof(self):
        expression = self._expr("_Alignof(int)")
        assert expression.op == "_Alignof"

    def test_member_chain(self):
        expression = self._expr("a.b->c")
        assert isinstance(expression, c.Member)
        assert expression.arrow
        assert expression.base.name == "b"

    def test_call_with_args(self):
        expression = self._expr("f(1, g(2), h)")
        assert isinstance(expression, c.Call)
        assert len(expression.arguments) == 3

    def test_index(self):
        assert isinstance(self._expr("p[3]"), c.Index)

    def test_address_and_deref(self):
        assert self._expr("&n").op == "&"
        assert self._expr("*p").op == "*"

    def test_pre_post_increment(self):
        assert self._expr("++n").op == "++"
        assert self._expr("n++").op == "post++"

    def test_comma(self):
        assert isinstance(self._expr("(a, b)"), c.Comma)

    def test_string_concatenation(self):
        expression = self._expr('"ab" "cd"')
        assert expression.value == "abcd"

    def test_char_and_float_literals(self):
        assert self._expr("'x'").value == 120
        assert self._expr("2.5").value == 2.5

    def test_expression_ranges(self):
        expression = self._expr("foo(1)")
        assert expression.range.start_column > 0
        assert expression.range.end_line >= expression.range.start_line


class TestGnuExtensions:
    def test_attribute_skipped(self):
        decl = first("int x __attribute__((aligned(8)));")
        assert decl.name == "x"

    def test_attribute_on_function(self):
        decl = first(
            "static int f(void) __attribute__((unused));")
        assert isinstance(decl, c.FunctionDecl)


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int x")

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("void f(void) { int a;")

    def test_bad_expression(self):
        with pytest.raises(ParseError):
            parse("int x = ;")

    def test_error_carries_location(self):
        with pytest.raises(ParseError) as info:
            parse("int x = \n;")
        assert info.value.line == 2
