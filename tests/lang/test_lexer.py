"""C tokenizer."""

import pytest

from repro.errors import LexError
from repro.lang import lexer


def toks(code):
    return [t for t in lexer.tokenize(code, 0) if t.kind != lexer.EOF]


def texts(code):
    return [t.text for t in toks(code)]


class TestBasics:
    def test_identifiers_and_keywords(self):
        tokens = toks("int foo _bar x9")
        assert [t.kind for t in tokens] == [lexer.IDENT] * 4
        assert tokens[0].is_keyword
        assert not tokens[1].is_keyword

    def test_numbers(self):
        assert texts("42 0x1F 010 0b101 3.5 1e10 2.5f 42UL") == \
            ["42", "0x1F", "010", "0b101", "3.5", "1e10", "2.5f", "42UL"]

    def test_strings_and_chars(self):
        tokens = toks(r'"hello\n" \'a\' L"wide"'.replace("\\'", "'"))
        assert tokens[0].kind == lexer.STRING
        assert tokens[1].kind == lexer.CHAR
        assert tokens[2].kind == lexer.STRING

    def test_three_char_punctuation(self):
        assert texts("a <<= b >>= c ...") == \
            ["a", "<<=", "b", ">>=", "c", "..."]

    def test_two_char_punctuation(self):
        assert texts("-> ++ -- << >> <= >= == != && || ##") == \
            ["->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
             "&&", "||", "##"]

    def test_positions(self):
        tokens = toks("ab cd\n  ef")
        assert [(t.line, t.column) for t in tokens] == \
            [(1, 1), (1, 4), (2, 3)]

    def test_end_column(self):
        token = toks("hello")[0]
        assert token.end_column == 5


class TestCommentsAndContinuations:
    def test_line_comment(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x */ b") == ["a", "b"]

    def test_multiline_block_comment_advances_lines(self):
        tokens = toks("a /* 1\n2\n3 */ b")
        assert tokens[1].line == 3

    def test_backslash_newline_spliced(self):
        tokens = toks("ab\\\ncd")
        # splice joins physical lines; tokens continue on the next line
        assert texts("ab \\\n cd") == ["ab", "cd"]

    def test_directive_hash_detection(self):
        tokens = toks("#define X 1\nint a = X;")
        assert tokens[0].kind == lexer.DIRECTIVE_HASH
        # '#' not at line start is plain punctuation
        tokens = toks("a # b")
        assert tokens[1].kind == lexer.PUNCT


class TestErrors:
    def test_invalid_character(self):
        with pytest.raises(LexError):
            toks("int @")

    def test_unterminated_string_is_error(self):
        with pytest.raises(LexError):
            toks('"abc\n')


class TestLiteralHelpers:
    @pytest.mark.parametrize("text,value", [
        ("42", 42), ("0x1F", 31), ("010", 8), ("0b101", 5),
        ("42UL", 42), ("0", 0), ("1llu", 1),
    ])
    def test_int_literals(self, text, value):
        assert lexer.parse_int_literal(text) == value

    def test_bad_int_literal(self):
        with pytest.raises(LexError):
            lexer.parse_int_literal("abc")

    @pytest.mark.parametrize("text,value", [
        ("'a'", 97), (r"'\n'", 10), (r"'\0'", 0), (r"'\x41'", 65),
        (r"'\101'", 65), ("L'a'", 97),
    ])
    def test_char_literals(self, text, value):
        assert lexer.parse_char_literal(text) == value

    @pytest.mark.parametrize("text,expected", [
        ("3.5", True), ("1e10", True), ("42", False), ("0x1F", False),
        ("2.5f", True),
    ])
    def test_is_float(self, text, expected):
        assert lexer.is_float_literal(text) is expected

    def test_string_value(self):
        assert lexer.string_literal_value(r'"a\nb\x41"') == "a\nbA"
