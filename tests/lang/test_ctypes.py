"""C type model and the Table 2 QUALIFIERS coding."""

import pytest

from repro.lang import ctypes_ as ct


class TestQualifierCode:
    def test_plain(self):
        assert ct.qualifier_code(ct.Primitive("int")) == ""

    def test_pointer_to_pointer(self):
        # the paper's Figure 2: char **argv codes as '**'
        argv = ct.Pointer(ct.Pointer(ct.Primitive("char")))
        assert ct.qualifier_code(argv) == "**"

    def test_const_int(self):
        assert ct.qualifier_code(
            ct.Primitive("int", ct.Qualifiers(const=True))) == "c"

    def test_array_of_const(self):
        array = ct.Array(ct.Primitive("int", ct.Qualifiers(const=True)), 4)
        assert ct.qualifier_code(array) == "]c"

    def test_const_pointer_to_volatile(self):
        pointer = ct.Pointer(
            ct.Primitive("int", ct.Qualifiers(volatile=True)),
            ct.Qualifiers(const=True))
        assert ct.qualifier_code(pointer) == "*cv"

    def test_restrict(self):
        pointer = ct.Pointer(ct.Primitive("char"),
                             ct.Qualifiers(restrict=True))
        assert ct.qualifier_code(pointer) == "*r"

    def test_array_of_pointers(self):
        t = ct.Array(ct.Pointer(ct.Primitive("int")), 4)
        assert ct.qualifier_code(t) == "]*"

    def test_through_typedef(self):
        t = ct.TypedefType("ptr_t", ct.Pointer(ct.Primitive("int")))
        assert ct.qualifier_code(t) == "*"


class TestArrayLengths:
    def test_multidimensional(self):
        t = ct.Array(ct.Array(ct.Primitive("int"), 3), 2)
        assert ct.array_lengths(t) == [2, 3]

    def test_incomplete_dimension_is_zero(self):
        assert ct.array_lengths(ct.Array(ct.Primitive("int"), None)) == [0]

    def test_non_array(self):
        assert ct.array_lengths(ct.Primitive("int")) == []

    def test_array_behind_pointer(self):
        t = ct.Pointer(ct.Array(ct.Primitive("int"), 5))
        assert ct.array_lengths(t) == [5]


class TestBaseType:
    def test_peels_pointers_and_arrays(self):
        t = ct.Array(ct.Pointer(ct.Pointer(ct.Primitive("char"))), 4)
        assert ct.base_type(t) == ct.Primitive("char")

    def test_peels_function_to_return_type(self):
        t = ct.FunctionType(ct.Pointer(ct.RecordType("struct", "s")), ())
        assert ct.base_type(t) == ct.RecordType("struct", "s")

    def test_strips_typedefs(self):
        t = ct.TypedefType("myint", ct.Primitive("int"))
        assert ct.base_type(t) == ct.Primitive("int")


class TestStripTypedefs:
    def test_merges_qualifiers(self):
        t = ct.TypedefType("cint", ct.Primitive("int"),
                           ct.Qualifiers(const=True))
        stripped = ct.strip_typedefs(t)
        assert stripped.qualifiers.const

    def test_nested_typedefs(self):
        inner = ct.TypedefType("a_t", ct.Primitive("int"))
        outer = ct.TypedefType("b_t", inner)
        assert ct.strip_typedefs(outer) == ct.Primitive("int")


class TestSpellings:
    def test_function_type(self):
        t = ct.FunctionType(ct.Primitive("int"),
                            (ct.Primitive("char"),), True)
        assert t.spelled() == "int (char, ...)"

    def test_void_function(self):
        t = ct.FunctionType(ct.Primitive("int"), ())
        assert t.spelled() == "int (void)"

    def test_record(self):
        assert ct.RecordType("struct", "task").spelled() == "struct task"

    def test_qualified_primitive(self):
        t = ct.Primitive("int", ct.Qualifiers(const=True, volatile=True))
        assert t.spelled() == "const volatile int"


class TestMergePrimitiveWords:
    @pytest.mark.parametrize("words,expected", [
        (["int"], "int"),
        (["unsigned"], "unsigned int"),
        (["unsigned", "int"], "unsigned int"),
        (["signed", "int"], "int"),
        (["long"], "long"),
        (["long", "long"], "long long"),
        (["unsigned", "long", "long", "int"], "unsigned long long"),
        (["short"], "short"),
        (["unsigned", "short"], "unsigned short"),
        (["char"], "char"),
        (["signed", "char"], "signed char"),
        (["unsigned", "char"], "unsigned char"),
        (["long", "double"], "long double"),
        (["double"], "double"),
        (["void"], "void"),
        (["_Bool"], "_Bool"),
    ])
    def test_cases(self, words, expected):
        assert ct.merge_primitive_words(words) == expected

    def test_canonicalization_gives_one_int_hub(self):
        # the paper's Figure 7 hubs depend on 'int' being one node
        assert ct.merge_primitive_words(["int"]) == \
            ct.merge_primitive_words(["signed", "int"]) == \
            ct.merge_primitive_words(["signed"]) == "int"
