"""Semantic analysis: scoping, resolution, USRs, decl/def pairing."""


from repro.lang import cast as c
from repro.lang import ctypes_ as ct
from repro.lang import lexer
from repro.lang.parser import parse_tokens
from repro.lang.sema import analyze


def info_for(code, path="t.c"):
    return analyze(parse_tokens(lexer.tokenize(code, 0), path))


def idents(info, function_name):
    function = next(d for d in info.tu.declarations
                    if isinstance(d, c.FunctionDef)
                    and d.name == function_name)
    return {e.name: e.symbol for e in c.walk_expressions(function.body)
            if isinstance(e, c.Identifier)}


class TestScoping:
    def test_parameter_resolution(self):
        info = info_for("int f(int a) { return a; }")
        assert idents(info, "f")["a"].kind == "parameter"

    def test_local_shadows_global(self):
        info = info_for("int x; int f(void) { int x; return x; }")
        assert idents(info, "f")["x"].kind == "local"

    def test_global_visible_in_function(self):
        info = info_for("int g; int f(void) { return g; }")
        assert idents(info, "f")["g"].kind == "global"

    def test_block_scope(self):
        code = """
        int f(int n) {
            if (n) { int inner = 1; n = inner; }
            return n;
        }
        """
        info = info_for(code)
        assert idents(info, "f")["inner"].kind == "local"

    def test_for_loop_scope(self):
        info = info_for(
            "int f(void) { for (int i = 0; i < 3; i++) {} return 0; }")
        assert idents(info, "f")["i"].kind == "local"

    def test_static_local(self):
        info = info_for("int f(void) { static int c; return c; }")
        assert idents(info, "f")["c"].kind == "static_local"

    def test_enumerator_resolution(self):
        info = info_for("enum e { GREEN }; int f(void) { return GREEN; }")
        assert idents(info, "f")["GREEN"].kind == "enumerator"

    def test_unresolved_identifier_is_none(self):
        info = info_for("int f(void) { return mystery; }")
        assert idents(info, "f")["mystery"] is None

    def test_implicit_function(self):
        info = info_for("int f(void) { return undeclared(1); }")
        symbol = idents(info, "f")["undeclared"]
        assert symbol.kind == "function_decl"
        assert symbol.implicit


class TestMemberResolution:
    def _members(self, code, function="f"):
        info = info_for(code)
        fn = next(d for d in info.tu.declarations
                  if isinstance(d, c.FunctionDef) and d.name == function)
        return {e.name: e.resolved_field
                for e in c.walk_expressions(fn.body)
                if isinstance(e, c.Member)}

    def test_dot_access(self):
        members = self._members(
            "struct s { int x; }; int f(void) { struct s v; "
            "return v.x; }")
        assert members["x"].qualified_name == "s::x"

    def test_arrow_access(self):
        members = self._members(
            "struct s { int x; }; int f(struct s *p) { return p->x; }")
        assert members["x"].qualified_name == "s::x"

    def test_through_typedef(self):
        members = self._members(
            "struct s { int x; }; typedef struct s s_t; "
            "int f(s_t *p) { return p->x; }")
        assert members["x"].qualified_name == "s::x"

    def test_nested_access(self):
        members = self._members(
            "struct in { int v; }; struct out { struct in i; }; "
            "int f(void) { struct out o; return o.i.v; }")
        assert members["v"].qualified_name == "in::v"
        assert members["i"].qualified_name == "out::i"

    def test_unique_name_fallback(self):
        # base type unknown (e.g. opaque) but field name is unique
        members = self._members(
            "struct s { int unique_field; }; "
            "int f(void) { return mystery()->unique_field; }")
        assert members["unique_field"] is not None

    def test_field_through_array(self):
        members = self._members(
            "struct s { int x; }; "
            "int f(void) { struct s a[3]; return a[0].x; }")
        assert members["x"].qualified_name == "s::x"


class TestDeclarationPairing:
    def test_prototype_matched_to_definition(self):
        info = info_for("int f(int); int f(int a) { return a; }")
        decl = info.function_decls[0]
        assert decl.matched_definition is info.functions[0]

    def test_extern_global_matched(self):
        info = info_for("extern int g; int g = 4;")
        assert info.global_decls[0].matched_definition is info.globals[0]

    def test_unmatched_prototype(self):
        info = info_for("int external_thing(void);")
        assert info.function_decls[0].matched_definition is None


class TestLinkageAndUsrs:
    def test_static_function_internal_usr(self):
        info_a = info_for("static int f(void) { return 0; }", path="a.c")
        info_b = info_for("static int f(void) { return 1; }", path="b.c")
        assert info_a.functions[0].usr != info_b.functions[0].usr

    def test_external_function_shared_usr(self):
        info_a = info_for("int f(void) { return 0; }", path="a.c")
        info_b = info_for("int f(void);", path="b.c")
        assert info_a.functions[0].usr == info_b.function_decls[0].usr

    def test_exports_and_imports(self):
        info = info_for(
            "int mine(void) { return other(); } extern int used;")
        assert "mine" in info.exported
        assert "other" in info.imported
        assert "used" in info.imported

    def test_in_unit_definition_not_imported(self):
        info = info_for("int f(int); int f(int a) { return a; }")
        assert "f" not in info.imported

    def test_static_not_exported(self):
        info = info_for("static int f(void) { return 0; }")
        assert "f" not in info.exported


class TestSymbolProperties:
    def test_qualified_name_of_field(self):
        info = info_for("struct s { int x; };")
        assert info.fields[0].qualified_name == "s::x"

    def test_enumerator_value(self):
        info = info_for("enum e { A = 7 };")
        assert info.enumerators[0].value == 7

    def test_parameter_position(self):
        info = info_for("int f(int a, int b) { return b; }")
        params = [s for s in info.symbols if s.kind == "parameter"]
        assert [(p.name, p.position) for p in params] == \
            [("a", 0), ("b", 1)]

    def test_variadic_flag(self):
        info = info_for("int printf(const char *f, ...);")
        assert info.function_decls[0].variadic

    def test_typedef_resolution(self):
        info = info_for("typedef unsigned long ulong_t; ulong_t v;")
        var = info.globals[0]
        assert isinstance(var.type, ct.TypedefType)
        assert ct.strip_typedefs(var.type) == \
            ct.Primitive("unsigned long")

    def test_anonymous_record_gets_tag(self):
        info = info_for("struct { int x; } v;")
        assert info.records[0].name.startswith("<anon")

    def test_record_fields_map(self):
        info = info_for("struct s { int a; int b; };")
        record = info.records[0]
        assert [f.name for f in info.record_fields[record.usr]] == \
            ["a", "b"]
