"""Preprocessor: directives, macro expansion, provenance events."""

import pytest

from repro.errors import PreprocessorError
from repro.lang.preprocessor import Preprocessor
from repro.lang.source import FileRegistry, VirtualFileSystem


def preprocess(files, main="main.c", include_paths=(), predefined=None,
               ignore_missing=False):
    registry = FileRegistry(VirtualFileSystem(files))
    pp = Preprocessor(registry, include_paths, predefined,
                      ignore_missing_includes=ignore_missing)
    return pp.preprocess(main), registry


def token_text(unit):
    return " ".join(t.text for t in unit.tokens if t.kind != "eof")


class TestIncludes:
    def test_quoted_include_relative(self):
        unit, reg = preprocess({
            "dir/main.c": '#include "util.h"\nint b;',
            "dir/util.h": "int a;",
        }, main="dir/main.c")
        assert token_text(unit) == "int a ; int b ;"
        assert len(unit.includes) == 1

    def test_angled_include_uses_include_paths(self):
        unit, _ = preprocess({
            "main.c": "#include <lib.h>\n",
            "include/lib.h": "int x;",
        }, include_paths=["include"])
        assert token_text(unit) == "int x ;"
        assert unit.includes[0].angled

    def test_include_guard(self):
        unit, _ = preprocess({
            "main.c": '#include "h.h"\n#include "h.h"\n',
            "h.h": "#ifndef H\n#define H\nint once;\n#endif\n",
        })
        assert token_text(unit) == "int once ;"
        assert len(unit.includes) == 2  # both includes recorded

    def test_missing_include_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess({"main.c": '#include "nope.h"\n'})

    def test_missing_include_tolerated(self):
        unit, _ = preprocess({"main.c": '#include <sys/nope.h>\nint a;'},
                             ignore_missing=True)
        assert unit.missing_includes[0].name == "sys/nope.h"
        assert token_text(unit) == "int a ;"

    def test_include_cycle_detected(self):
        with pytest.raises(PreprocessorError):
            preprocess({
                "main.c": '#include "a.h"\n',
                "a.h": '#include "b.h"\n',
                "b.h": '#include "a.h"\n',
            })

    def test_nested_include_ids(self):
        unit, reg = preprocess({
            "main.c": '#include "a.h"\n',
            "a.h": '#include "b.h"\nint a;',
            "b.h": "int b;",
        })
        assert [(e.including_file_id, e.included_file_id)
                for e in unit.includes] == [(0, 1), (1, 2)]


class TestObjectMacros:
    def test_simple_replacement(self):
        unit, _ = preprocess({"main.c": "#define N 4\nint a = N;"})
        assert token_text(unit) == "int a = 4 ;"

    def test_chained_expansion(self):
        unit, _ = preprocess({
            "main.c": "#define A B\n#define B 7\nint a = A;"})
        assert token_text(unit) == "int a = 7 ;"

    def test_self_reference_no_loop(self):
        unit, _ = preprocess({"main.c": "#define X X + 1\nint a = X;"})
        assert token_text(unit) == "int a = X + 1 ;"

    def test_undef(self):
        unit, _ = preprocess({
            "main.c": "#define N 4\n#undef N\nint a = N;"})
        assert token_text(unit) == "int a = N ;"

    def test_predefined(self):
        unit, _ = preprocess({"main.c": "int v = VALUE;"},
                             predefined={"VALUE": "99"})
        assert token_text(unit) == "int v = 99 ;"

    def test_expansion_event_recorded(self):
        unit, _ = preprocess({"main.c": "#define N 4\nint a = N;"})
        assert [(e.macro_name, e.parent_macro)
                for e in unit.expansions] == [("N", None)]

    def test_nested_expansion_parent(self):
        unit, _ = preprocess({
            "main.c": "#define INNER 1\n#define OUTER INNER\n"
                      "int a = OUTER;"})
        parents = {e.macro_name: e.parent_macro for e in unit.expansions}
        assert parents["OUTER"] is None
        assert parents["INNER"] == "OUTER"

    def test_tokens_tagged_in_macro(self):
        unit, _ = preprocess({"main.c": "#define N 4\nint a = N;"})
        tagged = [t for t in unit.tokens if t.from_macro]
        assert [t.text for t in tagged] == ["4"]


class TestFunctionMacros:
    def test_basic_substitution(self):
        unit, _ = preprocess({
            "main.c": "#define SQ(x) ((x)*(x))\nint a = SQ(3);"})
        assert token_text(unit) == "int a = ( ( 3 ) * ( 3 ) ) ;"

    def test_multiple_parameters(self):
        unit, _ = preprocess({
            "main.c": "#define ADD(a, b) (a + b)\nint x = ADD(1, 2);"})
        assert token_text(unit) == "int x = ( 1 + 2 ) ;"

    def test_name_without_parens_not_expanded(self):
        unit, _ = preprocess({
            "main.c": "#define F(x) x\nint F;\nint a = F(2);"})
        assert token_text(unit) == "int F ; int a = 2 ;"

    def test_nested_call_arguments(self):
        unit, _ = preprocess({
            "main.c": "#define ID(x) x\nint a = ID(f(1, 2));"})
        assert token_text(unit) == "int a = f ( 1 , 2 ) ;"

    def test_stringify(self):
        unit, _ = preprocess({
            "main.c": '#define STR(x) #x\nchar *s = STR(a b);'})
        assert '"a b"' in token_text(unit)

    def test_paste(self):
        unit, _ = preprocess({
            "main.c": "#define GLUE(a, b) a##b\nint GLUE(x, 1);"})
        assert token_text(unit) == "int x1 ;"

    def test_variadic(self):
        unit, _ = preprocess({
            "main.c": "#define LOG(f, ...) printf(f, __VA_ARGS__)\n"
                      "void g(void) { LOG(\"%d\", 1, 2); }"})
        assert "printf ( \"%d\" , 1 , 2 )" in token_text(unit)

    def test_empty_argument_list(self):
        unit, _ = preprocess({
            "main.c": "#define NOP() do {} while (0)\n"
                      "void f(void) { NOP(); }"})
        assert "do { } while ( 0 )" in token_text(unit)

    def test_argument_pre_expansion(self):
        unit, _ = preprocess({
            "main.c": "#define N 3\n#define ID(x) x\nint a = ID(N);"})
        assert token_text(unit) == "int a = 3 ;"

    def test_space_before_paren_is_object_like(self):
        unit, _ = preprocess({
            "main.c": "#define F (1)\nint a = F;"})
        assert token_text(unit) == "int a = ( 1 ) ;"

    def test_wrong_arity_rejected(self):
        with pytest.raises(PreprocessorError):
            preprocess({
                "main.c": "#define TWO(a, b) a\nint x = TWO(1, 2, 3);"})


class TestConditionals:
    def test_ifdef(self):
        unit, _ = preprocess({
            "main.c": "#define ON 1\n#ifdef ON\nint a;\n#endif\n"
                      "#ifdef OFF\nint b;\n#endif\n"})
        assert token_text(unit) == "int a ;"

    def test_ifndef(self):
        unit, _ = preprocess({
            "main.c": "#ifndef OFF\nint a;\n#endif\n"})
        assert token_text(unit) == "int a ;"

    def test_if_arithmetic(self):
        unit, _ = preprocess({
            "main.c": "#define N 8\n#if N * 2 > 15\nint big;\n#else\n"
                      "int small;\n#endif\n"})
        assert token_text(unit) == "int big ;"

    def test_elif_chain(self):
        unit, _ = preprocess({
            "main.c": "#define V 2\n#if V == 1\nint one;\n"
                      "#elif V == 2\nint two;\n#elif V == 3\nint three;\n"
                      "#else\nint other;\n#endif\n"})
        assert token_text(unit) == "int two ;"

    def test_defined_operator(self):
        unit, _ = preprocess({
            "main.c": "#define A 1\n#if defined(A) && !defined B\n"
                      "int yes;\n#endif\n"})
        assert token_text(unit) == "int yes ;"

    def test_nested_conditionals(self):
        unit, _ = preprocess({
            "main.c": "#if 1\n#if 0\nint no;\n#else\nint yes;\n#endif\n"
                      "#endif\n"})
        assert token_text(unit) == "int yes ;"

    def test_inactive_branch_not_processed(self):
        unit, _ = preprocess({
            "main.c": "#if 0\n#include \"missing.h\"\n#error nope\n"
                      "#endif\nint ok;\n"})
        assert token_text(unit) == "int ok ;"

    def test_unknown_identifier_is_zero(self):
        unit, _ = preprocess({
            "main.c": "#if UNKNOWN\nint a;\n#else\nint b;\n#endif\n"})
        assert token_text(unit) == "int b ;"

    def test_ternary_in_condition(self):
        unit, _ = preprocess({
            "main.c": "#if 1 ? 2 : 0\nint a;\n#endif\n"})
        assert token_text(unit) == "int a ;"

    def test_interrogation_events(self):
        unit, _ = preprocess({
            "main.c": "#ifdef A\n#endif\n#ifndef B\n#endif\n"
                      "#if defined(C)\n#endif\n"})
        assert [e.macro_name for e in unit.interrogations] == \
            ["A", "B", "C"]

    def test_unterminated_if_rejected(self):
        with pytest.raises(PreprocessorError):
            preprocess({"main.c": "#if 1\nint a;\n"})

    def test_stray_endif_rejected(self):
        with pytest.raises(PreprocessorError):
            preprocess({"main.c": "#endif\n"})

    def test_else_after_else_rejected(self):
        with pytest.raises(PreprocessorError):
            preprocess({
                "main.c": "#if 1\n#else\n#else\n#endif\n"})


class TestOtherDirectives:
    def test_error_directive(self):
        with pytest.raises(PreprocessorError):
            preprocess({"main.c": "#error broken build\n"})

    def test_pragma_ignored(self):
        unit, _ = preprocess({"main.c": "#pragma once\nint a;\n"})
        assert token_text(unit) == "int a ;"

    def test_null_directive(self):
        unit, _ = preprocess({"main.c": "#\nint a;\n"})
        assert token_text(unit) == "int a ;"

    def test_unknown_directive_rejected(self):
        with pytest.raises(PreprocessorError):
            preprocess({"main.c": "#frobnicate\n"})

    def test_macro_definitions_recorded(self):
        unit, _ = preprocess({
            "main.c": "#define A 1\n#define F(x) x\n"})
        definitions = {m.name: m for m in unit.macro_definitions}
        assert definitions["A"].is_function_like is False
        assert definitions["F"].parameters == ("x",)
