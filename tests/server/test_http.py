"""End-to-end HTTP serving tests (in-process executor backend)."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.config import StoreConfig
from repro.core.frappe import Frappe
from repro.client import FrappeClient
from repro.cypher import QueryOptions, Result
from repro.errors import (AdmissionError, CypherSyntaxError,
                          QueryTimeoutError)
from repro.server.http import ExecutorBackend, HttpServer

COUNT_QUERY = "MATCH (n:function) RETURN count(*) AS n"
SLOW_QUERY = "MATCH (a)-[:calls*]->(b) RETURN count(*)"


@pytest.fixture(scope="module")
def server(saved_store):
    frappe = Frappe.open(saved_store, config=StoreConfig(mmap=True))
    backend = ExecutorBackend(frappe, workers=2, queue_capacity=4,
                              max_per_client=2)
    with HttpServer(backend) as running:
        yield running


@pytest.fixture()
def client(server):
    with FrappeClient(port=server.port, client_id="pytest") as c:
        yield c


def http_get(server, path):
    try:
        response = urllib.request.urlopen(server.url + path, timeout=10)
        return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def http_post(server, path, body, headers=None):
    request = urllib.request.Request(
        server.url + path, data=body,
        headers={"Content-Type": "application/json", **(headers or {})})
    try:
        response = urllib.request.urlopen(request, timeout=10)
        return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


class TestQueryEndpoint:
    def test_query_roundtrip(self, client, saved_store):
        over_http = client.query(COUNT_QUERY)
        assert isinstance(over_http, Result)
        with Frappe.open(saved_store) as frappe:
            assert over_http.value() == frappe.query(COUNT_QUERY).value()
        assert over_http.columns == ["n"]
        assert over_http.stats.db_hits >= 0

    def test_parameters_travel(self, client):
        result = client.query(
            "MATCH (n:function) WHERE n.short_name = $name "
            "RETURN count(*)",
            parameters={"name": "no_such_function_xyz"})
        assert result.value() == 0

    def test_profile_travels_back(self, client):
        result = client.query(COUNT_QUERY,
                              options=QueryOptions(profile=True))
        assert result.profile is not None
        assert result.profile.total_db_hits() > 0

    def test_streaming_rows(self, client):
        rows = list(client.stream(
            "MATCH (n:function) RETURN n.short_name LIMIT 7"))
        assert len(rows) == 7
        assert all("n.short_name" in row for row in rows)
        assert client.last_stats is not None
        assert client.last_stats["rows_produced"] >= 7

    def test_response_is_chunked_ndjson(self, server):
        request = urllib.request.Request(
            server.url + "/v1/query",
            data=json.dumps({"query": COUNT_QUERY}).encode(),
            headers={"Content-Type": "application/json"})
        response = urllib.request.urlopen(request, timeout=10)
        assert response.headers["Content-Type"] == \
            "application/x-ndjson"
        frames = [json.loads(line)
                  for line in response.read().splitlines()]
        assert "columns" in frames[0]
        assert "summary" in frames[-1]


class TestErrorMapping:
    def test_syntax_error_is_400(self, server, client):
        status, body = http_post(
            server, "/v1/query",
            json.dumps({"query": "MATCH ((("}).encode())
        assert status == 400
        with pytest.raises(CypherSyntaxError):
            client.query("MATCH (((")

    def test_unknown_option_is_400(self, server):
        status, body = http_post(
            server, "/v1/query",
            json.dumps({"query": "RETURN 1",
                        "options": {"max_row": 5}}).encode())
        assert status == 400
        assert "max_row" in json.loads(body)["error"]["message"]

    def test_timeout_is_504(self, server, client):
        body = json.dumps({"query": SLOW_QUERY,
                           "options": {"timeout": 0.0001}}).encode()
        status, payload = http_post(server, "/v1/query", body)
        assert status == 504
        assert json.loads(payload)["error"]["type"] == \
            "QueryTimeoutError"
        with pytest.raises(QueryTimeoutError):
            client.query(SLOW_QUERY, timeout=0.0001)

    def test_quota_exhaustion_is_429_with_retry_after(self, server):
        # enough concurrent slow queries from one identity to overflow
        # its fair share (max_per_client=2) and/or the queue (4)
        outcomes = []
        lock = threading.Lock()

        def spam():
            body = json.dumps(
                {"query": SLOW_QUERY,
                 "options": {"timeout": 5.0}}).encode()
            status, _, headers = _post_with_headers(
                server, body, client_id="greedy")
            with lock:
                outcomes.append((status, headers.get("Retry-After")))

        def _post_with_headers(server, body, client_id):
            request = urllib.request.Request(
                server.url + "/v1/query", data=body,
                headers={"Content-Type": "application/json",
                         "X-Frappe-Client": client_id})
            try:
                response = urllib.request.urlopen(request, timeout=30)
                return response.status, response.read(), \
                    response.headers
            except urllib.error.HTTPError as error:
                return error.code, error.read(), error.headers

        threads = [threading.Thread(target=spam) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        rejected = [entry for entry in outcomes if entry[0] == 429]
        assert rejected, f"no 429 in {outcomes}"
        assert all(retry == "1" for _, retry in rejected)

    def test_client_raises_admission_error(self, server):
        # serially saturate the fair share, then observe the 429 as a
        # typed AdmissionError on a second connection
        hold = FrappeClient(port=server.port, client_id="holder")
        blockers = []
        try:
            import http.client as http_client_mod
            for _ in range(2):
                conn = http_client_mod.HTTPConnection(
                    "127.0.0.1", server.port, timeout=30)
                conn.request(
                    "POST", "/v1/query",
                    body=json.dumps(
                        {"query": SLOW_QUERY,
                         "options": {"timeout": 10.0}}).encode(),
                    headers={"X-Frappe-Client": "holder"})
                blockers.append(conn)
            import time
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                try:
                    hold.query(COUNT_QUERY)
                except AdmissionError:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("fair share never filled")
        finally:
            for conn in blockers:
                conn.close()
            hold.close()


class TestHealthAndMetrics:
    def test_health(self, server):
        status, body = http_get(server, "/v1/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["mode"] == "in-process"
        assert body["replicas"]["alive"] == 1

    def test_metrics_counts_requests(self, server, client):
        client.query(COUNT_QUERY)
        status, body = http_get(server, "/v1/metrics")
        assert status == 200
        assert body["server"]["http.requests"] >= 1
        assert body["server"]["server.completed"] >= 1

    def test_client_helpers(self, client):
        assert client.health()["status"] == "ok"
        assert "server" in client.metrics()


class TestHttpProtocol:
    def test_unknown_route_is_404(self, server):
        status, body = http_get(server, "/v2/query")
        assert status == 404
        assert body["error"]["type"] == "NotFound"

    def test_wrong_method_is_405(self, server):
        status, body = http_get(server, "/v1/query")
        assert status == 405
        assert body["error"]["type"] == "MethodNotAllowed"

    def test_non_json_body_is_400(self, server):
        status, body = http_post(server, "/v1/query", b"MATCH (n)")
        assert status == 400
        assert json.loads(body)["error"]["type"] == "WireFormatError"

    def test_oversized_body_is_413(self, server):
        status, _ = http_post(server, "/v1/query",
                              b"x" * (2 << 20))
        assert status == 413

    def test_keep_alive_reuses_connection(self, client):
        first = client.query(COUNT_QUERY)
        second = client.query(COUNT_QUERY)
        assert first.value() == second.value()


class TestLifecycle:
    def test_stop_then_connection_refused(self, saved_store):
        frappe = Frappe.open(saved_store)
        backend = ExecutorBackend(frappe, workers=1)
        server = HttpServer(backend).start_background()
        with FrappeClient(port=server.port) as probe:
            assert probe.health()["status"] == "ok"
        server.stop()
        with pytest.raises(OSError):
            urllib.request.urlopen(server.url + "/v1/health",
                                   timeout=2)
