"""The concurrent serving executor: admission, deadlines, metering."""

import threading
import time

import pytest

from repro.core.frappe import Frappe
from repro.cypher import QueryOptions, Result
from repro.errors import (AdmissionError, ExecutorShutdownError,
                          QueryTimeoutError, ServerClosedError)
from repro.graphdb import PropertyGraph
from repro.obs import Observability
from repro.server import Executor


class Gate:
    """A runner whose jobs block until released (controls the pool)."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.calls = []
        self.lock = threading.Lock()

    def __call__(self, text, options=None):
        with self.lock:
            self.calls.append((text, options))
        self.started.set()
        if not self.release.wait(timeout=10.0):
            raise TimeoutError("gate never released")
        if options is not None and options.timeout is not None \
                and options.timeout < 1e-6:
            raise QueryTimeoutError(options.timeout)
        return text.upper()


def make_executor(runner, **kwargs):
    kwargs.setdefault("obs", Observability())
    return Executor(runner, **kwargs)


class TestBasics:
    def test_submit_resolves_future(self):
        with make_executor(lambda text, options=None: text * 2,
                           workers=2) as executor:
            future = executor.submit("ab")
            assert future.result(timeout=5.0) == "abab"

    def test_map_preserves_order(self):
        with make_executor(lambda text, options=None: text.upper(),
                           workers=4) as executor:
            futures = executor.map(["a", "b", "c"])
            assert [f.result(timeout=5.0) for f in futures] == \
                ["A", "B", "C"]

    def test_runner_error_lands_on_future(self):
        def boom(text, options=None):
            raise ValueError("bad query")

        with make_executor(boom, workers=1) as executor:
            future = executor.submit("x")
            with pytest.raises(ValueError, match="bad query"):
                future.result(timeout=5.0)

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            Executor(print, workers=0)
        with pytest.raises(ValueError):
            Executor(print, queue_capacity=0)
        with pytest.raises(ValueError):
            Executor(print, max_per_client=0)


class TestAdmission:
    def test_queue_full_backpressure(self):
        gate = Gate()
        executor = make_executor(gate, workers=1, queue_capacity=2,
                                 max_per_client=100)
        try:
            first = executor.submit("running")
            gate.started.wait(timeout=5.0)
            executor.submit("queued-1")
            executor.submit("queued-2")
            with pytest.raises(AdmissionError, match="queue full"):
                executor.submit("overflow")
            snapshot = executor._submitted  # noqa: SLF001
            assert snapshot.value == 3
            assert executor._rejected.value == 1  # noqa: SLF001
        finally:
            gate.release.set()
            executor.shutdown(wait=True)
        assert first.result(timeout=5.0) == "RUNNING"

    def test_fair_share_per_client(self):
        gate = Gate()
        executor = make_executor(gate, workers=1, queue_capacity=10,
                                 max_per_client=2)
        try:
            executor.submit("a", client="greedy")
            gate.started.wait(timeout=5.0)
            executor.submit("b", client="greedy")
            with pytest.raises(AdmissionError) as excinfo:
                executor.submit("c", client="greedy")
            assert excinfo.value.client == "greedy"
            # another client still gets in: the queue has room
            other = executor.submit("d", client="polite")
            assert executor.in_flight("greedy") == 2
            assert executor.in_flight("polite") == 1
        finally:
            gate.release.set()
            executor.shutdown(wait=True)
        assert other.result(timeout=5.0) == "D"
        assert executor.in_flight("greedy") == 0

    def test_default_fair_share_derived(self):
        executor = make_executor(print, queue_capacity=64)
        try:
            assert executor.max_per_client == 16
        finally:
            executor.shutdown(wait=True)

    def test_submit_after_shutdown(self):
        executor = make_executor(lambda text, options=None: text)
        executor.shutdown(wait=True)
        with pytest.raises(ExecutorShutdownError):
            executor.submit("late")

    def test_cancel_while_queued(self):
        gate = Gate()
        executor = make_executor(gate, workers=1, queue_capacity=10)
        try:
            executor.submit("running")
            gate.started.wait(timeout=5.0)
            queued = executor.submit("victim")
            assert queued.cancel()
        finally:
            gate.release.set()
            executor.shutdown(wait=True)
        assert queued.cancelled()
        # the cancelled job never reached the runner
        assert all(text != "victim" for text, _ in gate.calls)


class TestCloseDrain:
    """Regression: close() must drain the queue deterministically.

    shutdown() runs the backlog to completion; close() instead fails
    every queued-but-not-running future with ServerClosedError — a
    caller blocked in future.result() returns immediately instead of
    hanging on jobs no worker will ever pick up.
    """

    def test_queued_futures_raise_server_closed(self):
        gate = Gate()
        executor = make_executor(gate, workers=1, queue_capacity=10,
                                 max_per_client=10)
        running = executor.submit("running")
        assert gate.started.wait(timeout=5.0)
        queued = [executor.submit(f"queued-{i}") for i in range(3)]
        closer = threading.Thread(
            target=executor.close, kwargs={"wait": True})
        closer.start()
        # drained futures resolve before the in-flight query finishes
        for future in queued:
            with pytest.raises(ServerClosedError):
                future.result(timeout=5.0)
        gate.release.set()
        closer.join(timeout=5.0)
        assert not closer.is_alive()
        # the job a worker already held still ran to completion
        assert running.result(timeout=5.0) == "RUNNING"
        assert [text for text, _ in gate.calls] == ["running"]

    def test_close_refuses_new_submissions(self):
        executor = make_executor(lambda text, options=None: text)
        executor.close(wait=True)
        with pytest.raises(ExecutorShutdownError):
            executor.submit("late")

    def test_drained_jobs_release_fair_share_accounting(self):
        gate = Gate()
        executor = make_executor(gate, workers=1, queue_capacity=10,
                                 max_per_client=5)
        executor.submit("running", client="alice")
        assert gate.started.wait(timeout=5.0)
        for index in range(3):
            executor.submit(f"queued-{index}", client="alice")
        assert executor.in_flight("alice") == 4
        gate.release.set()
        executor.close(wait=True)
        assert executor.in_flight("alice") == 0
        assert executor.queued == 0

    def test_cancelled_job_stays_cancelled_through_close(self):
        gate = Gate()
        executor = make_executor(gate, workers=1, queue_capacity=10)
        executor.submit("running")
        assert gate.started.wait(timeout=5.0)
        queued = executor.submit("victim")
        assert queued.cancel()
        gate.release.set()
        executor.close(wait=True)
        assert queued.cancelled()

    def test_close_meters_drained_counter(self):
        gate = Gate()
        obs = Observability()
        executor = Executor(gate, workers=1, queue_capacity=10,
                            obs=obs)
        executor.submit("running")
        assert gate.started.wait(timeout=5.0)
        executor.submit("queued")
        gate.release.set()
        executor.close(wait=True)
        assert obs.registry.snapshot().counter("server.drained") == 1


class TestSpawnTask:
    """Morsel tasks (ISSUE 8): fractions of an already-admitted query
    offered to the pool. They bypass admission, workers prefer them
    over new jobs, and result() helps instead of deadlocking."""

    def test_task_runs_on_a_worker(self):
        obs = Observability()
        with make_executor(lambda text, options=None: text,
                           workers=2, obs=obs) as executor:
            handle = executor.spawn_task(lambda: 41 + 1)
            assert handle.result() == 42
            snapshot = obs.registry.snapshot()
            assert snapshot.counter("server.tasks_spawned") == 1

    def test_task_error_propagates(self):
        with make_executor(lambda text, options=None: text,
                           workers=2) as executor:
            def boom():
                raise ValueError("morsel exploded")
            handle = executor.spawn_task(boom)
            with pytest.raises(ValueError, match="morsel exploded"):
                handle.result()

    def test_caller_helps_when_pool_is_saturated(self):
        # every worker is wedged behind the gate: result() must claim
        # and run the task on the calling thread, not deadlock
        gate = Gate()
        executor = make_executor(gate, workers=1, queue_capacity=10)
        try:
            blocked = executor.submit("blocked")
            assert gate.started.wait(timeout=5.0)
            ran_on = []
            handle = executor.spawn_task(
                lambda: ran_on.append(threading.current_thread().name)
                or "done")
            assert handle.result() == "done"
            assert ran_on == [threading.current_thread().name]
        finally:
            gate.release.set()
            assert blocked.result(timeout=5.0) == "BLOCKED"
            executor.close(wait=True)

    def test_task_runs_once_under_racing_result_calls(self):
        with make_executor(lambda text, options=None: text,
                           workers=4) as executor:
            runs = []
            lock = threading.Lock()

            def task():
                with lock:
                    runs.append(1)
                return len(runs)

            handles = [executor.spawn_task(task) for _ in range(8)]
            results = []
            threads = [threading.Thread(
                target=lambda h=h: results.append(h.result()))
                for h in handles]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
            assert len(runs) == 8  # each task exactly once

    def test_spawn_after_close_still_completes(self):
        executor = make_executor(lambda text, options=None: text,
                                 workers=1)
        executor.close(wait=True)
        # no worker will ever claim it; caller-help covers it
        handle = executor.spawn_task(lambda: "late")
        assert handle.result() == "late"


class TestDeadlines:
    def test_queue_wait_counts_against_budget(self):
        # with the only worker blocked, a queued query's budget drains
        # while it waits; the runner must receive the reduced remainder
        gate = Gate()
        executor = make_executor(gate, workers=1, queue_capacity=10)
        try:
            executor.submit("blocker")
            gate.started.wait(timeout=5.0)
            queued = executor.submit(
                "waiter", QueryOptions(timeout=30.0))
            time.sleep(0.05)
        finally:
            gate.release.set()
        queued.result(timeout=5.0)
        executor.shutdown(wait=True)
        options = dict(gate.calls)["waiter"]
        assert options.timeout < 30.0
        assert options.timeout > 29.0

    def test_budget_expired_in_queue_times_out(self):
        gate = Gate()
        executor = make_executor(gate, workers=1, queue_capacity=10)
        try:
            executor.submit("blocker")
            gate.started.wait(timeout=5.0)
            doomed = executor.submit(
                "doomed", QueryOptions(timeout=0.01))
            time.sleep(0.05)  # budget gone while queued
        finally:
            gate.release.set()
        with pytest.raises(QueryTimeoutError):
            doomed.result(timeout=5.0)
        executor.shutdown(wait=True)
        assert executor._timeouts.value == 1  # noqa: SLF001

    def test_no_timeout_passes_options_through(self):
        gate = Gate()
        executor = make_executor(gate, workers=1)
        gate.release.set()
        try:
            options = QueryOptions(max_rows=7)
            executor.submit("q", options).result(timeout=5.0)
        finally:
            executor.shutdown(wait=True)
        assert dict(gate.calls)["q"] is options


class TestMetering:
    def test_counters_and_wait_histogram(self):
        obs = Observability()
        executor = Executor(lambda text, options=None: text,
                            workers=2, obs=obs)
        try:
            futures = executor.map(["a", "b", "c"])
            for future in futures:
                future.result(timeout=5.0)
        finally:
            executor.shutdown(wait=True)
        snapshot = obs.registry.snapshot()
        assert snapshot.counter("server.submitted") == 3
        assert snapshot.counter("server.completed") == 3
        assert snapshot.counter("server.failed") == 0
        assert snapshot.histogram("server.queue_wait_seconds").count \
            == 3
        assert snapshot.gauge("server.active_workers") == 0
        assert snapshot.gauge("server.queue_depth") == 0

    def test_unmetered_executor_works(self):
        executor = Executor(lambda text, options=None: text, workers=1)
        try:
            assert executor.submit("q").result(timeout=5.0) == "q"
        finally:
            executor.shutdown(wait=True)


class TestFrappeIntegration:
    @pytest.fixture
    def frappe(self):
        graph = PropertyGraph()
        for name in ("alpha", "beta", "gamma"):
            graph.add_node("function", short_name=name, type="function")
        instance = Frappe(graph)
        yield instance
        instance.close()

    QUERY = "MATCH (n:function) RETURN n.short_name ORDER BY n.short_name"

    def test_query_async_matches_sync(self, frappe):
        sync = frappe.query(self.QUERY)
        result = frappe.query_async(self.QUERY).result(timeout=5.0)
        assert isinstance(result, Result)
        assert result.values() == sync.values()
        assert result.stats.epoch == sync.stats.epoch

    def test_concurrent_submitters(self, frappe):
        frappe.serve(workers=4)
        futures = [frappe.query_async(self.QUERY, client=f"c{i % 3}")
                   for i in range(24)]
        values = [future.result(timeout=10.0).values()
                  for future in futures]
        assert all(v == ["alpha", "beta", "gamma"] for v in values)
        snapshot = frappe.counters()
        assert snapshot.counter("server.completed") == 24
        assert snapshot.counter("query.count") == 24

    def test_serve_shape_fixed_by_first_call(self, frappe):
        executor = frappe.serve(workers=2)
        assert frappe.serve(workers=8) is executor
        assert executor.workers == 2

    def test_close_shuts_executor_down(self, frappe):
        executor = frappe.serve(workers=1)
        frappe.close()
        with pytest.raises(ExecutorShutdownError):
            executor.submit(self.QUERY)
        # the facade itself serves again with a fresh pool
        result = frappe.query_async(self.QUERY).result(timeout=5.0)
        assert result.values() == ["alpha", "beta", "gamma"]

    def test_query_async_while_writing(self, frappe):
        # a writer keeps mutating while queries are in flight; every
        # result must be internally consistent (snapshot-isolated)
        frappe.serve(workers=4)
        stop = threading.Event()

        def writer():
            index = 0
            while not stop.is_set():
                frappe.view.add_node("function",
                                     short_name=f"late{index:03d}",
                                     type="function")
                index += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            futures = [frappe.query_async(
                "MATCH (n:function) RETURN count(*)",
                client=f"reader-{index % 4}")
                for index in range(20)]
            counts = [future.result(timeout=10.0).value()
                      for future in futures]
        finally:
            stop.set()
            thread.join()
        assert all(count >= 3 for count in counts)


class TestTaskDrain:
    """Regression (ISSUE 9): close() during a scatter must not leave
    gathered partials unreleased.

    Before the fix, close() only drained the admission queue; spawned
    task handles stayed on the task deque forever, so a gatherer that
    had not yet collected them blocked in result() (or, with
    caller-help, silently ran partials on a closed server). Now every
    unclaimed handle resolves with ServerClosedError and is metered.
    """

    def test_close_drains_unclaimed_tasks(self):
        gate = Gate()
        obs = Observability()
        executor = Executor(gate, workers=1, queue_capacity=10,
                            obs=obs)
        blocked = executor.submit("blocked")
        assert gate.started.wait(timeout=5.0)
        ran = []
        handles = [executor.spawn_task(
            lambda index=index: ran.append(index))
            for index in range(3)]
        executor.close(wait=False)
        for handle in handles:
            with pytest.raises(ServerClosedError):
                handle.result()
        assert ran == []  # drained, not run via caller-help
        snapshot = obs.registry.snapshot()
        assert snapshot.counter("server.tasks_drained") == 3
        gate.release.set()
        assert blocked.result(timeout=5.0) == "BLOCKED"
        executor.close(wait=True)

    def test_cancel_releases_unclaimed_task(self):
        gate = Gate()
        executor = make_executor(gate, workers=1, queue_capacity=10)
        try:
            wedge = executor.submit("wedge")
            assert gate.started.wait(timeout=5.0)
            ran = []
            handle = executor.spawn_task(lambda: ran.append(1))
            assert handle.cancel() is True
            with pytest.raises(ServerClosedError):
                handle.result()
            assert ran == []
        finally:
            gate.release.set()
            assert wedge.result(timeout=5.0) == "WEDGE"
            executor.close(wait=True)

    def test_cancel_respects_a_claimed_task(self):
        with make_executor(lambda text, options=None: text,
                           workers=2) as executor:
            handle = executor.spawn_task(lambda: 7)
            assert handle.result() == 7
            assert handle.cancel() is False  # outcome stands
            assert handle.result() == 7

    def test_gather_failure_releases_sibling_partials(self):
        """The scatter idiom: when one partial fails, the gather loop
        cancels every handle it will never collect — no claimable
        work is left behind on the pool."""
        gate = Gate()
        executor = make_executor(gate, workers=1, queue_capacity=10)
        try:
            wedge = executor.submit("wedge")
            assert gate.started.wait(timeout=5.0)
            ran = []

            def partial(index):
                if index == 0:
                    raise ValueError("partial exploded")
                ran.append(index)
                return index

            handles = [executor.spawn_task(
                lambda index=index: partial(index))
                for index in range(3)]
            collected = []
            with pytest.raises(ValueError, match="partial exploded"):
                try:
                    for handle in handles:
                        collected.append(handle.result())
                finally:
                    for handle in handles[len(collected):]:
                        handle.cancel()
            for handle in handles[1:]:
                with pytest.raises(ServerClosedError):
                    handle.result()
            assert ran == []
        finally:
            gate.release.set()
            assert wedge.result(timeout=5.0) == "WEDGE"
            executor.close(wait=True)
