"""Multi-process replica serving: routing, crashes, respawn."""

import itertools
import os
import signal
import threading
import time

import pytest

from repro.core.config import StoreConfig
from repro.core.frappe import Frappe
from repro.client import FrappeClient
from repro.cypher import QueryOptions
from repro.errors import QueryTimeoutError, ServerError
from repro.server import wire
from repro.server.http import HttpServer
from repro.server.replica import (INITIAL_REPLY_BYTES, ReplicaBackend,
                                  ReplicaSet)

COUNT_QUERY = "MATCH (n:function) RETURN count(*) AS n"


@pytest.fixture(scope="module")
def replica_set(saved_store):
    with ReplicaSet(saved_store, replicas=2) as replicas:
        yield replicas


def wait_for(predicate, timeout=30.0, interval=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestReplicaSet:
    def test_serves_queries(self, replica_set, saved_store):
        payload = replica_set.execute(COUNT_QUERY)
        result = wire.result_from_ndjson(payload)
        with Frappe.open(saved_store) as frappe:
            assert result.value() == frappe.query(COUNT_QUERY).value()

    def test_options_travel_to_worker(self, replica_set):
        payload = replica_set.execute(
            "MATCH (n:function) RETURN n.short_name",
            QueryOptions(max_rows=3))
        result = wire.result_from_ndjson(payload)
        assert len(result) == 3
        assert result.stats.truncated

    def test_worker_error_reconstructed(self, replica_set):
        with pytest.raises(QueryTimeoutError):
            replica_set.execute(
                "MATCH (a)-[:calls*]->(b) RETURN count(*)",
                QueryOptions(timeout=0.0001))

    def test_load_spreads_over_replicas(self, replica_set):
        threads = []
        seen_errors = []

        def run():
            try:
                replica_set.execute(COUNT_QUERY)
            except Exception as error:  # pragma: no cover
                seen_errors.append(error)

        for _ in range(8):
            threads.append(threading.Thread(target=run))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not seen_errors
        snapshot = replica_set.obs.registry.snapshot()
        assert snapshot.counter("replica.dispatched") >= 8

    def test_per_replica_metrics(self, replica_set):
        replica_set.execute(COUNT_QUERY)
        reports = replica_set.metrics()
        assert len(reports) == replica_set.alive()
        for report in reports:
            assert report["pid"] in replica_set.pids()
            assert "query.count" in report["metrics"]

    def test_validates_replica_count(self, saved_store):
        with pytest.raises(ValueError):
            ReplicaSet(saved_store, replicas=0)


class _StubReplica:
    """Just enough surface for exercising ``ReplicaSet._pick``."""

    def __init__(self, index, in_flight_bytes=0.0, alive=True):
        self.index = index
        self.alive = alive
        self.in_flight = 0
        self.in_flight_bytes = in_flight_bytes

    def load(self):
        return self.in_flight_bytes


def _routing_set(stubs):
    replica_set = ReplicaSet.__new__(ReplicaSet)
    replica_set._lock = threading.Lock()
    replica_set._rr = itertools.count()
    replica_set._replicas = list(stubs)
    return replica_set


class TestBytesAwareRouting:
    """The BENCH_PR7 4-replica regression fix: dispatch scores count
    estimated reply bytes in flight, not outstanding job count."""

    def test_picks_fewest_outstanding_bytes(self):
        # replica 0 owes one huge traversal reply; replica 1 owes two
        # point lookups — count-based routing would pick 0 and queue
        # behind the megabyte, bytes-based routing must pick 1
        heavy = _StubReplica(0, in_flight_bytes=1_000_000.0)
        heavy.in_flight = 1
        light = _StubReplica(1, in_flight_bytes=2 * 200.0)
        light.in_flight = 2
        picks = {_routing_set([heavy, light])._pick().index
                 for _ in range(4)}
        assert picks == {1}

    def test_round_robin_breaks_ties(self):
        stubs = [_StubReplica(0), _StubReplica(1)]
        picked = [_routing_set(stubs)._pick().index for _ in range(2)]
        replica_set = _routing_set(stubs)
        assert {replica_set._pick().index,
                replica_set._pick().index} == {0, 1}

    def test_dead_replicas_never_picked(self):
        stubs = [_StubReplica(0, alive=False),
                 _StubReplica(1, in_flight_bytes=9e9)]
        replica_set = _routing_set(stubs)
        assert replica_set._pick().index == 1
        stubs[1].alive = False
        with pytest.raises(ServerError):
            replica_set._pick()

    def test_reply_sizes_feed_the_ewma(self, replica_set):
        replica_set.execute("MATCH (n:function) RETURN n.short_name")
        replicas = replica_set._replicas
        # the charge is settled once the reply lands (float add/sub
        # of interleaved estimates can leave sub-byte residue)
        assert all(abs(replica.in_flight_bytes) < 1e-6
                   for replica in replicas)
        # whoever served has folded the observed payload size in
        assert any(replica._bytes_ewma != INITIAL_REPLY_BYTES
                   for replica in replicas)
        assert all(replica._bytes_ewma > 0 for replica in replicas)


class TestCrashRecovery:
    def test_kill_one_worker_zero_failed_requests(self, saved_store):
        """The acceptance criterion: SIGKILL a replica under load and
        every client request still succeeds (retried on survivors),
        then the dead worker is respawned."""
        with ReplicaSet(saved_store, replicas=2) as replicas:
            backend = ReplicaBackend(replicas, queue_capacity=32)
            server = HttpServer(backend).start_background()
            try:
                stop = threading.Event()
                failures = []
                completed = [0]

                def hammer():
                    with FrappeClient(port=server.port,
                                      client_id="hammer") as client:
                        while not stop.is_set():
                            try:
                                client.query(COUNT_QUERY)
                                completed[0] += 1
                            except Exception as error:
                                failures.append(error)

                threads = [threading.Thread(target=hammer)
                           for _ in range(3)]
                for thread in threads:
                    thread.start()
                assert wait_for(lambda: completed[0] >= 5)
                victim = replicas.pids()[0]
                os.kill(victim, signal.SIGKILL)
                # keep load on while the crash is detected and the
                # replacement worker comes up
                registry = replicas.obs.registry

                def respawned():
                    snapshot = registry.snapshot()
                    return snapshot.counter("replica.respawns") >= 1
                assert wait_for(respawned), "worker never respawned"
                assert wait_for(lambda: replicas.alive() == 2)
                end_count = completed[0] + 20
                assert wait_for(lambda: completed[0] >= end_count)
                stop.set()
                for thread in threads:
                    thread.join()
                assert not failures, \
                    f"client saw failures: {failures[:3]}"
                assert victim not in replicas.pids()
                snapshot = registry.snapshot()
                assert snapshot.counter("replica.crashes") >= 1
            finally:
                server.stop(close_backend=False)

    def test_no_respawn_when_disabled(self, saved_store):
        with ReplicaSet(saved_store, replicas=2,
                        respawn=False) as replicas:
            victim = replicas.pids()[0]
            os.kill(victim, signal.SIGKILL)
            assert wait_for(lambda: replicas.alive() == 1)
            # the survivor still serves
            payload = replica_set_execute_retry(replicas)
            assert wire.result_from_ndjson(payload).value() > 0

    def test_send_failure_marks_replica_dead(self, saved_store):
        """A broken pipe on dispatch is definitive death, recorded
        immediately — not left for the pump thread's EOF.

        While the pump is still blocked in recv, a corpse keeps the
        lowest byte score (its refunded charges make it look idle),
        so without the immediate mark a retry loop can burn every
        attempt re-picking the same dead worker."""
        with ReplicaSet(saved_store, replicas=2,
                        respawn=False) as replicas:
            victim = replicas._replicas[0]
            real_conn = victim._conn

            class _BrokenPipe:
                def send(self, message):
                    raise BrokenPipeError("worker gone")

                def __getattr__(self, name):
                    return getattr(real_conn, name)

            victim._conn = _BrokenPipe()
            try:
                with pytest.raises(Exception) as excinfo:
                    victim.request({"op": "query", "text": COUNT_QUERY,
                                    "options": {}})
                assert "pipe closed" in str(excinfo.value)
                assert victim.alive is False
                # every subsequent execute routes around the corpse —
                # no "failed on N replicas in a row"
                for _ in range(5):
                    payload = replicas.execute(COUNT_QUERY)
                    assert wire.result_from_ndjson(payload).value() > 0
                assert replicas.alive() == 1
            finally:
                victim._conn = real_conn

    def test_all_dead_is_a_server_error(self, saved_store):
        with ReplicaSet(saved_store, replicas=1,
                        respawn=False) as replicas:
            os.kill(replicas.pids()[0], signal.SIGKILL)
            assert wait_for(lambda: replicas.alive() == 0)
            with pytest.raises(ServerError):
                replicas.execute(COUNT_QUERY)


def replica_set_execute_retry(replicas, attempts=20):
    """Execute COUNT_QUERY, tolerating the crash-detection window."""
    last = None
    for _ in range(attempts):
        try:
            return replicas.execute(COUNT_QUERY)
        except ServerError as error:
            last = error
            time.sleep(0.1)
    raise last


class TestReplicaHttpStack:
    def test_cli_topology_end_to_end(self, replica_set):
        backend = ReplicaBackend(replica_set)
        server = HttpServer(backend).start_background()
        try:
            with FrappeClient(port=server.port) as client:
                result = client.query(COUNT_QUERY)
                assert result.value() > 0
                health = client.health()
                assert health["mode"] == "replicas"
                assert health["replicas"]["configured"] == 2
                metrics = client.metrics()
                assert len(metrics["replicas"]) == 2
        finally:
            server.stop(close_backend=False)

    def test_mmap_default_config(self, replica_set):
        assert replica_set.config.mmap is True

    def test_custom_config(self, saved_store):
        config = StoreConfig(mmap=True, execution_mode="rows")
        with ReplicaSet(saved_store, replicas=1,
                        config=config) as replicas:
            result = wire.result_from_ndjson(
                replicas.execute(COUNT_QUERY))
            assert result.stats.execution_mode == "rows"
