"""The versioned wire schema: requests, NDJSON framing, errors."""

import json

import pytest

from repro import errors
from repro.cypher import QueryOptions
from repro.cypher.result import (RESULT_SCHEMA_VERSION, QueryStats,
                                 Result)
from repro.server import wire


def make_result(rows, columns=("a", "b")):
    return Result(columns=list(columns), rows=[tuple(r) for r in rows],
                  stats=QueryStats(elapsed_seconds=0.01, db_hits=7))


class TestQueryRequest:
    def test_roundtrip(self):
        options = QueryOptions(timeout=2.0, max_rows=10,
                               parameters={"name": "sr_*"})
        body = wire.query_request("MATCH (n) RETURN n", options)
        text, parsed = wire.parse_query_request(body)
        assert text == "MATCH (n) RETURN n"
        assert parsed.timeout == 2.0
        assert parsed.max_rows == 10
        assert parsed.parameters == {"name": "sr_*"}

    def test_default_options_omitted_from_body(self):
        body = wire.query_request("RETURN 1", QueryOptions())
        assert b"options" not in body
        _, parsed = wire.parse_query_request(body)
        assert parsed == QueryOptions()

    def test_rejects_non_json(self):
        with pytest.raises(wire.WireFormatError, match="not JSON"):
            wire.parse_query_request(b"MATCH (n) RETURN n")

    def test_rejects_missing_query(self):
        with pytest.raises(wire.WireFormatError, match="query"):
            wire.parse_query_request(b'{"options": {}}')

    def test_rejects_empty_query(self):
        with pytest.raises(wire.WireFormatError, match="query"):
            wire.parse_query_request(b'{"query": "  "}')

    def test_rejects_unknown_request_field(self):
        with pytest.raises(wire.WireFormatError, match="cypher"):
            wire.parse_query_request(b'{"query": "RETURN 1", '
                                     b'"cypher": "x"}')

    def test_rejects_unknown_option_key(self):
        body = json.dumps({"query": "RETURN 1",
                           "options": {"max_row": 5}}).encode()
        with pytest.raises(wire.WireFormatError, match="max_row"):
            wire.parse_query_request(body)

    def test_rejects_non_object_options(self):
        with pytest.raises(wire.WireFormatError, match="options"):
            wire.parse_query_request(b'{"query": "RETURN 1", '
                                     b'"options": [1]}')

    def test_rejects_invalid_option_value(self):
        body = json.dumps({"query": "RETURN 1",
                           "options": {"timeout": -1}}).encode()
        with pytest.raises(wire.WireFormatError, match="timeout"):
            wire.parse_query_request(body)


class TestNdjsonFraming:
    def test_result_roundtrip(self):
        result = make_result([(1, "x"), (2, "y")])
        data = wire.result_to_ndjson(result)
        back = wire.result_from_ndjson(data)
        assert back.columns == result.columns
        assert back.rows == result.rows
        assert back.stats.db_hits == 7

    def test_frame_layout(self):
        data = wire.result_to_ndjson(make_result([(1, "x")]))
        frames = [json.loads(line) for line in data.splitlines()]
        assert frames[0] == {"schema_version": RESULT_SCHEMA_VERSION,
                             "columns": ["a", "b"]}
        assert frames[1] == {"row": [1, "x"]}
        assert set(frames[2]) == {"summary"}

    def test_accepts_line_iterable(self):
        data = wire.result_to_ndjson(make_result([(5, "z")]))
        payload = wire.payload_from_ndjson(
            data.decode("utf-8").splitlines())
        assert payload["rows"] == [[5, "z"]]

    def test_missing_summary_is_truncation(self):
        data = wire.result_to_ndjson(make_result([(1, "x")]))
        truncated = b"".join(data.splitlines(keepends=True)[:-1])
        with pytest.raises(wire.WireFormatError, match="summary"):
            wire.payload_from_ndjson(truncated)

    def test_missing_header_rejected(self):
        with pytest.raises(wire.WireFormatError, match="header"):
            wire.payload_from_ndjson(b'{"row": [1]}\n'
                                     b'{"summary": {}}\n')

    def test_inline_error_frame_raises(self):
        frame = json.dumps(
            {"error": {"type": "QueryError", "message": "boom"}})
        with pytest.raises(errors.QueryError, match="boom"):
            wire.payload_from_ndjson(frame)


class TestErrorMapping:
    @pytest.mark.parametrize("error,status", [
        (errors.AdmissionError("full"), 429),
        (errors.QueryTimeoutError(1.0), 504),
        (errors.ServerClosedError("closed"), 503),
        (errors.ExecutorShutdownError("down"), 503),
        (wire.WireFormatError("bad"), 400),
        (errors.CypherSyntaxError("bad", 1, 1), 400),
        (errors.QueryError("bad"), 400),
        (errors.StoreError("disk"), 500),
        (RuntimeError("bug"), 500),
    ])
    def test_status_for(self, error, status):
        assert wire.status_for(error) == status

    def test_admission_error_roundtrip(self):
        original = errors.AdmissionError("queue full", client="alice")
        payload = wire.error_to_dict(original)
        assert payload["retry_after"] == wire.RETRY_AFTER_SECONDS
        rebuilt = wire.exception_from_dict(payload)
        assert isinstance(rebuilt, errors.AdmissionError)
        assert rebuilt.client == "alice"
        assert "queue full" in str(rebuilt)

    def test_timeout_error_keeps_server_message(self):
        original = errors.QueryTimeoutError(2.5)
        rebuilt = wire.exception_from_dict(
            wire.error_to_dict(original))
        assert isinstance(rebuilt, errors.QueryTimeoutError)
        assert rebuilt.seconds == 2.5
        assert str(rebuilt) == str(original)

    def test_unknown_type_degrades_to_server_error(self):
        rebuilt = wire.exception_from_dict(
            {"type": "FutureError", "message": "from v99"})
        assert isinstance(rebuilt, errors.ServerError)
        assert "FutureError" in str(rebuilt)

    def test_error_body_is_versioned_json(self):
        body = json.loads(wire.error_body(errors.QueryError("no")))
        assert body["schema_version"] == wire.WIRE_SCHEMA_VERSION
        assert body["error"]["type"] == "QueryError"
