"""Property-based sharded-vs-single equivalence (hypothesis).

For any random directory-tree-shaped graph, split at whatever subtree
boundaries the assignment picks, every Table-5-shaped query must come
back *identical* from the scatter/gather router and from the
unsharded store: same columns, same rows, in the same order, same
db-hit accounting and same PROFILE operator tree. The comparison is
on the canonical wire payload (with the two legitimately
nondeterministic fields — wall-clock timings and the shard-id stamp —
normalized out), so a divergence anywhere in the stack (shard writer,
ghost replication, composite view, routing tier, partial-aggregate
merge) fails loudly.

CI runs this file as its own job with a fixed ``--hypothesis-seed``
and uploads the failing example on a red run.
"""

import json

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.frappe import Frappe
from repro.cypher.options import QueryOptions
from repro.graphdb import PropertyGraph
from repro.graphdb.storage import GraphStore, split_store
from repro.server import wire
from repro.server.shard import ShardRouter

# Tiny name pools on purpose: cross-subtree name collisions are where
# a ghost leaking into an index would silently double rows.
_FUNCTION_NAMES = ["alpha", "beta", "gamma", "delta"]
_SUBTREES = ["drivers", "fs", "mm", "kernel", "net"]

#: every query shape the paper's Table 5 exercises, parameterized by
#: an anchor name the strategy picks from the generated graph
QUERY_SHAPES = [
    # anchored point lookups (the dispatch tier)
    "START n=node:node_auto_index('short_name:{name}') "
    "RETURN n.short_name, n.type",
    "START n=node:node_auto_index('short_name:{name}') "
    "WHERE n.size > 0 RETURN n.short_name, n.size",
    # anchored expansions (gateway: ghosts + planner freedom)
    "START n=node:node_auto_index('short_name:{name}') "
    "MATCH (n)-[:calls]->(m) RETURN m.short_name ORDER BY "
    "m.short_name, id(m)",
    "START n=node:node_auto_index('short_name:{name}') "
    "MATCH (n)<-[:calls]-(m) RETURN count(m)",
    # var-length traversals across shard boundaries
    "START n=node:node_auto_index('short_name:{name}') "
    "MATCH (n)-[:calls*1..3]->(m) RETURN count(m)",
    "START n=node:node_auto_index('short_name:{name}') "
    "MATCH (n)-[:calls*2..4]->(m) RETURN count(m)",
    # label scans and aggregations (the scatter tier)
    "MATCH (n:function) RETURN count(n)",
    "MATCH (n:function) RETURN count(*), min(n.size), max(n.size)",
    "MATCH (n:function) WHERE n.size > 1 RETURN count(n), "
    "sum(n.size)",
    # order-sensitive full scans (gateway over the composite view)
    "MATCH (n:function) RETURN n.short_name, n.size ORDER BY "
    "n.short_name, n.size, id(n)",
    "MATCH (n:function) RETURN DISTINCT n.short_name ORDER BY "
    "n.short_name",
    "MATCH (n:function) RETURN n.size, count(n) ORDER BY n.size",
    "MATCH (f:file)-[:file_contains]->(n:function) "
    "RETURN f.short_name, count(n) ORDER BY f.short_name",
]


@st.composite
def tree_graphs(draw):
    """A kernel-shaped graph: root dir -> subtrees -> files -> fns."""
    graph = PropertyGraph()
    root = graph.add_node("directory", short_name="linux",
                          type="directory")
    subtree_count = draw(st.integers(min_value=2, max_value=4))
    functions = []
    for index in range(subtree_count):
        subtree = graph.add_node("directory",
                                 short_name=_SUBTREES[index],
                                 type="directory")
        graph.add_edge(root, subtree, "dir_contains")
        for file_index in range(draw(st.integers(1, 2))):
            file_node = graph.add_node(
                "file", type="file",
                short_name=f"{_SUBTREES[index]}{file_index}.c")
            graph.add_edge(subtree, file_node, "dir_contains")
            for _ in range(draw(st.integers(1, 3))):
                function = graph.add_node(
                    "function", type="function",
                    short_name=draw(st.sampled_from(_FUNCTION_NAMES)),
                    size=draw(st.sampled_from([0, 1, 2, 3])))
                graph.add_edge(file_node, function, "file_contains")
                functions.append(function)
    # calls cross subtree boundaries freely — boundary edges by design
    for _ in range(draw(st.integers(0, 3 * len(functions)))):
        graph.add_edge(draw(st.sampled_from(functions)),
                       draw(st.sampled_from(functions)), "calls")
    anchor = graph.node_property(draw(st.sampled_from(functions)),
                                 "short_name")
    return graph, anchor


def canonical_payload(payload_bytes):
    """The wire payload with nondeterminism normalized out."""
    payload = wire.payload_from_ndjson(payload_bytes)
    payload["stats"]["elapsed_seconds"] = 0.0
    payload["stats"].pop("shards", None)
    profile = payload.get("profile")
    if profile is not None:
        _strip_times(profile)
    return payload


def _strip_times(plan):
    plan.pop("time_ms", None)
    for child in plan.get("children", ()):
        _strip_times(child)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(graph_and_anchor=tree_graphs(), shards=st.sampled_from([2, 3, 4]))
def test_sharded_execution_is_result_identical(graph_and_anchor, shards,
                                               tmp_path_factory):
    graph, anchor = graph_and_anchor
    base = tmp_path_factory.mktemp("shardeq")
    store = str(base / "store")
    root = str(base / "shards")
    GraphStore.write(graph, store)
    split_store(store, root, shards)

    single = Frappe.open(store)
    router = ShardRouter(root, replicas=0)
    try:
        for shape in QUERY_SHAPES:
            text = shape.format(name=anchor)
            for profiled in (False, True):
                options = QueryOptions(profile=True) if profiled \
                    else None
                expected = wire.result_to_ndjson(
                    single.query(text, options=options))
                got = router.execute(text, options)
                assert canonical_payload(got) == \
                    canonical_payload(expected), \
                    f"diverged on {text!r} (profiled={profiled}, " \
                    f"shards={shards})"
    finally:
        router.close()
        single.close()


class TestRoutingTiers:
    """The classifier sends each shape to the cheapest safe tier."""

    @pytest.fixture(scope="class")
    def router(self, shard_root):
        router = ShardRouter(shard_root, replicas=0)
        yield router
        router.close()

    def test_anchored_lookup_dispatches_to_one_shard(self, router):
        anchor = None
        for node_id in router.store.node_ids():
            props = router.store.node_properties(node_id)
            if props.get("type") == "function":
                anchor = props["short_name"]
                break
        decision = router.classify(
            f"START n=node:node_auto_index('short_name:{anchor}') "
            "RETURN n.type")
        assert decision.tier == "dispatch"
        assert len(decision.shards) == 1

    def test_aggregate_scan_scatters(self, router):
        decision = router.classify(
            "MATCH (n:function) RETURN count(n), max(n.loc)")
        assert decision.tier == "scatter"
        assert decision.merge == ("count", "max")

    def test_label_statistics_prune_empty_shards(self, router):
        counts = router.store.shard_label_counts("function")
        decision = router.classify(
            "MATCH (n:function) RETURN count(n)")
        assert list(decision.shards) == \
            [index for index, count in enumerate(counts) if count]

    def test_expansion_goes_to_gateway(self, router):
        decision = router.classify(
            "START n=node:node_auto_index('type:function') "
            "MATCH (n)-[:calls]->(m) RETURN m.short_name")
        assert decision.tier == "gateway"

    def test_ordered_scan_goes_to_gateway(self, router):
        decision = router.classify(
            "MATCH (n:function) RETURN n.short_name "
            "ORDER BY n.short_name")
        assert decision.tier == "gateway"

    def test_profile_goes_to_gateway(self, router):
        decision = router.classify(
            "PROFILE MATCH (n:function) RETURN count(n)")
        assert decision.tier == "gateway"
        decision = router.classify(
            "MATCH (n:function) RETURN count(n)",
            QueryOptions(profile=True))
        assert decision.tier == "gateway"

    def test_collect_avg_distinct_go_to_gateway(self, router):
        for text in ("MATCH (n:function) RETURN collect(n.short_name)",
                     "MATCH (n:function) RETURN avg(n.loc)",
                     "MATCH (n:function) RETURN count(DISTINCT "
                     "n.short_name)"):
            assert router.classify(text).tier == "gateway", text

    def test_unparseable_goes_to_gateway(self, router):
        assert router.classify("THIS IS NOT CYPHER").tier == "gateway"

    def test_decisions_are_memoized(self, router):
        text = "MATCH (n:memoprobe) RETURN count(n)"
        registry = router.obs.registry
        first = router.classify(text)
        before = registry.snapshot().counter(
            "router.decision_cache_hits")
        assert router.classify(text) is first  # served from cache
        after = registry.snapshot().counter(
            "router.decision_cache_hits")
        assert after == before + 1
        # profiled and unprofiled runs are distinct cache entries
        profiled = router.classify(text, QueryOptions(profile=True))
        assert profiled.tier == "gateway"
        assert profiled is not first

    def test_wire_summary_carries_shard_ids(self, router):
        payload = router.execute("MATCH (n:function) RETURN count(n)")
        last = payload.rstrip(b"\n").rpartition(b"\n")[2]
        summary = json.loads(last)["summary"]
        assert summary["stats"]["shards"] == \
            list(router.classify(
                "MATCH (n:function) RETURN count(n)").shards)
