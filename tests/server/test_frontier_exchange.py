"""Frontier exchange: sharded var-length traversal building block.

A hand-built two-subtree graph with a cross-shard ``calls`` cycle and
duplicated boundary edges, split so the cycle genuinely straddles the
shard boundary. The properties a gateway var-length plan depends on:
fixpoint termination on cycles, exact min/max-hop windowing across
boundaries, boundary edges traversed exactly once despite being
replicated in both side shards, and deterministic per-round
accounting.
"""

import pytest

from repro.graphdb import PropertyGraph
from repro.graphdb.storage import GraphStore, ShardedStore, split_store
from repro.graphdb.storage.sharding import frontier_exchange
from repro.graphdb.view import Direction


@pytest.fixture(scope="module")
def cyclic_store(tmp_path_factory):
    """root -> {alpha, beta} subtrees; fa -> fb -> fc -> fa calls
    cycle straddling the subtree boundary, with the fa -> fb boundary
    edge intentionally duplicated (parallel edges)."""
    graph = PropertyGraph()
    root = graph.add_node("directory", short_name="linux",
                          type="directory")
    names = {}
    for subtree, functions in (("alpha", ["fa"]),
                               ("beta", ["fb", "fc"])):
        directory = graph.add_node("directory", short_name=subtree,
                                   type="directory")
        graph.add_edge(root, directory, "dir_contains")
        file_node = graph.add_node("file", type="file",
                                   short_name=f"{subtree}.c")
        graph.add_edge(directory, file_node, "dir_contains")
        for name in functions:
            node = graph.add_node("function", type="function",
                                  short_name=name)
            graph.add_edge(file_node, node, "file_contains")
            names[name] = node
    graph.add_edge(names["fa"], names["fb"], "calls")
    graph.add_edge(names["fa"], names["fb"], "calls")  # duplicate
    graph.add_edge(names["fb"], names["fc"], "calls")
    graph.add_edge(names["fc"], names["fa"], "calls")
    base = tmp_path_factory.mktemp("frontier")
    GraphStore.write(graph, str(base / "store"))
    split_store(str(base / "store"), str(base / "shards"), 2)
    store = ShardedStore(str(base / "shards"))
    yield store, names
    store.close()


class TestFrontierExchange:
    def test_cycle_terminates_at_fixpoint(self, cyclic_store):
        store, names = cyclic_store
        # precondition: the cycle actually crosses the shard boundary
        owners = {store.node_owner(names[name])
                  for name in ("fa", "fb", "fc")}
        assert len(owners) == 2
        reachable, stats = frontier_exchange(
            store, [names["fa"]], types=["calls"])
        # fa is the source (depth 0, below the default min_hops of 1)
        # and is never re-visited when the cycle closes back onto it
        assert reachable == {names["fb"]: 1, names["fc"]: 2}
        # unbounded on a cycle: rounds stop once everything is visited
        assert stats.total_rounds <= 4

    def test_min_hops_zero_includes_sources(self, cyclic_store):
        store, names = cyclic_store
        reachable, _ = frontier_exchange(
            store, [names["fa"]], types=["calls"], min_hops=0)
        assert reachable[names["fa"]] == 0

    def test_min_max_hops_window_across_boundary(self, cyclic_store):
        store, names = cyclic_store
        reachable, _ = frontier_exchange(
            store, [names["fa"]], types=["calls"],
            min_hops=2, max_hops=2)
        assert reachable == {names["fc"]: 2}
        reachable, _ = frontier_exchange(
            store, [names["fa"]], types=["calls"],
            min_hops=1, max_hops=1)
        assert reachable == {names["fb"]: 1}

    def test_max_hops_caps_the_rounds(self, cyclic_store):
        store, names = cyclic_store
        _, stats = frontier_exchange(
            store, [names["fa"]], types=["calls"], max_hops=1)
        assert stats.total_rounds == 1

    def test_duplicate_boundary_edges_visit_target_once(
            self, cyclic_store):
        store, names = cyclic_store
        reachable, stats = frontier_exchange(
            store, [names["fa"]], types=["calls"], max_hops=1)
        # two parallel fa->fb boundary edges, one visit, one shipment
        assert reachable == {names["fb"]: 1}
        assert stats.rounds[0].shipped == \
            (1 if store.node_owner(names["fa"])
             != store.node_owner(names["fb"]) else 0)

    def test_incoming_direction(self, cyclic_store):
        store, names = cyclic_store
        reachable, _ = frontier_exchange(
            store, [names["fb"]], types=["calls"],
            direction=Direction.IN, max_hops=1)
        assert reachable == {names["fa"]: 1}

    def test_deterministic_accounting(self, cyclic_store):
        store, names = cyclic_store
        first = frontier_exchange(store, [names["fa"]],
                                  types=["calls"])
        second = frontier_exchange(store, [names["fa"]],
                                   types=["calls"])
        assert first[0] == second[0]
        assert first[1].to_dict() == second[1].to_dict()
        assert set(first[1].to_dict()) == \
            {"rounds", "shipped_ids", "db_hits"}
        assert first[1].total_db_hits > 0

    def test_unknown_sources_are_skipped(self, cyclic_store):
        store, names = cyclic_store
        reachable, stats = frontier_exchange(
            store, [10 ** 9], types=["calls"])
        assert reachable == {}
        assert stats.total_rounds == 0

    def test_rejects_bad_hop_windows(self, cyclic_store):
        store, names = cyclic_store
        with pytest.raises(ValueError):
            frontier_exchange(store, [names["fa"]], min_hops=-1)
        with pytest.raises(ValueError):
            frontier_exchange(store, [names["fa"]],
                              min_hops=3, max_hops=2)
