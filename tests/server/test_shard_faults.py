"""Fault injection against the sharded serving tier.

The acceptance bar: killing one shard worker never surfaces to a
client as anything but a transparent retry, a whole-shard loss comes
back as a structured error *naming the shard*, and a respawned worker
serves the retry. Boundary-table damage stays in ``fsck``'s
repairable class.
"""

import os
import signal
import time

import pytest

from repro.cli import main as cli_main
from repro.errors import ShardCrashedError
from repro.graphdb.storage import (REPAIRABLE, split_store,
                                   verify_shard_root)
from repro.graphdb.storage.faults import corrupt_boundary_table
from repro.server import wire
from repro.server.shard import ShardBackend, ShardRouter

SCATTER_QUERY = "MATCH (n:function) RETURN count(n)"


def wait_for(predicate, timeout=30.0, interval=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def value_of(payload):
    return wire.result_from_ndjson(payload).rows[0][0]


class TestWorkerCrash:
    def test_kill_one_worker_is_transparent(self, shard_root):
        """SIGKILL one of a shard's workers mid-service: every query
        still succeeds (the shard's replica set retries on the
        survivor) and the respawned worker rejoins."""
        with ShardRouter(shard_root, replicas=2) as router:
            expected = value_of(router.execute(SCATTER_QUERY))
            victim = router.pids()[1][0]
            os.kill(victim, signal.SIGKILL)
            for _ in range(10):
                assert value_of(router.execute(SCATTER_QUERY)) \
                    == expected
            assert wait_for(lambda: router.alive() == [2, 2, 2]), \
                "killed worker never respawned"
            assert victim not in router.pids()[1]
            # ... and the new worker actually serves
            assert value_of(router.execute(SCATTER_QUERY)) == expected

    def test_kill_through_backend_is_transparent(self, shard_root):
        """Same crash through the Executor/scatter spawn path."""
        with ShardRouter(shard_root, replicas=2) as router:
            backend = ShardBackend(router, queue_capacity=16)
            try:
                expected = value_of(
                    backend.submit(SCATTER_QUERY, None,
                                   "fault-client").result())
                os.kill(router.pids()[0][0], signal.SIGKILL)
                futures = [backend.submit(SCATTER_QUERY, None,
                                          f"fault-{index}")
                           for index in range(8)]
                for future in futures:
                    assert value_of(future.result(timeout=30)) \
                        == expected
            finally:
                backend.close()

    def test_whole_shard_loss_names_the_shard(self, shard_root):
        """Every worker of one shard dead, no respawn: the error is
        structured and says which partition to revive."""
        with ShardRouter(shard_root, replicas=1,
                         respawn=False) as router:
            counts = router.store.shard_label_counts("function")
            assert counts[1] > 0  # shard 1 participates in the scatter
            os.kill(router.pids()[1][0], signal.SIGKILL)
            assert wait_for(lambda: router.alive()[1] == 0)
            with pytest.raises(ShardCrashedError) as excinfo:
                for _ in range(50):
                    router.execute(SCATTER_QUERY)
                    time.sleep(0.05)
            assert excinfo.value.shard == 1
            assert "shard 1" in str(excinfo.value)

    def test_shard_error_survives_the_wire(self):
        original = ShardCrashedError(
            "shard 2 lost every worker mid-query", shard=2)
        payload = wire.error_to_dict(original)
        assert payload["type"] == "ShardCrashedError"
        assert payload["shard"] == 2
        rebuilt = wire.exception_from_dict(payload)
        assert isinstance(rebuilt, ShardCrashedError)
        assert rebuilt.shard == 2
        assert "shard 2" in str(rebuilt)


class TestBoundaryCorruption:
    def test_corruption_is_repairable_and_fsck_flags_it(
            self, saved_store, tmp_path, capsys):
        root = tmp_path / "shards"
        split_store(saved_store, str(root), 2)
        corrupt_boundary_table(str(root), shard=0, offset=20)
        verification = verify_shard_root(str(root))
        assert verification.status == REPAIRABLE
        assert any(problem.category == "boundary"
                   for problem in verification.problems)
        # the operator-facing path: exit code 2 = damaged but
        # derivable from the shard stores, not data loss
        assert cli_main(["fsck", str(root)]) == 2
        printed = capsys.readouterr().out.lower()
        assert "repairable" in printed
