"""Shared serving-tier fixtures: one saved store, HTTP helpers."""

import pytest

from repro.graphdb.storage import GraphStore
from repro.workloads import generate_kernel_graph
from repro.workloads.profiles import UEK_PROFILE


@pytest.fixture(scope="session")
def saved_store(tmp_path_factory):
    """A small kernel-shaped store on disk (read-only, shared).

    Replica workers need a *saved* store (they ``Frappe.open`` the
    directory in their own process), so this is written once per
    session rather than handing around in-memory graphs.
    """
    store = tmp_path_factory.mktemp("serving") / "store"
    graph = generate_kernel_graph(UEK_PROFILE.scaled(0.002), seed=7)
    GraphStore.write(graph, str(store))
    return str(store)


@pytest.fixture(scope="session")
def shard_root(tmp_path_factory, saved_store):
    """``saved_store`` split into a 3-shard root (read-only, shared)."""
    from repro.graphdb.storage import split_store

    root = tmp_path_factory.mktemp("serving") / "shards3"
    split_store(saved_store, str(root), 3)
    return str(root)
