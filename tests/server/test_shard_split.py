"""``frappe shard-split``: the shard writer, manifest, and fsck.

The invariants the scatter/gather router leans on:

* global node/edge ids survive the split (a shard's rows are the
  source store's rows, bit for bit);
* ghost replicas resolve locally but never leak into a shard's
  indexes or counts (scattered partials stay disjoint);
* every boundary edge is recorded in both side shards' tables, with
  owner tags;
* ``verify_shard_root`` treats boundary-table damage as *repairable*
  (the tables are derivable from the shard stores) and anything
  structural as corrupt.
"""

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.graphdb.storage import (CLEAN, CORRUPT, REPAIRABLE,
                                   GraphStore, ShardedStore,
                                   assign_subtrees, is_shard_root,
                                   split_store, verify_shard_root)
from repro.graphdb.storage.faults import (corrupt_boundary_table,
                                          flip_byte)
from repro.graphdb.storage.sharding import load_shard_manifest


class TestAssignment:
    def test_deterministic_and_total(self, saved_store):
        source = GraphStore.open(saved_store)
        try:
            first = assign_subtrees(source, 3)
            second = assign_subtrees(source, 3)
            assert first.owner == second.owner
            assert first.path_prefixes == second.path_prefixes
            # total: every live node gets exactly one shard
            assert set(first.owner) == set(source.node_ids())
            assert set(first.owner.values()) <= {0, 1, 2}
        finally:
            source.close()

    def test_subtrees_stay_whole(self, saved_store):
        """Two nodes of one top-level subtree share a shard."""
        source = GraphStore.open(saved_store)
        try:
            assignment = assign_subtrees(source, 3)
            prefixes = assignment.path_prefixes
            # each top-level subtree name appears on exactly one shard
            seen = [name for names in prefixes for name in names]
            assert len(seen) == len(set(seen))
            assert any(prefixes)
        finally:
            source.close()

    def test_rejects_bad_counts(self, saved_store):
        source = GraphStore.open(saved_store)
        try:
            with pytest.raises(ValueError):
                assign_subtrees(source, 0)
        finally:
            source.close()


class TestSplit:
    def test_manifest_shape(self, saved_store, shard_root):
        manifest = load_shard_manifest(shard_root)
        assert manifest["shard_count"] == 3
        assert manifest["strategy"] == "subtree"
        assert len(manifest["shards"]) == 3
        source_meta = manifest["source"]
        with open(os.path.join(saved_store, "metadata.json"),
                  encoding="utf-8") as handle:
            original = json.load(handle)
        assert source_meta["node_count"] == original["node_count"]
        assert source_meta["edge_count"] == original["edge_count"]
        for entry in manifest["shards"]:
            assert os.path.isdir(
                os.path.join(shard_root, entry["directory"]))
            assert os.path.exists(
                os.path.join(shard_root, entry["boundary_file"]))

    def test_is_shard_root(self, saved_store, shard_root):
        assert is_shard_root(shard_root)
        assert not is_shard_root(saved_store)

    def test_owned_nodes_partition_the_source(self, saved_store,
                                              shard_root):
        source = GraphStore.open(saved_store)
        sharded = ShardedStore(shard_root)
        try:
            assert list(sharded.node_ids()) == list(source.node_ids())
            assert list(sharded.edge_ids()) == list(source.edge_ids())
        finally:
            sharded.close()
            source.close()

    def test_ghosts_outside_indexes_and_counts(self, shard_root):
        """A ghost resolves reads but is invisible to scans/seeks."""
        manifest = load_shard_manifest(shard_root)
        for entry in manifest["shards"]:
            shard = GraphStore.open(
                os.path.join(shard_root, entry["directory"]))
            try:
                ghosts = shard.ghost_nodes
                assert len(ghosts) == entry["ghosts"]
                # metadata count excludes ghosts
                assert shard.node_count() == entry["nodes"]
                owned = set(shard.node_ids()) - ghosts
                for label in shard.indexes.labels():
                    posted = set(shard.indexes.label(label))
                    assert posted <= owned
                if ghosts:
                    ghost = next(iter(ghosts))
                    # reads still resolve (labels + properties)
                    assert shard.node_labels(ghost)
                    name = shard.node_property(ghost, "short_name")
                    if name is not None:
                        posted = set(shard.indexes.lookup(
                            "short_name", name))
                        assert ghost not in posted
            finally:
                shard.close()

    def test_boundary_tables_mirrored_with_owner_tags(self,
                                                      shard_root):
        manifest = load_shard_manifest(shard_root)
        tables = []
        for entry in manifest["shards"]:
            with open(os.path.join(shard_root, entry["boundary_file"]),
                      encoding="utf-8") as handle:
                tables.append(json.load(handle)["edges"])
        by_edge = {}
        for shard, rows in enumerate(tables):
            for edge_id, src, tgt, owner, peer in rows:
                assert owner != peer
                assert shard in (owner, peer)
                by_edge.setdefault(edge_id, []).append(
                    (src, tgt, owner, peer))
        # every boundary edge is recorded on both sides, identically
        assert by_edge
        for edge_id, rows in by_edge.items():
            assert len(rows) == 2
            assert rows[0] == rows[1]

    def test_rejects_unknown_strategy(self, saved_store, tmp_path):
        with pytest.raises(ValueError):
            split_store(saved_store, str(tmp_path / "x"), 2, by="hash")


class TestVerify:
    @pytest.fixture()
    def split_copy(self, saved_store, tmp_path):
        root = tmp_path / "shards"
        split_store(saved_store, str(root), 2)
        return str(root)

    def test_clean(self, split_copy):
        verification = verify_shard_root(split_copy)
        assert verification.status == CLEAN
        assert not verification.problems

    def test_boundary_damage_is_repairable(self, split_copy):
        corrupt_boundary_table(split_copy, shard=1, offset=30)
        verification = verify_shard_root(split_copy)
        assert verification.status == REPAIRABLE
        assert any(problem.category == "boundary"
                   for problem in verification.problems)
        assert any("boundary-001" in problem.file
                   for problem in verification.problems)

    def test_missing_boundary_table_is_repairable(self, split_copy):
        os.unlink(os.path.join(split_copy, "boundary-000.json"))
        verification = verify_shard_root(split_copy)
        assert verification.status == REPAIRABLE

    def test_shard_store_damage_prefixed_and_corrupt(self, split_copy):
        flip_byte(os.path.join(split_copy, "shard-000",
                               "nodestore.db"), 64)
        verification = verify_shard_root(split_copy)
        assert verification.status == CORRUPT
        assert any(problem.file.startswith("shard-000/")
                   for problem in verification.problems)

    def test_missing_manifest_is_corrupt(self, tmp_path):
        verification = verify_shard_root(str(tmp_path))
        assert verification.status == CORRUPT


class TestCli:
    def test_shard_split_and_fsck_roundtrip(self, saved_store,
                                            tmp_path, capsys):
        out = tmp_path / "shards"
        assert cli_main(["shard-split", saved_store, "--shards", "2",
                         "--out", str(out), "--by-subtree"]) == 0
        printed = capsys.readouterr().out
        assert "shard-000" in printed and "boundary edges" in printed
        assert cli_main(["fsck", str(out)]) == 0

    def test_fsck_exit_codes_on_shard_root(self, saved_store,
                                           tmp_path, capsys):
        out = tmp_path / "shards"
        split_store(saved_store, str(out), 2)
        corrupt_boundary_table(str(out), shard=0, offset=12)
        assert cli_main(["fsck", str(out)]) == 2  # repairable
        flip_byte(os.path.join(str(out), "shard-001",
                               "relationshipstore.db"), 32)
        assert cli_main(["fsck", str(out)]) == 1  # corrupt
        capsys.readouterr()
