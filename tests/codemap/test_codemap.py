"""Code map: hierarchy, squarified layout, rendering, overlays."""

import pytest

from repro.build import Build
from repro.codemap import (build_hierarchy, layout_map, render_ascii,
                           render_svg)
from repro.codemap.hierarchy import region_of_node
from repro.codemap.layout import average_leaf_aspect_ratio
from repro.codemap.render import overlay_nodes
from repro.core import extract_build
from repro.lang.source import VirtualFileSystem


@pytest.fixture(scope="module")
def graph():
    files = {
        "drivers/net/e1000.c": "int net_probe(void) { return 0; }\n"
                               "int net_xmit(void) { return 1; }\n",
        "drivers/scsi/sr.c": "int scsi_probe(void) { return 0; }\n",
        "kernel/sched.c": "int schedule(void) { return 0; }\n"
                          "int yield_cpu(void) { return 0; }\n"
                          "int preempt(void) { return 0; }\n",
    }
    script = "\n".join(
        f"gcc {path} -c -o {path[:-2]}.o" for path in files)
    build = Build(VirtualFileSystem(files))
    build.run_script(script)
    return extract_build(build)


@pytest.fixture(scope="module")
def hierarchy(graph):
    return build_hierarchy(graph)


@pytest.fixture(scope="module")
def layout(hierarchy):
    return layout_map(hierarchy, width=800, height=600)


class TestHierarchy:
    def test_root_is_directory(self, hierarchy):
        assert hierarchy.kind == "directory"
        assert hierarchy.level == "continent"

    def test_structure(self, hierarchy):
        names = {region.name for region in hierarchy.walk()}
        assert {"drivers", "net", "scsi", "kernel", "e1000.c", "sr.c",
                "sched.c"} <= names

    def test_functions_are_cities(self, hierarchy):
        functions = [region for region in hierarchy.walk()
                     if region.kind == "function"]
        assert {region.name for region in functions} >= \
            {"net_probe", "schedule"}

    def test_weights_aggregate_upward(self, hierarchy):
        drivers = next(region for region in hierarchy.walk()
                       if region.name == "drivers")
        assert drivers.weight == sum(child.weight
                                     for child in drivers.children)

    def test_bigger_file_weighs_more(self, hierarchy):
        sched = next(r for r in hierarchy.walk() if r.name == "sched.c")
        sr = next(r for r in hierarchy.walk() if r.name == "sr.c")
        assert sched.weight > sr.weight

    def test_region_of_node_for_function(self, hierarchy, graph):
        schedule = next(n for n in graph.indexes.lookup("short_name",
                                                        "schedule"))
        region = region_of_node(hierarchy, graph, schedule)
        assert region is not None and region.name == "schedule"


class TestLayout:
    def test_children_fit_inside_parent(self, layout):
        for box in layout.walk():
            for child in box.children:
                assert child.x >= box.x - 1e-6
                assert child.y >= box.y - 1e-6
                assert child.x + child.width <= box.x + box.width + 1e-6
                assert child.y + child.height <= \
                    box.y + box.height + 1e-6

    def test_siblings_do_not_overlap(self, layout):
        for box in layout.walk():
            for index, left in enumerate(box.children):
                for right in box.children[index + 1:]:
                    overlap_w = min(left.x + left.width,
                                    right.x + right.width) - \
                        max(left.x, right.x)
                    overlap_h = min(left.y + left.height,
                                    right.y + right.height) - \
                        max(left.y, right.y)
                    assert overlap_w <= 1e-6 or overlap_h <= 1e-6

    def test_areas_proportional_to_weights(self, layout):
        for box in layout.walk():
            if len(box.children) < 2:
                continue
            child_a, child_b = box.children[0], box.children[1]
            if child_b.region.weight == 0 or child_b.area == 0:
                continue
            weight_ratio = child_a.region.weight / child_b.region.weight
            area_ratio = child_a.area / child_b.area
            assert area_ratio == pytest.approx(weight_ratio, rel=0.05)

    def test_aspect_ratios_reasonable(self, layout):
        # squarified treemaps should stay far from sliver layouts
        assert average_leaf_aspect_ratio(layout) < 4.0

    def test_invalid_dimensions_rejected(self, hierarchy):
        with pytest.raises(ValueError):
            layout_map(hierarchy, width=0, height=100)


class TestRendering:
    def test_svg_structure(self, layout):
        svg = render_svg(layout, title="test map")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "<rect" in svg
        assert "test map" in svg

    def test_svg_highlights(self, layout, graph):
        schedule = next(n for n in graph.indexes.lookup("short_name",
                                                        "schedule"))
        svg_plain = render_svg(layout)
        svg_marked = render_svg(layout, highlights=[schedule])
        assert svg_marked.count("#e4572e") > svg_plain.count("#e4572e")

    def test_svg_path_overlay(self, layout, graph):
        nodes = [n for n in graph.indexes.lookup("short_name",
                                                 "schedule")]
        nodes += [n for n in graph.indexes.lookup("short_name",
                                                  "net_probe")]
        svg = render_svg(layout, path=nodes)
        assert "polyline" in svg

    def test_svg_escaping(self, layout):
        layout.region.name = "a<b&c"
        try:
            svg = render_svg(layout)
            assert "a&lt;b&amp;c" in svg
        finally:
            layout.region.name = "."

    def test_ascii_render(self, layout):
        art = render_ascii(layout, columns=60, rows=20)
        lines = art.splitlines()
        assert len(lines) <= 20
        assert any("|" in line for line in lines)
        assert any("drivers" in line or "kernel" in line
                   for line in lines)

    def test_overlay_nodes_maps_fields_to_files(self, graph, hierarchy):
        # a parameter is not drawn; it should overlay onto a region
        params = [n for n in graph.node_ids()
                  if graph.node_property(n, "type") == "function"]
        regions = overlay_nodes(graph, hierarchy, params[:2])
        assert regions
