"""mmap mode of the page cache: zero-copy reads, accounting, faults.

The buffered LRU path is covered by tests/graphdb/test_storage.py;
this file pins down the properties the mmap mode must share with it —
byte-for-byte identical reads, the same cold/warm accounting shape,
and the same StoreCorruptionError on a file truncated after open —
plus the mmap-only behaviours (zero-copy memoryview results, graceful
fallback for unmappable files).
"""

import os

import pytest

from repro.errors import StoreCorruptionError
from repro.graphdb import PropertyGraph
from repro.graphdb.storage import GraphStore, PageCache, PagedFile


@pytest.fixture
def payload_path(tmp_path):
    path = tmp_path / "data.bin"
    path.write_bytes(bytes(range(256)) * 64)  # 16 KiB, 4 pages at 4 KiB
    return path


class TestMmapMode:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            PageCache(mode="paged")
        assert PageCache(mode="mmap").mode == "mmap"
        assert PageCache().mode == "buffered"

    def test_reads_are_zero_copy_views(self, payload_path):
        cache = PageCache(page_size=4096, mode="mmap")
        with PagedFile(str(payload_path), cache) as paged:
            assert paged.mapped
            data = paged.read(3, 9)
            assert isinstance(data, memoryview)
            assert bytes(data) == payload_path.read_bytes()[3:12]

    def test_mmap_matches_buffered_bytes(self, payload_path):
        raw = payload_path.read_bytes()
        buffered = PagedFile(str(payload_path),
                             PageCache(page_size=4096))
        mapped = PagedFile(str(payload_path),
                           PageCache(page_size=4096, mode="mmap"))
        # ranges chosen to cover within-page, page-spanning and
        # end-of-file reads
        with buffered, mapped:
            for offset, length in [(0, 1), (10, 100), (4090, 12),
                                   (0, len(raw)), (len(raw) - 1, 1),
                                   (8191, 2), (5, 0)]:
                expect = raw[offset:offset + length]
                assert bytes(buffered.read(offset, length)) == expect
                assert bytes(mapped.read(offset, length)) == expect

    def test_first_touch_is_miss_later_touch_is_hit(self, payload_path):
        cache = PageCache(page_size=4096, mode="mmap")
        with PagedFile(str(payload_path), cache) as paged:
            paged.read(0, 10)
            assert (cache.stats.hits, cache.stats.misses) == (0, 1)
            paged.read(5, 10)
            assert (cache.stats.hits, cache.stats.misses) == (1, 1)
            paged.read(4090, 12)  # spans pages 0 (hit) and 1 (miss)
            assert (cache.stats.hits, cache.stats.misses) == (2, 2)

    def test_clear_makes_pages_cold_again(self, payload_path):
        cache = PageCache(page_size=4096, mode="mmap")
        with PagedFile(str(payload_path), cache) as paged:
            paged.read(0, 1)
            paged.read(0, 1)
            assert cache.stats.hits == 1
            cache.clear()
            paged.read(0, 1)
            assert cache.stats.misses == 2

    def test_read_bytes_counter_counts_backed_bytes(self, tmp_path):
        path = tmp_path / "tail.bin"
        path.write_bytes(b"x" * 5000)  # page 0 full, page 1 partial
        cache = PageCache(page_size=4096, mode="mmap")
        with PagedFile(str(path), cache) as paged:
            paged.read(0, 5000)
        snapshot = cache.metrics.snapshot()
        assert snapshot.counter("pagecache.read_bytes") == 5000

    def test_empty_file_falls_back_to_buffered(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        cache = PageCache(mode="mmap")
        with PagedFile(str(path), cache) as paged:
            assert not paged.mapped
            assert paged.read(0, 0) == b""

    def test_out_of_bounds_rejected(self, payload_path):
        cache = PageCache(page_size=4096, mode="mmap")
        with PagedFile(str(payload_path), cache) as paged:
            with pytest.raises(ValueError):
                paged.read(0, 16385)
            with pytest.raises(ValueError):
                paged.read(-1, 1)

    def test_truncation_after_open_raises(self, tmp_path):
        path = tmp_path / "shrink.bin"
        path.write_bytes(b"y" * 16384)
        cache = PageCache(page_size=4096, mode="mmap")
        paged = PagedFile(str(path), cache)
        try:
            paged.read(0, 10)  # page 0 now warm
            os.truncate(path, 4096)
            # warm pages stay readable (parity with the buffered LRU,
            # which would serve them from cache)
            paged.read(100, 10)
            # the first touch of a new page re-checks the on-disk size
            with pytest.raises(StoreCorruptionError):
                paged.read(8192, 10)
            assert cache.stats.short_reads == 1
        finally:
            paged.close()

    def test_close_is_idempotent_with_live_slices(self, payload_path):
        cache = PageCache(page_size=4096, mode="mmap")
        paged = PagedFile(str(payload_path), cache)
        slice_alive = paged.read(0, 16)
        paged.close()
        paged.close()
        assert paged.closed
        del slice_alive


class TestStoreOverMmap:
    @pytest.fixture
    def store_dir(self, tmp_path):
        g = PropertyGraph()
        a = g.add_node("function", short_name="alpha",
                       big=2 ** 80, tags=["x", "yz"])
        b = g.add_node("function", short_name="beta", score=1.5)
        c = g.add_node("file", path="a.c")
        g.add_edge(a, b, "calls", line=3)
        g.add_edge(c, a, "defines")
        directory = str(tmp_path / "store")
        GraphStore.write(g, directory)
        return directory

    def test_full_read_equivalence(self, store_dir):
        buffered = GraphStore.open(store_dir)
        mapped = GraphStore.open(store_dir,
                                 page_cache=PageCache(mode="mmap"))
        with buffered, mapped:
            assert mapped._nodes.mapped
            for node in buffered.node_ids():
                assert mapped.node_labels(node) == \
                    buffered.node_labels(node)
                assert mapped.node_properties(node) == \
                    buffered.node_properties(node)
            for edge in buffered.edge_ids():
                assert mapped.edge_source(edge) == \
                    buffered.edge_source(edge)
                assert mapped.edge_target(edge) == \
                    buffered.edge_target(edge)
                assert mapped.edge_properties(edge) == \
                    buffered.edge_properties(edge)

    def test_warm_ratio_beats_cold_ratio(self, store_dir):
        cache = PageCache(mode="mmap")
        with GraphStore.open(store_dir, page_cache=cache) as store:
            def scan():
                for node in store.node_ids():
                    store.node_properties(node)

            store.evict_caches()
            scan()
            cold_ratio = cache.stats.hit_ratio
            # decoded-object caches absorb a repeat scan; drop them but
            # keep pages warm to exercise the page-level accounting
            store._node_prop_cache.clear()
            store._node_cache.clear()
            cache.stats.reset()
            scan()
            warm_ratio = cache.stats.hit_ratio
            assert warm_ratio > cold_ratio

    def test_truncated_store_file_surfaces_corruption(self, store_dir):
        cache = PageCache(page_size=4096, mode="mmap")
        store = GraphStore.open(store_dir, page_cache=cache)
        try:
            store.evict_caches()
            os.truncate(os.path.join(store_dir, "propertystore.db"), 0)
            with pytest.raises(StoreCorruptionError):
                for node in store.node_ids():
                    store.node_properties(node)
        finally:
            store.close()


class TestRecordCacheBound:
    def test_capacity_validated(self, tmp_path):
        g = PropertyGraph()
        g.add_node("function", short_name="f")
        directory = str(tmp_path / "store")
        GraphStore.write(g, directory)
        with pytest.raises(ValueError):
            GraphStore.open(directory, record_cache_capacity=0)

    def test_fifo_eviction_bounds_decoded_records(self, tmp_path):
        g = PropertyGraph()
        nodes = [g.add_node("function", short_name=f"f{index}")
                 for index in range(8)]
        directory = str(tmp_path / "store")
        GraphStore.write(g, directory)
        with GraphStore.open(directory,
                             record_cache_capacity=3) as store:
            for node in nodes:
                store.node_properties(node)
            assert len(store._node_prop_cache) == 3
            # the newest entries survive (FIFO evicts oldest first)
            assert nodes[-1] in store._node_prop_cache
            # evicted records are still readable, just re-decoded
            assert store.node_properties(nodes[0])["short_name"] == "f0"


class TestConcurrentBufferedReads:
    def test_threaded_misses_share_one_handle_safely(self, tmp_path):
        """Regression: a cache miss does seek+read on the shared file
        handle; two executor worker threads interleaving those calls
        used to read at each other's position and come back short
        (a spurious "truncated after open" StoreCorruptionError under
        ``frappe serve``). A one-page cache forces every access to
        miss, so every read races every other; sleeping inside seek()
        forces the thread switch right at the vulnerable point, which
        makes the pre-fix failure deterministic."""
        import threading
        import time

        class SwitchySeekHandle:
            """File wrapper that yields the GIL between seek and read."""

            def __init__(self, handle):
                self._handle = handle

            def seek(self, offset):
                result = self._handle.seek(offset)
                time.sleep(0.0005)
                return result

            def __getattr__(self, name):
                return getattr(self._handle, name)

        path = tmp_path / "data.bin"
        payload = bytes(range(256)) * 256  # 64 KiB, many 4 KiB pages
        path.write_bytes(payload)
        cache = PageCache(page_size=4096, capacity_pages=1)
        errors = []
        with PagedFile(str(path), cache) as paged:
            paged._handle = SwitchySeekHandle(paged._handle)
            def hammer(seed):
                offsets = [(seed * 7919 + step * 4096) % (len(payload)
                           - 512) for step in range(40)]
                try:
                    for offset in offsets:
                        data = paged.read(offset, 512)
                        assert bytes(data) == payload[offset:offset
                                                      + 512]
                except Exception as error:  # pragma: no cover
                    errors.append(error)

            threads = [threading.Thread(target=hammer, args=(seed,))
                       for seed in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert errors == []
