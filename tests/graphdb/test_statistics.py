"""Live planner statistics (repro.graphdb.stats.GraphStatistics).

The cost-based Cypher planner reads label/edge-type cardinalities and
average out-degree from here, and the plan cache keys on the epoch —
so every mutation must keep the counts exact and bump the epoch.
"""

import pytest

from repro.graphdb import PropertyGraph
from repro.graphdb.stats import GraphStatistics, graph_statistics_for
from repro.graphdb.storage import GraphStore


@pytest.fixture
def graph():
    g = PropertyGraph()
    functions = [g.add_node("function", short_name=f"fn{i}")
                 for i in range(3)]
    field = g.add_node("field", short_name="id")
    for fn in functions:
        g.add_edge(fn, field, "reads")
    g.add_edge(functions[0], functions[1], "calls")
    return g


class TestIncrementalCounts:
    def test_node_and_edge_counts(self, graph):
        stats = graph.statistics
        assert stats.node_count == 4
        assert stats.edge_count == 4
        assert stats.label_count("function") == 3
        assert stats.label_count("field") == 1
        assert stats.label_count("missing") == 0
        assert stats.edge_type_count("reads") == 3
        assert stats.edge_type_count("calls") == 1

    def test_removal_decrements(self, graph):
        edge = next(iter(graph.edges_of(0)))
        graph.remove_edge(edge)
        assert graph.statistics.edge_type_count("reads") == 2
        graph.remove_node(3)
        assert graph.statistics.node_count == 3
        assert graph.statistics.label_count("field") == 0

    def test_label_mutations(self, graph):
        graph.add_label(0, "exported")
        assert graph.statistics.label_count("exported") == 1
        graph.remove_label(0, "exported")
        assert graph.statistics.label_count("exported") == 0

    def test_avg_out_degree(self, graph):
        stats = graph.statistics
        assert stats.avg_out_degree() == pytest.approx(4 / 4)
        assert stats.avg_out_degree(("reads",)) == pytest.approx(3 / 4)
        assert stats.avg_out_degree(("calls",)) == pytest.approx(1 / 4)
        assert stats.avg_out_degree(("calls", "reads")) == \
            pytest.approx(4 / 4)

    def test_empty_graph(self):
        stats = PropertyGraph().statistics
        assert stats.node_count == 0
        assert stats.avg_out_degree() == 0.0


class TestEpoch:
    def test_every_mutation_bumps(self, graph):
        epoch = graph.statistics.epoch
        for mutate in (
                lambda: graph.add_node("macro"),
                lambda: graph.add_edge(0, 1, "includes"),
                lambda: graph.set_node_property(0, "k", 1),
                lambda: graph.add_label(0, "tmp"),
                lambda: graph.remove_label(0, "tmp"),
                lambda: graph.set_edge_property(
                    next(iter(graph.edges_of(0))), "k", 1)):
            mutate()
            assert graph.statistics.epoch > epoch
            epoch = graph.statistics.epoch

    def test_reads_do_not_bump(self, graph):
        epoch = graph.statistics.epoch
        graph.node_labels(0)
        graph.statistics.label_count("function")
        graph.statistics.avg_out_degree()
        assert graph.statistics.epoch == epoch


class TestOfViewFallback:
    def test_matches_incremental(self, graph):
        computed = GraphStatistics.of_view(graph)
        live = graph.statistics
        assert computed.node_count == live.node_count
        assert computed.edge_count == live.edge_count
        assert computed.label_counts == live.label_counts
        assert computed.edge_type_counts == live.edge_type_counts

    def test_graph_statistics_for_returns_live(self, graph):
        assert graph_statistics_for(graph) is graph.statistics

    def test_from_counts(self):
        stats = GraphStatistics.from_counts(
            10, 20, {"function": 7}, {"calls": 20})
        assert stats.label_count("function") == 7
        assert stats.avg_out_degree(("calls",)) == pytest.approx(2.0)


class TestStoreStatistics:
    def test_built_from_metadata(self, graph, tmp_path):
        directory = str(tmp_path / "store")
        GraphStore.write(graph, directory)
        with GraphStore.open(directory) as store:
            stats = store.statistics
            assert stats.node_count == graph.node_count()
            assert stats.edge_count == graph.edge_count()
            assert stats.label_count("function") == 3
            assert stats.edge_type_count("reads") == 3
            # immutable store: plans never go stale
            assert stats.epoch == 0
            assert graph_statistics_for(store) is stats
