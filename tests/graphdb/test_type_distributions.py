"""Node/edge type inventories."""

from repro.graphdb import PropertyGraph
from repro.graphdb.stats import (edge_type_distribution,
                                 node_type_distribution)


def test_node_type_distribution():
    g = PropertyGraph()
    g.add_node("function", type="function")
    g.add_node("function", type="function")
    g.add_node("file", type="file")
    g.add_node()  # untyped
    assert node_type_distribution(g) == {"function": 2, "file": 1,
                                         "?": 1}


def test_edge_type_distribution():
    g = PropertyGraph()
    a, b = g.add_node(), g.add_node()
    g.add_edge(a, b, "calls")
    g.add_edge(a, b, "calls")
    g.add_edge(b, a, "reads")
    assert edge_type_distribution(g) == {"calls": 2, "reads": 1}


def test_empty_graph():
    g = PropertyGraph()
    assert node_type_distribution(g) == {}
    assert edge_type_distribution(g) == {}
