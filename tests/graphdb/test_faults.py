"""Unit tests for the fault-injection harness itself.

The crash-safety suite leans on this harness, so each fault kind must
demonstrably do what it claims before any store-level conclusion can
be trusted.
"""

import json
import os
import zlib

import pytest

from repro.graphdb.storage.faults import (BIT_FLIP, EIO, TORN_WRITE,
                                          TRUNCATE, FaultInjector,
                                          FaultyFile, FileFault,
                                          InjectedCrash, InjectedIOError,
                                          checkpoint_labels, crc32_of,
                                          flip_byte, truncate_file)


class TestFileFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FileFault("melt")

    @pytest.mark.parametrize("kind", [TORN_WRITE, BIT_FLIP, TRUNCATE,
                                      EIO])
    def test_known_kinds_accepted(self, kind):
        assert FileFault(kind).kind == kind


class TestFaultyFile:
    def test_torn_write_silently_loses_the_tail(self, tmp_path):
        path = str(tmp_path / "torn.bin")
        with FaultyFile(path, "wb", FileFault(TORN_WRITE, at_byte=10)) \
                as handle:
            assert handle.write(b"A" * 25) == 25  # caller sees success
            assert handle.write(b"B" * 25) == 25
        assert os.path.getsize(path) == 10
        with open(path, "rb") as check:
            assert check.read() == b"A" * 10

    def test_torn_write_tears_mid_chunk(self, tmp_path):
        path = str(tmp_path / "torn2.bin")
        with FaultyFile(path, "wb", FileFault(TORN_WRITE, at_byte=3)) \
                as handle:
            handle.write(b"ABCDEF")
        with open(path, "rb") as check:
            assert check.read() == b"ABC"

    def test_bit_flip_corrupts_one_byte_at_close(self, tmp_path):
        path = str(tmp_path / "flip.bin")
        with FaultyFile(path, "wb",
                        FileFault(BIT_FLIP, at_byte=3, xor_mask=0x01)) \
                as handle:
            handle.write(b"\x00" * 8)
        with open(path, "rb") as check:
            data = check.read()
        assert data == b"\x00\x00\x00\x01\x00\x00\x00\x00"

    def test_truncate_cuts_at_close(self, tmp_path):
        path = str(tmp_path / "cut.bin")
        with FaultyFile(path, "wb", FileFault(TRUNCATE, at_byte=5)) \
                as handle:
            handle.write(b"0123456789")
        assert os.path.getsize(path) == 5

    def test_eio_raises_oserror_with_partial_data(self, tmp_path):
        path = str(tmp_path / "eio.bin")
        handle = FaultyFile(path, "wb", FileFault(EIO, at_byte=4))
        with pytest.raises(InjectedIOError) as info:
            handle.write(b"0123456789")
        assert info.value.errno == 5
        handle.close()
        assert os.path.getsize(path) == 4  # the bytes before the fault

    def test_text_writes_are_encoded_before_tearing(self, tmp_path):
        path = str(tmp_path / "torn.json")
        with FaultyFile(path, "w", FileFault(TORN_WRITE, at_byte=8)) \
                as handle:
            json.dump({"key": "a long enough value"}, handle)
        with open(path, "rb") as check:
            torn = check.read()
        assert len(torn) == 8
        with pytest.raises(ValueError):
            json.loads(torn.decode("utf-8"))


class TestFaultInjector:
    def test_checkpoints_recorded_in_order(self):
        injector = FaultInjector()
        for label in ("first", "second", "third"):
            injector.checkpoint(label)
        assert injector.checkpoints == ["first", "second", "third"]

    def test_crash_at_label(self):
        injector = FaultInjector(crash_at="second")
        injector.checkpoint("first")
        with pytest.raises(InjectedCrash) as info:
            injector.checkpoint("second")
        assert info.value.label == "second"

    def test_crash_is_not_a_frappe_error(self):
        from repro.errors import FrappeError
        assert not issubclass(InjectedCrash, FrappeError)

    def test_open_matches_by_basename(self, tmp_path):
        injector = FaultInjector().inject("target.bin", TRUNCATE,
                                          at_byte=1)
        faulty = injector.open(str(tmp_path / "target.bin"))
        assert isinstance(faulty, FaultyFile)
        faulty.write(b"1234")
        faulty.close()
        assert injector.fired == [("target.bin", TRUNCATE)]

    def test_open_passes_through_unmatched_and_reads(self, tmp_path):
        injector = FaultInjector().inject("target.bin", TRUNCATE)
        other = str(tmp_path / "other.bin")
        with injector.open(other) as handle:
            assert not isinstance(handle, FaultyFile)
            handle.write(b"ok")
        with injector.open(other, "rb") as handle:
            assert handle.read() == b"ok"


class TestDiskHelpers:
    def test_flip_byte_round_trips(self, tmp_path):
        path = str(tmp_path / "data.bin")
        with open(path, "wb") as handle:
            handle.write(b"\x10\x20\x30")
        assert flip_byte(path, 1, xor_mask=0xFF) == 1
        with open(path, "rb") as handle:
            assert handle.read() == b"\x10\xdf\x30"

    def test_flip_byte_clamps_offset(self, tmp_path):
        path = str(tmp_path / "tiny.bin")
        with open(path, "wb") as handle:
            handle.write(b"\x00")
        assert flip_byte(path, 999) == 0

    def test_flip_byte_refuses_empty_file(self, tmp_path):
        path = str(tmp_path / "empty.bin")
        open(path, "wb").close()
        with pytest.raises(ValueError):
            flip_byte(path, 0)

    def test_truncate_file_reports_removed_bytes(self, tmp_path):
        path = str(tmp_path / "data.bin")
        with open(path, "wb") as handle:
            handle.write(b"x" * 100)
        assert truncate_file(path, 30) == 70
        assert os.path.getsize(path) == 30

    def test_crc32_of_matches_zlib(self, tmp_path):
        path = str(tmp_path / "data.bin")
        payload = bytes(range(256)) * 10
        with open(path, "wb") as handle:
            handle.write(payload)
        assert crc32_of(path) == zlib.crc32(payload) & 0xFFFFFFFF

    def test_checkpoint_labels_dedupes_preserving_order(self):
        assert checkpoint_labels(["a", "b", "a", "c", "b"]) == \
            ["a", "b", "c"]
