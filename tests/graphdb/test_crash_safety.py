"""Crash consistency and self-verification of the graph store.

The store's durability contract: ``GraphStore.write`` is atomic at the
directory level — a crash at *any* step of the commit protocol leaves
either the complete old store or the complete new store on disk, never
a hybrid — and ``GraphStore.verify`` (the engine behind ``frappe
fsck``) pinpoints damage to the exact file and Table 4 category.
"""

import os

import pytest

from repro.errors import StoreCorruptionError
from repro.graphdb import PropertyGraph
from repro.graphdb.storage import (CLEAN, CORRUPT, REPAIRABLE,
                                   GraphStore, PageCache)
from repro.graphdb.storage import store as store_mod
from repro.graphdb.storage.faults import (EIO, TORN_WRITE, FaultInjector,
                                          InjectedCrash, InjectedIOError,
                                          checkpoint_labels, flip_byte,
                                          truncate_file)


def make_graph(version):
    """A small store payload stamped with a version marker."""
    graph = PropertyGraph(auto_index_keys=("short_name",))
    nodes = [graph.add_node("function", short_name=f"f{index}",
                            version=version, note="x" * 40)
             for index in range(12)]
    for index in range(11):
        graph.add_edge(nodes[index], nodes[index + 1], "calls",
                       weight=index)
    return graph


def stored_versions(directory):
    with GraphStore.open(directory) as graph:
        return {graph.node_property(node_id, "version")
                for node_id in graph.node_ids()}


@pytest.fixture
def store_dir(tmp_path):
    directory = str(tmp_path / "store")
    GraphStore.write(make_graph("v1"), directory)
    return directory


def recorded_labels(tmp_path):
    injector = FaultInjector()
    GraphStore.write(make_graph("probe"), str(tmp_path / "probe"),
                     injector=injector)
    return checkpoint_labels(injector.checkpoints)


class TestCrashAtEveryStep:
    def test_write_has_a_rich_checkpoint_stream(self, tmp_path):
        labels = recorded_labels(tmp_path)
        assert len(labels) >= 10
        assert labels.index("manifest_written") < \
            labels.index("new_store_committed")

    def test_crash_at_every_checkpoint_leaves_old_or_new(self, tmp_path):
        labels = recorded_labels(tmp_path)
        for label in labels:
            directory = str(tmp_path / f"crash-{label}")
            GraphStore.write(make_graph("v1"), directory)
            with pytest.raises(InjectedCrash):
                GraphStore.write(make_graph("v2"), directory,
                                 injector=FaultInjector(crash_at=label))
            versions = stored_versions(directory)
            assert versions in ({"v1"}, {"v2"}), \
                f"hybrid store after crash at {label!r}: {versions}"
            verdict = GraphStore.verify(directory)
            assert verdict.ok, \
                f"crash at {label!r} left damage: {verdict.summary()}"

    def test_crash_before_manifest_keeps_old_store(self, tmp_path):
        directory = str(tmp_path / "store")
        GraphStore.write(make_graph("v1"), directory)
        with pytest.raises(InjectedCrash):
            GraphStore.write(
                make_graph("v2"), directory,
                injector=FaultInjector(crash_at="nodes_written"))
        assert stored_versions(directory) == {"v1"}

    def test_crash_after_displacement_recovers_new_store(self, tmp_path):
        directory = str(tmp_path / "store")
        GraphStore.write(make_graph("v1"), directory)
        with pytest.raises(InjectedCrash):
            GraphStore.write(
                make_graph("v2"), directory,
                injector=FaultInjector(crash_at="old_store_displaced"))
        # the sealed staging dir rolls forward at the next open
        assert stored_versions(directory) == {"v2"}

    def test_crash_cleanup_removes_siblings(self, tmp_path):
        directory = str(tmp_path / "store")
        GraphStore.write(make_graph("v1"), directory)
        with pytest.raises(InjectedCrash):
            GraphStore.write(
                make_graph("v2"), directory,
                injector=FaultInjector(crash_at="new_store_committed"))
        stored_versions(directory)  # open() runs recovery
        assert not os.path.exists(directory + ".tmp")
        assert not os.path.exists(directory + ".old")


class TestWriteFaults:
    def test_torn_manifest_does_not_seal_the_commit(self, tmp_path):
        directory = str(tmp_path / "store")
        GraphStore.write(make_graph("v1"), directory)
        injector = FaultInjector(crash_at="manifest_written")
        injector.inject(store_mod.MANIFEST_FILE, TORN_WRITE, at_byte=9)
        with pytest.raises(InjectedCrash):
            GraphStore.write(make_graph("v2"), directory,
                             injector=injector)
        # staging's manifest is torn mid-JSON, so recovery must NOT
        # roll it forward
        assert stored_versions(directory) == {"v1"}
        assert GraphStore.verify(directory).ok

    def test_eio_during_write_preserves_old_store(self, tmp_path):
        directory = str(tmp_path / "store")
        GraphStore.write(make_graph("v1"), directory)
        injector = FaultInjector()
        injector.inject(store_mod.PROP_FILE, EIO, at_byte=8)
        with pytest.raises(InjectedIOError):
            GraphStore.write(make_graph("v2"), directory,
                             injector=injector)
        assert injector.fired == [(store_mod.PROP_FILE, EIO)]
        assert stored_versions(directory) == {"v1"}
        assert not os.path.exists(directory + ".tmp")  # open cleaned up

    def test_first_write_crash_leaves_no_store(self, tmp_path):
        directory = str(tmp_path / "store")
        with pytest.raises(InjectedCrash):
            GraphStore.write(
                make_graph("v1"), directory,
                injector=FaultInjector(crash_at="metadata_written"))
        assert not os.path.exists(directory)


class TestRecover:
    def test_roll_forward_from_sealed_staging(self, store_dir):
        os.rename(store_dir, store_dir + ".tmp")
        assert GraphStore.recover(store_dir) == "rolled_forward"
        assert stored_versions(store_dir) == {"v1"}

    def test_roll_back_from_displaced_old(self, store_dir):
        os.rename(store_dir, store_dir + ".old")
        assert GraphStore.recover(store_dir) == "rolled_back"
        assert stored_versions(store_dir) == {"v1"}

    def test_noop_on_complete_store(self, store_dir):
        assert GraphStore.recover(store_dir) is None

    def test_noop_on_missing_directory(self, tmp_path):
        assert GraphStore.recover(str(tmp_path / "nowhere")) is None


class TestVerify:
    def test_fresh_store_is_clean(self, store_dir):
        verdict = GraphStore.verify(store_dir)
        assert verdict.ok
        assert verdict.status == CLEAN
        assert verdict.problems == []
        assert "clean" in verdict.summary()

    def test_bit_flip_in_nodestore_is_corrupt_and_located(self,
                                                         store_dir):
        flip_byte(os.path.join(store_dir, store_mod.NODE_FILE), 40)
        verdict = GraphStore.verify(store_dir)
        assert verdict.status == CORRUPT
        assert store_mod.NODE_FILE in verdict.corrupt_files()
        assert any(problem.category == "nodes"
                   for problem in verdict.problems)

    def test_bit_flip_in_postings_is_repairable(self, store_dir):
        flip_byte(os.path.join(store_dir,
                               store_mod.INDEX_POSTINGS_FILE), 3)
        verdict = GraphStore.verify(store_dir)
        assert verdict.status == REPAIRABLE
        assert not verdict.ok
        assert {problem.category
                for problem in verdict.problems} == {"indexes"}

    def test_truncated_property_store_is_corrupt(self, store_dir):
        truncate_file(os.path.join(store_dir, store_mod.PROP_FILE), 10)
        verdict = GraphStore.verify(store_dir)
        assert verdict.status == CORRUPT
        assert verdict.problems_in("properties")

    def test_truncated_relationship_store_reports_offset(self,
                                                         store_dir):
        path = os.path.join(store_dir, store_mod.REL_FILE)
        kept = os.path.getsize(path) // 2
        truncate_file(path, kept)
        verdict = GraphStore.verify(store_dir)
        assert verdict.status == CORRUPT
        sizes = [problem for problem in
                 verdict.problems_in("relationships")
                 if problem.file == store_mod.REL_FILE]
        assert sizes and sizes[0].offset is not None

    def test_missing_directory_is_corrupt(self, tmp_path):
        verdict = GraphStore.verify(str(tmp_path / "nowhere"))
        assert verdict.status == CORRUPT

    def test_count_lie_in_metadata_is_corrupt(self, store_dir):
        import json
        path = os.path.join(store_dir, store_mod.METADATA_FILE)
        with open(path, encoding="utf-8") as handle:
            metadata = json.load(handle)
        metadata["node_count"] = 999999
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(metadata, handle)
        verdict = GraphStore.verify(store_dir)
        assert verdict.status == CORRUPT
        assert verdict.problems_in("metadata")

    def test_problem_str_names_file_and_offset(self, store_dir):
        truncate_file(os.path.join(store_dir, store_mod.NODE_FILE), 5)
        verdict = GraphStore.verify(store_dir)
        rendered = [str(problem) for problem in verdict.problems]
        assert any(store_mod.NODE_FILE in line and "byte" in line
                   for line in rendered)


class TestRuntimeCorruptionDetection:
    def test_short_read_counted_and_raised(self, store_dir):
        cache = PageCache()
        graph = GraphStore.open(store_dir, cache)
        try:
            assert len(list(graph.node_ids())) == 12
            truncate_file(os.path.join(store_dir, store_mod.NODE_FILE),
                          16)
            graph.evict_caches()
            with pytest.raises(StoreCorruptionError):
                list(graph.node_ids())
            assert cache.stats.short_reads == 1
        finally:
            graph.close()

    def test_corruption_error_names_file_and_offset(self, store_dir):
        truncate_file(os.path.join(store_dir, store_mod.PROP_FILE), 1)
        with pytest.raises(StoreCorruptionError) as info:
            with GraphStore.open(store_dir) as graph:
                for node_id in graph.node_ids():
                    graph.node_properties(node_id)
        assert store_mod.PROP_FILE in str(info.value)
        assert "byte" in str(info.value)

    def test_close_is_idempotent(self, store_dir):
        graph = GraphStore.open(store_dir)
        graph.close()
        graph.close()  # second close must be a no-op
        assert graph.indexes.postings_file.closed
