"""Failure injection: corrupted and truncated stores fail loudly.

A production store must never answer queries from garbage — every
class of file damage must surface as a StoreError/StoreFormatError,
not as silently wrong results.
"""

import json
import os

import pytest

from repro.errors import StoreError, StoreFormatError
from repro.graphdb import PropertyGraph
from repro.graphdb.storage import GraphStore
from repro.graphdb.storage import store as store_mod


@pytest.fixture
def store_dir(tmp_path):
    graph = PropertyGraph()
    nodes = [graph.add_node("function", short_name=f"f{index}",
                            type="function", note="x" * 50)
             for index in range(20)]
    for index in range(19):
        graph.add_edge(nodes[index], nodes[index + 1], "calls",
                       use_start_line=index)
    directory = str(tmp_path / "store")
    GraphStore.write(graph, directory)
    return directory


def _damage(directory, filename, mode):
    path = os.path.join(directory, filename)
    if mode == "truncate":
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(max(size // 3, 1))
    elif mode == "zero":
        size = os.path.getsize(path)
        with open(path, "wb") as handle:
            handle.write(b"\x00" * size)
    elif mode == "delete":
        os.remove(path)


class TestMissingFiles:
    @pytest.mark.parametrize("filename", [
        store_mod.NODE_FILE, store_mod.REL_FILE, store_mod.PROP_FILE,
        store_mod.STRING_FILE, store_mod.ADJ_FILE,
        store_mod.STRING_OFFSETS_FILE, store_mod.INDEX_DICT_FILE,
    ])
    def test_missing_file_fails_open_or_access(self, store_dir,
                                               filename):
        _damage(store_dir, filename, "delete")
        with pytest.raises((StoreError, OSError)):
            with GraphStore.open(store_dir) as graph:
                # touch everything a query would
                for node_id in graph.node_ids():
                    graph.node_properties(node_id)
                    list(graph.edges_of(node_id))
                list(graph.indexes.query("short_name: f1"))

    def test_missing_metadata_is_not_a_store(self, store_dir):
        _damage(store_dir, store_mod.METADATA_FILE, "delete")
        with pytest.raises(StoreError):
            GraphStore.open(store_dir)


class TestTruncation:
    def test_truncated_node_store(self, store_dir):
        _damage(store_dir, store_mod.NODE_FILE, "truncate")
        with pytest.raises((StoreFormatError, ValueError)):
            with GraphStore.open(store_dir) as graph:
                for node_id in range(20):
                    graph.node_properties(node_id)

    def test_truncated_property_store(self, store_dir):
        _damage(store_dir, store_mod.PROP_FILE, "truncate")
        with pytest.raises((StoreFormatError, ValueError)):
            with GraphStore.open(store_dir) as graph:
                for node_id in graph.node_ids():
                    graph.node_properties(node_id)

    def test_truncated_string_store(self, store_dir):
        _damage(store_dir, store_mod.STRING_FILE, "truncate")
        with pytest.raises((StoreFormatError, ValueError)):
            with GraphStore.open(store_dir) as graph:
                for node_id in graph.node_ids():
                    graph.node_properties(node_id)


class TestGarbage:
    def test_corrupt_metadata_json(self, store_dir):
        path = os.path.join(store_dir, store_mod.METADATA_FILE)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        with pytest.raises((StoreError, ValueError)):
            GraphStore.open(store_dir)

    def test_zeroed_node_store_reads_as_holes(self, store_dir):
        # all-zero records decode as in_use=0: nodes 'gone', not garbage
        _damage(store_dir, store_mod.NODE_FILE, "zero")
        with GraphStore.open(store_dir) as graph:
            assert list(graph.node_ids()) == []

    def test_bad_index_dictionary(self, store_dir):
        path = os.path.join(store_dir, store_mod.INDEX_DICT_FILE)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("[1, 2, 3]")
        with pytest.raises((StoreError, ValueError, AttributeError,
                            TypeError)):
            with GraphStore.open(store_dir) as graph:
                list(graph.indexes.query("short_name: f1"))

    def test_metadata_counts_mismatch_is_detectable(self, store_dir):
        path = os.path.join(store_dir, store_mod.METADATA_FILE)
        with open(path, encoding="utf-8") as handle:
            metadata = json.load(handle)
        metadata["node_count"] = 999999
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(metadata, handle)
        with GraphStore.open(store_dir) as graph:
            # reported count disagrees with live records
            assert graph.node_count() != len(list(graph.node_ids()))
