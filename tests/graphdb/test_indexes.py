"""Auto-index maintenance and lucene-style query evaluation."""

import pytest

from repro.errors import LuceneQueryError
from repro.graphdb import PropertyGraph, luceneql


@pytest.fixture
def graph():
    g = PropertyGraph()
    g.add_node("struct", "symbol", short_name="task_struct", type="struct")
    g.add_node("union", "symbol", short_name="epoll_data", type="union")
    g.add_node("function", "symbol", short_name="schedule", type="function")
    g.add_node("function", "symbol", short_name="schedule_timeout",
               type="function")
    g.add_node("macro", short_name="SCHED_DEBUG", type="macro")
    g.add_node("field", short_name="id", type="field")
    g.add_node("field", short_name="id", type="field")
    return g


class TestExactLookup:
    def test_lookup_single(self, graph):
        assert list(graph.indexes.lookup("short_name", "schedule")) == [2]

    def test_lookup_multiple_sorted(self, graph):
        assert list(graph.indexes.lookup("short_name", "id")) == [5, 6]

    def test_lookup_case_insensitive(self, graph):
        assert list(graph.indexes.lookup("short_name", "sched_debug")) == [4]

    def test_lookup_unknown_key(self, graph):
        assert list(graph.indexes.lookup("nope", "x")) == []

    def test_removal_unindexes(self, graph):
        graph.remove_node(2)
        assert list(graph.indexes.lookup("short_name", "schedule")) == []
        # the other 'schedule_timeout' node is unaffected
        assert list(graph.indexes.lookup("short_name",
                                         "schedule_timeout")) == [3]


class TestQueryStrings:
    def test_simple_clause(self, graph):
        assert list(graph.indexes.query("short_name: schedule")) == [2]

    def test_adjacency_is_or(self, graph):
        result = list(graph.indexes.query(
            "type: struct type: union"))
        assert result == [0, 1]

    def test_explicit_and(self, graph):
        result = list(graph.indexes.query(
            "type: field AND short_name: id"))
        assert result == [5, 6]

    def test_paper_table6_shape(self, graph):
        # (TYPE: struct TYPE: union ...) AND NAME-ish clause
        result = list(graph.indexes.query(
            "(TYPE: struct TYPE: union) AND SHORT_NAME: task_struct"))
        assert result == [0]

    def test_and_binds_tighter_than_or(self, graph):
        # struct OR (field AND id) -> {0} | {5,6}
        result = list(graph.indexes.query(
            "type: struct OR type: field AND short_name: id"))
        assert result == [0, 5, 6]

    def test_not(self, graph):
        result = list(graph.indexes.query(
            "type: function AND NOT short_name: schedule"))
        assert result == [3]

    def test_wildcard_star(self, graph):
        result = list(graph.indexes.query("short_name: sched*"))
        assert result == [2, 3, 4]

    def test_wildcard_question(self, graph):
        assert list(graph.indexes.query("short_name: i?")) == [5, 6]

    def test_fuzzy(self, graph):
        # one substitution away
        assert list(graph.indexes.query("short_name: schedul~1")) == [2]

    def test_quoted_term(self, graph):
        g = PropertyGraph()
        node = g.add_node(short_name="hello world")
        assert list(g.indexes.query('short_name: "hello world"')) == [node]

    def test_empty_query_rejected(self, graph):
        with pytest.raises(LuceneQueryError):
            list(graph.indexes.query("   "))

    def test_unbalanced_paren_rejected(self, graph):
        with pytest.raises(LuceneQueryError):
            list(graph.indexes.query("(type: struct"))

    def test_missing_term_rejected(self, graph):
        with pytest.raises(LuceneQueryError):
            list(graph.indexes.query("type:"))


class TestLabelIndex:
    def test_label_lookup(self, graph):
        assert list(graph.indexes.label("function")) == [2, 3]
        assert list(graph.indexes.label("symbol")) == [0, 1, 2, 3]

    def test_label_count(self, graph):
        assert graph.indexes.label_count("function") == 2
        assert graph.indexes.label_count("ghost") == 0

    def test_labels_listing(self, graph):
        assert "macro" in list(graph.indexes.labels())


class TestStatsCounters:
    def test_term_count(self, graph):
        assert graph.indexes.term_count("type") == 5

    def test_estimated_entry_count_positive(self, graph):
        assert graph.indexes.estimated_entry_count() >= graph.node_count()


class TestRebuild:
    def test_rebuild_equals_incremental(self, graph):
        before = list(graph.indexes.query("short_name: sched*"))
        graph.indexes.rebuild(graph.node_ids(), graph.node_labels,
                              graph.node_properties)
        assert list(graph.indexes.query("short_name: sched*")) == before


class TestEditDistance:
    @pytest.mark.parametrize("a,b,limit,expected", [
        ("abc", "abc", 0, True),
        ("abc", "abd", 1, True),
        ("abc", "abd", 0, False),
        ("kitten", "sitting", 3, True),
        ("kitten", "sitting", 2, False),
        ("", "ab", 2, True),
        ("", "abc", 2, False),
    ])
    def test_cases(self, a, b, limit, expected):
        assert luceneql.edit_distance_at_most(a, b, limit) is expected


class TestWildcardRegex:
    def test_star(self):
        assert luceneql.wildcard_to_regex("a*c").fullmatch("abbbc")

    def test_question(self):
        regex = luceneql.wildcard_to_regex("a?c")
        assert regex.fullmatch("abc")
        assert not regex.fullmatch("abbc")

    def test_escapes_regex_chars(self):
        assert luceneql.wildcard_to_regex("a.c").fullmatch("a.c")
        assert not luceneql.wildcard_to_regex("a.c").fullmatch("abc")
