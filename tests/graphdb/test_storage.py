"""On-disk store: codecs, page cache, write/open round trip."""

import os

import pytest

from repro.errors import (EdgeNotFoundError, NodeNotFoundError, StoreError,
                          StoreFormatError)
from repro.graphdb import Direction, PropertyGraph
from repro.graphdb.storage import GraphStore, PageCache, PagedFile
from repro.graphdb.storage import records
from repro.graphdb.storage import store as store_mod


# --------------------------------------------------------------------------
# Record codecs
# --------------------------------------------------------------------------

class TestRecordCodecs:
    def test_node_roundtrip(self):
        raw = records.encode_node(True, 3, 77, 1000, 24)
        assert len(raw) == records.NODE_RECORD_SIZE
        assert records.decode_node(raw) == (True, 3, 77, 1000, 24)

    def test_node_hole(self):
        raw = records.encode_node(False, 0, records.NO_OFFSET, 0, 0)
        assert records.decode_node(raw)[0] is False

    def test_rel_roundtrip(self):
        raw = records.encode_rel(True, 9, 12, 34, records.NO_OFFSET)
        assert len(raw) == records.REL_RECORD_SIZE
        assert records.decode_rel(raw) == (True, 9, 12, 34,
                                           records.NO_OFFSET)

    def test_truncated_record_raises(self):
        with pytest.raises(StoreFormatError):
            records.decode_node(b"\x01\x02")

    def test_adjacency_roundtrip(self):
        out_groups = [(0, [1, 2, 3]), (2, [9])]
        in_groups = [(1, [4])]
        block = records.encode_adjacency(out_groups, in_groups)
        decoded_out, decoded_in = records.decode_adjacency(block)
        assert decoded_out == [(0, (1, 2, 3)), (2, (9,))]
        assert decoded_in == [(1, (4,))]

    def test_adjacency_empty(self):
        block = records.encode_adjacency([], [])
        assert records.decode_adjacency(block) == ([], [])

    def test_property_block_roundtrip(self):
        entries = [(0, records.TAG_INT, records.pack_int(-5)),
                   (1, records.TAG_BOOL, 1)]
        block = records.encode_property_block(entries)
        count = records.decode_property_block_header(block)
        assert count == 2
        assert records.decode_property_entries(block, count) == entries

    def test_int_packing_negative(self):
        assert records.unpack_int(records.pack_int(-123456789)) == -123456789

    def test_float_packing(self):
        assert records.unpack_float(records.pack_float(3.25)) == 3.25

    def test_big_int_detection(self):
        assert records.fits_inline_int(2 ** 62)
        assert not records.fits_inline_int(2 ** 64)

    @pytest.mark.parametrize("values", [
        [1, 2, 3], [1.5, -2.5], [True, False], ["a", "bc", ""], [],
    ])
    def test_list_blob_roundtrip(self, values):
        assert records.decode_list_blob(
            records.encode_list_blob(values)) == values


# --------------------------------------------------------------------------
# Page cache
# --------------------------------------------------------------------------

class TestPageCache:
    def test_hit_miss_accounting(self, tmp_path):
        path = tmp_path / "data.bin"
        path.write_bytes(bytes(range(256)) * 64)  # 16 KiB
        cache = PageCache(capacity_pages=4, page_size=4096)
        with PagedFile(str(path), cache) as paged:
            paged.read(0, 10)
            assert (cache.stats.hits, cache.stats.misses) == (0, 1)
            paged.read(5, 10)
            assert (cache.stats.hits, cache.stats.misses) == (1, 1)

    def test_cross_page_read(self, tmp_path):
        path = tmp_path / "data.bin"
        payload = bytes(range(256)) * 64
        path.write_bytes(payload)
        cache = PageCache(capacity_pages=8, page_size=4096)
        with PagedFile(str(path), cache) as paged:
            assert paged.read(4090, 12) == payload[4090:4102]
            assert cache.stats.misses == 2

    def test_eviction(self, tmp_path):
        path = tmp_path / "data.bin"
        path.write_bytes(b"\x00" * 4096 * 4)
        cache = PageCache(capacity_pages=2, page_size=4096)
        with PagedFile(str(path), cache) as paged:
            for page in range(4):
                paged.read(page * 4096, 1)
            assert cache.stats.evictions == 2
            assert cache.resident_pages == 2

    def test_clear_forces_cold_reads(self, tmp_path):
        path = tmp_path / "data.bin"
        path.write_bytes(b"\x01" * 4096)
        cache = PageCache(page_size=4096)
        with PagedFile(str(path), cache) as paged:
            paged.read(0, 1)
            paged.read(0, 1)
            assert cache.stats.hits == 1
            cache.clear()
            paged.read(0, 1)
            assert cache.stats.misses == 2

    def test_out_of_bounds_read_rejected(self, tmp_path):
        path = tmp_path / "data.bin"
        path.write_bytes(b"ab")
        with PagedFile(str(path), PageCache()) as paged:
            with pytest.raises(ValueError):
                paged.read(0, 3)
            with pytest.raises(ValueError):
                paged.read(-1, 1)

    def test_zero_length_read(self, tmp_path):
        path = tmp_path / "data.bin"
        path.write_bytes(b"")
        with PagedFile(str(path), PageCache()) as paged:
            assert paged.read(0, 0) == b""

    def test_bad_configuration_rejected(self):
        with pytest.raises(ValueError):
            PageCache(capacity_pages=0)
        with pytest.raises(ValueError):
            PageCache(page_size=16)


# --------------------------------------------------------------------------
# Store round trip
# --------------------------------------------------------------------------

@pytest.fixture
def sample_graph():
    g = PropertyGraph()
    f = g.add_node("file", short_name="main.c", type="file")
    m = g.add_node("function", "symbol", short_name="main",
                   type="function", name="main", long_name="main(int,char**)")
    b = g.add_node("function", "symbol", short_name="bar", type="function",
                   variadic=True)
    v = g.add_node("global", short_name="counter", type="global", value=42)
    g.add_edge(f, m, "file_contains")
    g.add_edge(f, b, "file_contains")
    g.add_edge(m, b, "calls", use_start_line=7, use_start_col=3)
    g.add_edge(m, v, "writes", qualifiers="*c",
               array_lengths=[4, 5])
    g.add_edge(b, v, "reads")
    return g


@pytest.fixture
def opened(tmp_path, sample_graph):
    directory = str(tmp_path / "store")
    GraphStore.write(sample_graph, directory)
    sg = GraphStore.open(directory)
    yield sample_graph, sg
    sg.close()


class TestRoundTrip:
    def test_counts(self, opened):
        g, sg = opened
        assert sg.node_count() == g.node_count()
        assert sg.edge_count() == g.edge_count()

    def test_node_ids_preserved(self, opened):
        g, sg = opened
        assert list(sg.node_ids()) == sorted(g.node_ids())

    def test_node_labels_and_properties(self, opened):
        g, sg = opened
        for node_id in g.node_ids():
            assert sg.node_labels(node_id) == g.node_labels(node_id)
            assert sg.node_properties(node_id) == g.node_properties(node_id)

    def test_edges_preserved(self, opened):
        g, sg = opened
        for edge_id in g.edge_ids():
            assert sg.edge_source(edge_id) == g.edge_source(edge_id)
            assert sg.edge_target(edge_id) == g.edge_target(edge_id)
            assert sg.edge_type(edge_id) == g.edge_type(edge_id)
            assert sg.edge_properties(edge_id) == g.edge_properties(edge_id)

    def test_adjacency_preserved(self, opened):
        g, sg = opened
        for node_id in g.node_ids():
            for direction in Direction:
                assert set(sg.edges_of(node_id, direction)) == \
                    set(g.edges_of(node_id, direction))
                assert sg.degree(node_id, direction) == \
                    g.degree(node_id, direction)

    def test_type_filtered_adjacency(self, opened):
        g, sg = opened
        assert set(sg.edges_of(1, Direction.OUT, ("calls",))) == \
            set(g.edges_of(1, Direction.OUT, ("calls",)))
        assert list(sg.edges_of(1, Direction.OUT, ("nonexistent",))) == []

    def test_index_queries_match(self, opened):
        g, sg = opened
        for query in ("short_name: main", "short_name: ba*",
                      "type: function AND variadic: true"):
            assert list(sg.indexes.query(query)) == \
                list(g.indexes.query(query))

    def test_label_scan_matches(self, opened):
        g, sg = opened
        assert list(sg.nodes_with_label("function")) == \
            sorted(g.nodes_with_label("function"))

    def test_holes_after_removal(self, tmp_path, sample_graph):
        sample_graph.remove_node(2)  # leaves a hole at id 2
        directory = str(tmp_path / "holey")
        GraphStore.write(sample_graph, directory)
        with GraphStore.open(directory) as sg:
            assert not sg.has_node(2)
            assert sorted(sg.node_ids()) == sorted(sample_graph.node_ids())
            with pytest.raises(NodeNotFoundError):
                sg.node_labels(2)

    def test_missing_edge_raises(self, opened):
        _, sg = opened
        with pytest.raises(EdgeNotFoundError):
            sg.edge_type(999)

    def test_evict_caches_preserves_answers(self, opened):
        g, sg = opened
        before = sg.node_properties(1)
        sg.evict_caches()
        assert sg.page_cache.resident_pages == 0
        assert sg.node_properties(1) == before

    def test_cold_reads_miss_then_hit(self, opened):
        _, sg = opened
        sg.evict_caches()
        sg.page_cache.stats.reset()
        sg.node_properties(1)
        cold_misses = sg.page_cache.stats.misses
        assert cold_misses > 0
        sg.page_cache.stats.reset()
        sg.node_properties(1)  # object cache absorbs it entirely
        assert sg.page_cache.stats.misses == 0


class TestLazyCsrAdjacency:
    """ISSUE 8: ``enable_csr`` promotes the CSR snapshot to the
    default adjacency read format, built lazily per node — batch
    queries get snapshot-speed warm adjacency without the eager
    O(E) scan on cold stores."""

    def test_answers_unchanged(self, opened):
        g, sg = opened
        sg.enable_csr()
        for node_id in g.node_ids():
            for direction in Direction:
                assert set(sg.edges_of(node_id, direction)) == \
                    set(g.edges_of(node_id, direction))
                assert sg.degree(node_id, direction) == \
                    g.degree(node_id, direction)

    def test_lazy_build_is_incremental_and_sticky(self, opened):
        _, sg = opened
        sg.evict_caches()
        sg.enable_csr()
        assert sg._csr == {} and not sg._csr_complete
        list(sg.edges_of(1, Direction.OUT))
        assert list(sg._csr) == [1]  # only the touched node decoded
        faults = sg._fault_counter.value
        list(sg.edges_of(1, Direction.OUT))
        assert sg._fault_counter.value == faults  # no re-decode

    def test_enable_is_idempotent_and_keeps_eager_snapshot(self,
                                                           opened):
        _, sg = opened
        sg.snapshot_adjacency()
        eager = sg._csr
        assert sg._csr_complete
        sg.enable_csr()  # must not demote the complete snapshot
        assert sg._csr is eager and sg._csr_complete

    def test_evict_keeps_lazy_mode_but_drops_entries(self, opened):
        _, sg = opened
        sg.enable_csr()
        list(sg.edges_of(1, Direction.OUT))
        sg.evict_caches()
        # still enabled (the engine re-enables per query anyway) but
        # cold: entries rebuild on access
        assert sg._csr == {} and not sg._csr_complete
        assert set(sg.edges_of(1, Direction.OUT)) != set() or True
        assert 1 in sg._csr

    def test_evict_drops_eager_snapshot_entirely(self, opened):
        _, sg = opened
        sg.snapshot_adjacency()
        sg.evict_caches()
        assert sg._csr is None and not sg._csr_complete

    def test_dead_node_still_raises(self, tmp_path, sample_graph):
        sample_graph.remove_node(2)
        directory = str(tmp_path / "csr-holes")
        GraphStore.write(sample_graph, directory)
        with GraphStore.open(directory) as sg:
            sg.enable_csr()
            with pytest.raises(NodeNotFoundError):
                list(sg.edges_of(2, Direction.OUT))


class TestStoreValidation:
    def test_open_missing_directory(self, tmp_path):
        with pytest.raises(StoreError):
            GraphStore.open(str(tmp_path / "nothere"))

    def test_bad_magic(self, tmp_path, sample_graph):
        directory = str(tmp_path / "bad")
        GraphStore.write(sample_graph, directory)
        meta = os.path.join(directory, store_mod.METADATA_FILE)
        with open(meta, "w", encoding="utf-8") as handle:
            handle.write('{"magic": "nope", "version": 2}')
        with pytest.raises(StoreFormatError):
            GraphStore.open(directory)

    def test_bad_version(self, tmp_path, sample_graph):
        directory = str(tmp_path / "badv")
        GraphStore.write(sample_graph, directory)
        meta = os.path.join(directory, store_mod.METADATA_FILE)
        with open(meta, "w", encoding="utf-8") as handle:
            handle.write(
                f'{{"magic": "{store_mod.MAGIC}", "version": 99}}')
        with pytest.raises(StoreFormatError):
            GraphStore.open(directory)


class TestSizeBreakdown:
    def test_categories_present(self, tmp_path, sample_graph):
        directory = str(tmp_path / "sz")
        sizes = GraphStore.write(sample_graph, directory)
        for category in ("nodes", "relationships", "properties", "indexes",
                         "total"):
            assert sizes[category] > 0
        assert sizes["total"] >= sum(
            sizes[c] for c in ("nodes", "relationships", "properties",
                               "indexes"))

    def test_node_store_size_is_record_multiple(self, tmp_path,
                                                 sample_graph):
        directory = str(tmp_path / "sz2")
        sizes = GraphStore.write(sample_graph, directory)
        assert sizes["nodes"] == (sample_graph.node_count()
                                  * records.NODE_RECORD_SIZE)


class TestSpecialValues:
    def test_unicode_and_big_values(self, tmp_path):
        g = PropertyGraph()
        node = g.add_node(short_name="naïve_β",
                          big=2 ** 80, negative_big=-(2 ** 80),
                          pi=3.14159, flag=False, empty="")
        directory = str(tmp_path / "special")
        GraphStore.write(g, directory)
        with GraphStore.open(directory) as sg:
            properties = sg.node_properties(node)
        assert properties == g.node_properties(node)
        assert properties["big"] == 2 ** 80
        assert properties["flag"] is False

    def test_string_interning_shares_storage(self, tmp_path):
        g1 = PropertyGraph()
        for _ in range(100):
            g1.add_node(short_name="same_string_every_time")
        g2 = PropertyGraph()
        for index in range(100):
            g2.add_node(short_name=f"unique_string_number_{index:04}")
        d1, d2 = str(tmp_path / "a"), str(tmp_path / "b")
        s1 = GraphStore.write(g1, d1)
        s2 = GraphStore.write(g2, d2)
        string_file_1 = os.path.getsize(
            os.path.join(d1, store_mod.STRING_FILE))
        string_file_2 = os.path.getsize(
            os.path.join(d2, store_mod.STRING_FILE))
        assert string_file_1 < string_file_2
