"""Reachability, shortest paths, components."""

import pytest

from repro.graphdb import Direction, PropertyGraph
from repro.graphdb import algo


@pytest.fixture
def chain_with_branch():
    r"""0 -> 1 -> 2 -> 3, plus 1 -> 4, and isolated 5."""
    g = PropertyGraph()
    nodes = [g.add_node() for _ in range(6)]
    g.add_edge(nodes[0], nodes[1], "calls")
    g.add_edge(nodes[1], nodes[2], "calls")
    g.add_edge(nodes[2], nodes[3], "calls")
    g.add_edge(nodes[1], nodes[4], "calls")
    return g, nodes


class TestReachableNodes:
    def test_forward_closure(self, chain_with_branch):
        g, n = chain_with_branch
        assert algo.reachable_nodes(g, n[0], ("calls",)) == \
            {n[1], n[2], n[3], n[4]}

    def test_backward_closure(self, chain_with_branch):
        g, n = chain_with_branch
        assert algo.reachable_nodes(g, n[3], ("calls",), Direction.IN) == \
            {n[0], n[1], n[2]}

    def test_include_start(self, chain_with_branch):
        g, n = chain_with_branch
        closure = algo.reachable_nodes(g, n[0], ("calls",),
                                       include_start=True)
        assert n[0] in closure

    def test_max_depth(self, chain_with_branch):
        g, n = chain_with_branch
        assert algo.reachable_nodes(g, n[0], ("calls",), max_depth=2) == \
            {n[1], n[2], n[4]}

    def test_isolated_node(self, chain_with_branch):
        g, n = chain_with_branch
        assert algo.reachable_nodes(g, n[5], ("calls",)) == set()

    def test_type_filter_respected(self, chain_with_branch):
        g, n = chain_with_branch
        g.add_edge(n[0], n[5], "includes")
        assert n[5] not in algo.reachable_nodes(g, n[0], ("calls",))
        assert n[5] in algo.reachable_nodes(g, n[0], None)

    def test_cycle_terminates(self):
        g = PropertyGraph()
        a, b = g.add_node(), g.add_node()
        g.add_edge(a, b, "calls")
        g.add_edge(b, a, "calls")
        assert algo.reachable_nodes(g, a, ("calls",)) == {b}
        assert algo.reachable_nodes(g, a, ("calls",),
                                    include_start=True) == {a, b}


class TestIsReachable:
    def test_positive(self, chain_with_branch):
        g, n = chain_with_branch
        assert algo.is_reachable(g, n[0], n[3], ("calls",))

    def test_negative(self, chain_with_branch):
        g, n = chain_with_branch
        assert not algo.is_reachable(g, n[3], n[0], ("calls",))

    def test_self(self, chain_with_branch):
        g, n = chain_with_branch
        assert algo.is_reachable(g, n[0], n[0])

    def test_depth_limited(self, chain_with_branch):
        g, n = chain_with_branch
        assert not algo.is_reachable(g, n[0], n[3], ("calls",), max_depth=2)
        assert algo.is_reachable(g, n[0], n[3], ("calls",), max_depth=3)


class TestShortestPath:
    def test_direct_chain(self, chain_with_branch):
        g, n = chain_with_branch
        assert algo.shortest_path(g, n[0], n[3], ("calls",)) == \
            [n[0], n[1], n[2], n[3]]

    def test_prefers_shorter_route(self):
        g = PropertyGraph()
        nodes = [g.add_node() for _ in range(5)]
        # long route 0-1-2-3 and short route 0-4-3
        g.add_edge(nodes[0], nodes[1], "calls")
        g.add_edge(nodes[1], nodes[2], "calls")
        g.add_edge(nodes[2], nodes[3], "calls")
        g.add_edge(nodes[0], nodes[4], "calls")
        g.add_edge(nodes[4], nodes[3], "calls")
        assert algo.shortest_path(g, nodes[0], nodes[3], ("calls",)) == \
            [nodes[0], nodes[4], nodes[3]]

    def test_unreachable_returns_none(self, chain_with_branch):
        g, n = chain_with_branch
        assert algo.shortest_path(g, n[0], n[5], ("calls",)) is None

    def test_same_node(self, chain_with_branch):
        g, n = chain_with_branch
        assert algo.shortest_path(g, n[2], n[2]) == [n[2]]

    def test_respects_direction(self, chain_with_branch):
        g, n = chain_with_branch
        assert algo.shortest_path(g, n[3], n[0], ("calls",)) is None
        assert algo.shortest_path(g, n[3], n[0], ("calls",),
                                  Direction.IN) == [n[3], n[2], n[1], n[0]]


class TestAllPaths:
    def test_enumerates_both_routes(self):
        g = PropertyGraph()
        a, b, c, d = (g.add_node() for _ in range(4))
        g.add_edge(a, b, "calls")
        g.add_edge(b, d, "calls")
        g.add_edge(a, c, "calls")
        g.add_edge(c, d, "calls")
        paths = sorted(algo.all_paths(g, a, d, ("calls",)))
        assert paths == [[a, b, d], [a, c, d]]

    def test_limit(self):
        g = PropertyGraph()
        a, d = g.add_node(), g.add_node()
        middles = [g.add_node() for _ in range(5)]
        for middle in middles:
            g.add_edge(a, middle, "calls")
            g.add_edge(middle, d, "calls")
        assert len(list(algo.all_paths(g, a, d, limit=2))) == 2

    def test_max_depth(self, chain_with_branch):
        g, n = chain_with_branch
        assert list(algo.all_paths(g, n[0], n[3], ("calls",),
                                   max_depth=2)) == []


class TestComponents:
    def test_two_components(self, chain_with_branch):
        g, n = chain_with_branch
        components = algo.weakly_connected_components(g)
        sizes = sorted(len(component) for component in components)
        assert sizes == [1, 5]

    def test_empty_graph(self):
        assert algo.weakly_connected_components(PropertyGraph()) == []
