"""Graph metrics (Table 3 / Figure 7 machinery)."""

import math

import pytest

from repro.graphdb import Direction, PropertyGraph
from repro.graphdb import stats


@pytest.fixture
def star_graph():
    """Hub node 0 with 10 spokes."""
    g = PropertyGraph()
    hub = g.add_node(short_name="int")
    for index in range(10):
        spoke = g.add_node(short_name=f"f{index}")
        g.add_edge(spoke, hub, "isa_type")
    return g, hub


class TestGraphMetrics:
    def test_counts(self, star_graph):
        g, _ = star_graph
        metrics = stats.graph_metrics(g)
        assert metrics.node_count == 11
        assert metrics.edge_count == 10

    def test_density(self, star_graph):
        g, _ = star_graph
        metrics = stats.graph_metrics(g)
        assert metrics.density == pytest.approx(10 / (11 * 10))

    def test_edge_node_ratio(self, star_graph):
        g, _ = star_graph
        assert stats.graph_metrics(g).edge_node_ratio == \
            pytest.approx(10 / 11)

    def test_empty_graph(self):
        metrics = stats.graph_metrics(PropertyGraph())
        assert metrics.node_count == 0
        assert metrics.density == 0.0
        assert metrics.edge_node_ratio == 0.0


class TestDegreeDistribution:
    def test_star_distribution(self, star_graph):
        g, _ = star_graph
        distribution = stats.degree_distribution(g)
        assert distribution == {10: 1, 1: 10}

    def test_directional(self, star_graph):
        g, _ = star_graph
        assert stats.degree_distribution(g, Direction.OUT) == {0: 1, 1: 10}
        assert stats.degree_distribution(g, Direction.IN) == {10: 1, 0: 10}

    def test_top_degree_nodes(self, star_graph):
        g, hub = star_graph
        top = stats.top_degree_nodes(g, limit=1)
        assert top == [(hub, 10)]

    def test_top_degree_limit(self, star_graph):
        g, _ = star_graph
        assert len(stats.top_degree_nodes(g, limit=3)) == 3


class TestPowerlawAlpha:
    def test_known_powerlaw_recovered(self):
        # p(d) ~ d^-2.5 over degrees 1..1000
        alpha_true = 2.5
        distribution = {}
        for degree in range(1, 1000):
            count = round(1e7 * degree ** -alpha_true)
            if count:
                distribution[degree] = count
        estimate = stats.powerlaw_alpha(distribution, degree_min=5)
        assert abs(estimate - alpha_true) < 0.1

    def test_empty_distribution_nan(self):
        assert math.isnan(stats.powerlaw_alpha({}))

    def test_ignores_below_min(self):
        distribution = {0: 100, 5: 10, 50: 1}
        estimate = stats.powerlaw_alpha(distribution, degree_min=5)
        assert estimate > 1.0


class TestLogBinnedHistogram:
    def test_bins_cover_all_nodes(self):
        distribution = {1: 5, 2: 3, 10: 2, 100: 1, 0: 4}
        rows = stats.log_binned_histogram(distribution)
        assert sum(count for _, _, count in rows) == 15

    def test_bins_are_increasing(self):
        rows = stats.log_binned_histogram({1: 1, 1000: 1})
        edges = [low for low, _, _ in rows]
        assert edges == sorted(edges)

    def test_empty(self):
        assert stats.log_binned_histogram({}) == []
