"""In-memory property graph behaviour."""

import pytest

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graphdb import Direction, PropertyGraph
from repro.graphdb.view import neighbors, other_end


@pytest.fixture
def small_graph():
    g = PropertyGraph()
    a = g.add_node("function", short_name="main")
    b = g.add_node("function", short_name="bar")
    c = g.add_node("global", short_name="counter")
    e1 = g.add_edge(a, b, "calls", use_start_line=10)
    e2 = g.add_edge(b, c, "writes")
    e3 = g.add_edge(a, c, "reads")
    return g, (a, b, c), (e1, e2, e3)


class TestNodes:
    def test_ids_are_dense_and_increasing(self):
        g = PropertyGraph()
        assert [g.add_node() for _ in range(3)] == [0, 1, 2]

    def test_labels(self, small_graph):
        g, (a, _, c), _ = small_graph
        assert g.node_labels(a) == frozenset({"function"})
        assert g.node_labels(c) == frozenset({"global"})

    def test_add_remove_label(self, small_graph):
        g, (a, _, _), _ = small_graph
        g.add_label(a, "symbol")
        assert "symbol" in g.node_labels(a)
        assert a in set(g.nodes_with_label("symbol"))
        g.remove_label(a, "symbol")
        assert a not in set(g.nodes_with_label("symbol"))

    def test_properties_copy_semantics(self, small_graph):
        g, (a, _, _), _ = small_graph
        snapshot = g.node_properties(a)
        snapshot["short_name"] = "changed"
        assert g.node_property(a, "short_name") == "main"

    def test_set_and_remove_property(self, small_graph):
        g, (a, _, _), _ = small_graph
        g.set_node_property(a, "variadic", True)
        assert g.node_property(a, "variadic") is True
        g.remove_node_property(a, "variadic")
        assert g.node_property(a, "variadic") is None

    def test_property_update_reindexed(self, small_graph):
        g, (a, _, _), _ = small_graph
        g.set_node_property(a, "short_name", "renamed")
        assert list(g.indexes.lookup("short_name", "main")) == []
        assert list(g.indexes.lookup("short_name", "renamed")) == [a]

    def test_remove_node_removes_incident_edges(self, small_graph):
        g, (a, b, c), (e1, e2, e3) = small_graph
        g.remove_node(c)
        assert not g.has_edge(e2)
        assert not g.has_edge(e3)
        assert g.has_edge(e1)
        assert g.node_count() == 2
        assert g.edge_count() == 1

    def test_removed_node_raises(self, small_graph):
        g, (a, _, _), _ = small_graph
        g.remove_node(a)
        with pytest.raises(NodeNotFoundError):
            g.node_labels(a)
        with pytest.raises(NodeNotFoundError):
            g.add_edge(a, a, "calls")

    def test_duplicate_property_spec_rejected(self):
        g = PropertyGraph()
        with pytest.raises(GraphError):
            g.add_node(properties={"x": 1}, x=2)


class TestEdges:
    def test_endpoints_and_type(self, small_graph):
        g, (a, b, _), (e1, _, _) = small_graph
        assert g.edge_source(e1) == a
        assert g.edge_target(e1) == b
        assert g.edge_type(e1) == "calls"

    def test_empty_type_rejected(self, small_graph):
        g, (a, b, _), _ = small_graph
        with pytest.raises(GraphError):
            g.add_edge(a, b, "")

    def test_multi_edges_allowed(self, small_graph):
        g, (a, b, _), _ = small_graph
        g.add_edge(a, b, "calls", use_start_line=20)
        assert g.degree(a, Direction.OUT, ("calls",)) == 2

    def test_self_loop(self):
        g = PropertyGraph()
        a = g.add_node()
        e = g.add_edge(a, a, "recurses")
        assert g.degree(a) == 2  # self-loop counted once per direction
        assert other_end(g, e, a) == a

    def test_remove_edge(self, small_graph):
        g, (a, b, _), (e1, _, _) = small_graph
        g.remove_edge(e1)
        assert not g.has_edge(e1)
        assert g.degree(a, Direction.OUT) == 1  # only the 'reads' edge
        with pytest.raises(EdgeNotFoundError):
            g.edge_type(e1)

    def test_edge_property_roundtrip(self, small_graph):
        g, _, (e1, _, _) = small_graph
        assert g.edge_property(e1, "use_start_line") == 10
        g.set_edge_property(e1, "qualifiers", "*c")
        assert g.edge_property(e1, "qualifiers") == "*c"
        g.remove_edge_property(e1, "qualifiers")
        assert g.edge_property(e1, "qualifiers") is None


class TestAdjacency:
    def test_direction_filters(self, small_graph):
        g, (a, b, c), (e1, e2, e3) = small_graph
        assert set(g.edges_of(a, Direction.OUT)) == {e1, e3}
        assert set(g.edges_of(a, Direction.IN)) == set()
        assert set(g.edges_of(c, Direction.IN)) == {e2, e3}
        assert set(g.edges_of(b, Direction.BOTH)) == {e1, e2}

    def test_type_filters(self, small_graph):
        g, (a, _, _), (e1, _, e3) = small_graph
        assert list(g.edges_of(a, Direction.OUT, ("calls",))) == [e1]
        assert set(g.edges_of(a, Direction.OUT, ("calls", "reads"))) == \
            {e1, e3}
        assert list(g.edges_of(a, Direction.OUT, ("writes",))) == []

    def test_degree_matches_edges_of(self, small_graph):
        g, nodes, _ = small_graph
        for node in nodes:
            for direction in Direction:
                assert g.degree(node, direction) == \
                    len(list(g.edges_of(node, direction)))

    def test_neighbors_helper(self, small_graph):
        g, (a, b, c), _ = small_graph
        assert set(neighbors(g, a, Direction.OUT)) == {b, c}


class TestHandles:
    def test_node_handle(self, small_graph):
        g, (a, _, _), _ = small_graph
        handle = g.node(a)
        assert handle["short_name"] == "main"
        assert handle.get("missing", 7) == 7
        with pytest.raises(KeyError):
            handle["missing"]
        assert handle == g.node(a)
        assert repr(handle)

    def test_edge_handle(self, small_graph):
        g, (a, b, _), (e1, _, _) = small_graph
        handle = g.edge(e1)
        assert (handle.source, handle.target, handle.type) == (a, b, "calls")
        assert handle.get("use_start_line") == 10


def test_find_nodes_scan(small_graph):
    g, (_, b, _), _ = small_graph
    assert list(g.find_nodes(short_name="bar")) == [b]
    assert list(g.find_nodes(short_name="bar", missing=1)) == []


def test_len_and_repr(small_graph):
    g, _, _ = small_graph
    assert len(g) == 3
    assert "nodes=3" in repr(g)
