"""Compiled CSR adjacency + dictionary pages (store format 3).

The compiled layer is *derived* data: everything here checks the two
invariants that make it safe to ship — (1) answers through the CSR
fast path are identical to the record-decode path, byte for byte, and
(2) any damage to the compiled files silently falls back to records
(never wrong answers) and is repairable by ``compact``.
"""

import json
import os

import pytest

from repro.core.config import StoreConfig
from repro.core.frappe import Frappe
from repro.errors import (EdgeNotFoundError, NodeNotFoundError,
                          StoreFormatError)
from repro.graphdb import Direction, PropertyGraph
from repro.graphdb.storage import (GraphStore, PageCache, compact_store,
                                   records)
from repro.graphdb.storage import csr as csr_mod
from repro.graphdb.storage import store as store_mod


@pytest.fixture
def sample_graph():
    g = PropertyGraph()
    f = g.add_node("file", short_name="main.c", type="file")
    m = g.add_node("function", "symbol", short_name="main",
                   type="function")
    b = g.add_node("function", "symbol", short_name="bar",
                   type="function")
    v = g.add_node("global", short_name="counter", type="global")
    g.add_edge(f, m, "file_contains")
    g.add_edge(f, b, "file_contains")
    g.add_edge(m, b, "calls", use_start_line=7)
    g.add_edge(m, v, "writes")
    g.add_edge(b, v, "reads")
    g.add_edge(b, b, "calls")  # self-loop: endpoint memo edge case
    return g


@pytest.fixture
def store_dir(tmp_path, sample_graph):
    directory = str(tmp_path / "store")
    GraphStore.write(sample_graph, directory)
    return directory


# --------------------------------------------------------------------------
# Codecs
# --------------------------------------------------------------------------

class TestPairRunCodec:
    @pytest.mark.parametrize("pairs", [
        [(0, 0)],
        [(5, 2)],                          # count == 1 fast path
        [(3, 9), (7, 1), (8, 1)],          # non-monotonic neighbors
        [(10, 10)],                        # self-loop shape
        [(2 ** 40, 2 ** 35), (2 ** 40 + 1, 0)],  # wide varints
    ])
    def test_roundtrip(self, pairs):
        blob = records.encode_pair_run(pairs)
        decoded, consumed = records.decode_pair_run(blob)
        assert decoded == pairs
        assert consumed == len(blob)

    def test_order_preserved(self):
        pairs = [(9, 3), (1, 7), (4, 4)]
        decoded, _ = records.decode_pair_run(records.encode_pair_run(pairs))
        assert decoded == pairs  # NOT sorted: group order is the contract

    def test_memoryview_input(self):
        pairs = [(3, 1), (5, 2)]
        blob = memoryview(records.encode_pair_run(pairs))
        assert records.decode_pair_run(blob)[0] == pairs

    def test_truncated_raises(self):
        blob = records.encode_pair_run([(300, 4000)])
        with pytest.raises(StoreFormatError):
            records.decode_pair_run(blob[:-1])


class TestDictionaryCodec:
    def test_roundtrip(self):
        values = ["calls", "short_name", "", "fünction", "x" * 500]
        page = records.encode_dictionary(values)
        assert records.decode_dictionary(page) == values
        assert records.decode_dictionary_count(page) == len(values)
        for index, value in enumerate(values):
            assert records.decode_dictionary_entry(page, index) == value

    def test_empty(self):
        page = records.encode_dictionary([])
        assert records.decode_dictionary(page) == []

    def test_corrupt_raises(self):
        page = bytearray(records.encode_dictionary(["a", "b"]))
        page[4:8] = (0xFF).to_bytes(4, "little") * 1  # offsets garbage
        with pytest.raises(StoreFormatError):
            records.decode_dictionary(bytes(page))


# --------------------------------------------------------------------------
# Builder / reader round trip
# --------------------------------------------------------------------------

class TestCsrRoundTrip:
    def test_groups_match_record_adjacency(self, sample_graph, store_dir):
        with GraphStore.open(store_dir) as sg:
            reader = sg._csr_reader
            assert reader is not None
            for node_id in sample_graph.node_ids():
                out_groups, in_groups = sg._decode_adjacency_groups(node_id)
                compiled_out = [
                    (token, tuple(e for e, _n in pairs))
                    for token, pairs in reader.groups(node_id, csr_mod.OUT)]
                compiled_in = [
                    (token, tuple(e for e, _n in pairs))
                    for token, pairs in reader.groups(node_id, csr_mod.IN)]
                assert compiled_out == list(out_groups)
                assert compiled_in == list(in_groups)

    def test_neighbors_carry_correct_endpoints(self, sample_graph,
                                               store_dir):
        with GraphStore.open(store_dir) as compiled, \
                GraphStore.open(store_dir,
                                use_compiled_csr=False) as fallback:
            for node_id in sample_graph.node_ids():
                for direction in (Direction.OUT, Direction.IN,
                                  Direction.BOTH):
                    assert compiled.neighbors_of(node_id, direction) == \
                        fallback.neighbors_of(node_id, direction)

    def test_typed_edges_of_identical_to_fallback(self, store_dir):
        with GraphStore.open(store_dir) as compiled, \
                GraphStore.open(store_dir,
                                use_compiled_csr=False) as fallback:
            assert compiled._csr_reader is not None
            assert fallback._csr_reader is None
            for node_id in compiled.node_ids():
                for types in (("calls",), ("calls", "reads"),
                              ("no_such_type",), None):
                    for direction in Direction:
                        assert list(compiled.edges_of(
                            node_id, direction, types)) == \
                            list(fallback.edges_of(
                                node_id, direction, types))

    def test_degree_typed(self, sample_graph, store_dir):
        with GraphStore.open(store_dir) as sg:
            for node_id in sample_graph.node_ids():
                assert sg.degree(node_id, Direction.OUT, ("calls",)) == \
                    sample_graph.degree(node_id, Direction.OUT, ("calls",))

    def test_dead_node_raises_on_typed_path(self, tmp_path, sample_graph):
        sample_graph.remove_node(2)
        directory = str(tmp_path / "holes")
        GraphStore.write(sample_graph, directory)
        with GraphStore.open(directory) as sg:
            assert sg._csr_reader is not None
            with pytest.raises(NodeNotFoundError):
                list(sg.edges_of(2, Direction.OUT, ("calls",)))
            with pytest.raises(NodeNotFoundError):
                sg.neighbors_of(2, Direction.BOTH)

    def test_mmap_mode_serves_zero_copy(self, sample_graph, store_dir):
        with GraphStore.open(store_dir,
                             page_cache=PageCache(mode="mmap")) as mapped, \
                GraphStore.open(store_dir,
                                use_compiled_csr=False) as fallback:
            assert mapped._csr_reader is not None
            for node_id in sample_graph.node_ids():
                assert mapped.neighbors_of(node_id, Direction.BOTH) == \
                    fallback.neighbors_of(node_id, Direction.BOTH)
            assert mapped._csr_reader._buffer is not None  # whole-file view


class TestEndpointMemo:
    def test_memo_agrees_with_rel_records(self, sample_graph, store_dir):
        with GraphStore.open(store_dir) as sg:
            # warm the memo through the compiled typed path
            for node_id in sample_graph.node_ids():
                sg.neighbors_of(node_id, Direction.BOTH)
            assert sg._endpoint_memo
            for edge_id in sample_graph.edge_ids():
                assert sg.edge_source(edge_id) == \
                    sample_graph.edge_source(edge_id)
                assert sg.edge_target(edge_id) == \
                    sample_graph.edge_target(edge_id)
                assert sg.edge_type(edge_id) == \
                    sample_graph.edge_type(edge_id)

    def test_dead_edge_still_raises(self, store_dir):
        with GraphStore.open(store_dir) as sg:
            with pytest.raises(EdgeNotFoundError):
                sg.edge_source(10 ** 6)


# --------------------------------------------------------------------------
# Format versioning and fallback
# --------------------------------------------------------------------------

class TestFormatV3:
    def test_compiled_store_is_v3_with_all_files(self, store_dir):
        with open(os.path.join(store_dir, "metadata.json")) as handle:
            metadata = json.load(handle)
        assert metadata["version"] == store_mod.FORMAT_VERSION == 3
        assert "csr" in metadata and metadata["csr"]["segments"]
        for name in (store_mod.CSR_FILE, store_mod.CSR_OFFSETS_FILE,
                     store_mod.DICT_FILE):
            assert os.path.exists(os.path.join(store_dir, name))

    def test_legacy_write_is_v2_without_compiled_files(self, tmp_path,
                                                       sample_graph):
        directory = str(tmp_path / "legacy")
        GraphStore.write(sample_graph, directory, compiled=False)
        with open(os.path.join(directory, "metadata.json")) as handle:
            metadata = json.load(handle)
        assert metadata["version"] == 2
        assert "csr" not in metadata
        for name in (store_mod.CSR_FILE, store_mod.CSR_OFFSETS_FILE,
                     store_mod.DICT_FILE):
            assert not os.path.exists(os.path.join(directory, name))

    def test_legacy_store_opens_with_silent_fallback(self, tmp_path,
                                                     sample_graph):
        directory = str(tmp_path / "legacy")
        GraphStore.write(sample_graph, directory, compiled=False)
        with GraphStore.open(directory) as sg:
            assert sg._csr_reader is None
            assert sg.format_version == 2
            assert set(sg.edges_of(1, Direction.BOTH)) == \
                set(sample_graph.edges_of(1, Direction.BOTH))

    def test_unknown_version_rejected(self, store_dir):
        path = os.path.join(store_dir, "metadata.json")
        with open(path) as handle:
            metadata = json.load(handle)
        metadata["version"] = 99
        with open(path, "w") as handle:
            json.dump(metadata, handle)
        with pytest.raises(StoreFormatError):
            GraphStore.open(store_dir)

    def test_damaged_csr_falls_back_silently(self, sample_graph,
                                             store_dir):
        path = os.path.join(store_dir, store_mod.CSR_FILE)
        with open(path, "r+b") as handle:
            handle.truncate(max(0, os.path.getsize(path) - 3))
        with GraphStore.open(store_dir) as sg:
            assert sg._csr_reader is None  # size mismatch -> records
            for node_id in sample_graph.node_ids():
                assert set(sg.edges_of(node_id, Direction.BOTH)) == \
                    set(sample_graph.edges_of(node_id, Direction.BOTH))

    def test_missing_csr_file_falls_back(self, store_dir):
        os.unlink(os.path.join(store_dir, store_mod.CSR_OFFSETS_FILE))
        with GraphStore.open(store_dir) as sg:
            assert sg._csr_reader is None


# --------------------------------------------------------------------------
# fsck and repair
# --------------------------------------------------------------------------

class TestVerifyAndRepair:
    def test_clean_store_verifies_with_file_breakdown(self, store_dir):
        verification = GraphStore.verify(store_dir)
        assert verification.status == "clean"
        files = verification.files
        assert files[store_mod.CSR_FILE]["category"] == "csr"
        assert files[store_mod.CSR_FILE]["records"] > 0  # edges
        assert files[store_mod.DICT_FILE]["category"] == "dictionary"
        assert files[store_mod.DICT_FILE]["records"] > 0  # entries
        assert all("bytes" in report for report in files.values())

    def test_truncated_csr_is_repairable(self, store_dir):
        path = os.path.join(store_dir, store_mod.CSR_FILE)
        with open(path, "r+b") as handle:
            handle.truncate(max(0, os.path.getsize(path) - 3))
        verification = GraphStore.verify(store_dir)
        assert verification.status == "repairable"
        assert {p.category for p in verification.problems} == {"csr"}

    def test_corrupted_csr_payload_is_repairable(self, store_dir):
        path = os.path.join(store_dir, store_mod.CSR_FILE)
        with open(path, "r+b") as handle:
            handle.seek(0)
            handle.write(b"\xFF\xFF\xFF")
        verification = GraphStore.verify(store_dir)
        assert verification.status == "repairable"
        assert {p.category for p in verification.problems} == {"csr"}

    def test_compact_repairs_damaged_csr(self, sample_graph, store_dir):
        path = os.path.join(store_dir, store_mod.CSR_FILE)
        with open(path, "r+b") as handle:
            handle.seek(0)
            handle.write(b"\xFF\xFF\xFF")
        compact_store(store_dir)
        assert GraphStore.verify(store_dir).status == "clean"
        with GraphStore.open(store_dir) as sg:
            assert sg._csr_reader is not None
            for node_id in sample_graph.node_ids():
                assert set(sg.edges_of(node_id, Direction.OUT)) == \
                    set(sample_graph.edges_of(node_id, Direction.OUT))

    def test_damaged_dictionary_is_corrupt_not_repairable(self,
                                                          store_dir):
        path = os.path.join(store_dir, store_mod.DICT_FILE)
        with open(path, "r+b") as handle:
            handle.truncate(2)
        verification = GraphStore.verify(store_dir)
        assert verification.status == "corrupt"
        assert "dictionary" in {p.category for p in verification.problems}


# --------------------------------------------------------------------------
# Compact
# --------------------------------------------------------------------------

class TestCompact:
    def test_compacts_legacy_to_v3(self, tmp_path, sample_graph):
        directory = str(tmp_path / "legacy")
        GraphStore.write(sample_graph, directory, compiled=False)
        sizes = compact_store(directory)
        assert sizes["csr"] > 0 and sizes["dictionary"] > 0
        with open(os.path.join(directory, "metadata.json")) as handle:
            assert json.load(handle)["version"] == 3
        with GraphStore.open(directory) as sg:
            assert sg._csr_reader is not None
            assert sg.node_count() == sample_graph.node_count()
            assert sg.edge_count() == sample_graph.edge_count()
            for node_id in sample_graph.node_ids():
                assert sg.node_properties(node_id) == \
                    sample_graph.node_properties(node_id)

    def test_compact_is_idempotent(self, sample_graph, store_dir):
        before = compact_store(store_dir)
        after = compact_store(store_dir)
        assert before == after
        assert GraphStore.verify(store_dir).status == "clean"


# --------------------------------------------------------------------------
# Planner degree statistics (free from the descriptor)
# --------------------------------------------------------------------------

class TestDegreeStats:
    def test_populated_from_descriptor(self, sample_graph, store_dir):
        with GraphStore.open(store_dir) as sg:
            stats = sg.statistics
            assert stats.max_degree(None, "out") >= 2  # node 1: calls+...
            assert stats.max_degree("file_contains", "out") == 2
            hist = stats.degree_histogram("calls", "out")
            assert sum(hist) > 0

    def test_populated_even_with_reader_disabled(self, store_dir):
        with GraphStore.open(store_dir, use_compiled_csr=False) as sg:
            assert sg._csr_reader is None
            assert sg.statistics.max_degree("file_contains", "out") == 2


# --------------------------------------------------------------------------
# Eviction regression (the cold-run honesty contract)
# --------------------------------------------------------------------------

class TestEvictionRegression:
    def test_facade_evict_drops_store_level_caches(self, store_dir):
        with Frappe.open(store_dir, config=StoreConfig(mmap=True)) as fr:
            fr.query("MATCH (a:function)-[:calls]->(b) RETURN count(*)")
            fr.query("MATCH (n) RETURN count(n)")  # all-ids universe
            sg = fr.view
            sg.neighbors_of(1, Direction.BOTH)
            assert sg._neighbor_pair_cache
            assert sg._endpoint_memo
            assert sg._csr_reader._views or sg._csr_reader._buffer
            fr.evict_caches()
            assert not sg._neighbor_pair_cache
            assert not sg._endpoint_memo
            assert not sg._adj_cache and not sg._rel_cache
            assert not sg._csr_reader._views
            assert sg._csr_reader._buffer is None
            assert sg._indexes._all_ids_cache is None
            assert sg._dict_values is None

    def test_cold_runs_fault_again_after_evict(self, store_dir):
        with Frappe.open(store_dir) as fr:
            query = "MATCH (a:function)-[:calls]->(b) RETURN count(*)"
            fr.query(query)
            fr.evict_caches()
            before = fr.view._fault_counter.value
            fr.query(query)
            assert fr.view._fault_counter.value > before
