"""Copy-on-write epoch snapshots of the in-memory graph."""

import pytest

from repro.errors import NodeNotFoundError
from repro.graphdb import Direction, GraphSnapshot, PropertyGraph, pin_view
from repro.graphdb.graph import clone_graph
from repro.graphdb.stats import graph_statistics_for


@pytest.fixture
def graph():
    g = PropertyGraph()
    a = g.add_node("function", short_name="a")
    b = g.add_node("function", short_name="b")
    c = g.add_node("file", short_name="c.c")
    g.add_edge(a, b, "calls", properties={"line": 3})
    g.add_edge(c, a, "contains")
    return g


class TestSnapshotBasics:
    def test_snapshot_reads_match_graph(self, graph):
        snap = graph.snapshot()
        assert snap.node_count() == graph.node_count()
        assert snap.edge_count() == graph.edge_count()
        for node_id in graph.node_ids():
            assert snap.node_labels(node_id) == graph.node_labels(node_id)
            assert snap.node_properties(node_id) == \
                graph.node_properties(node_id)
            for direction in Direction:
                assert list(snap.edges_of(node_id, direction)) == \
                    list(graph.edges_of(node_id, direction))
        for edge_id in graph.edge_ids():
            assert snap.edge_source(edge_id) == graph.edge_source(edge_id)
            assert snap.edge_type(edge_id) == graph.edge_type(edge_id)
            assert snap.edge_properties(edge_id) == \
                graph.edge_properties(edge_id)

    def test_same_epoch_same_object(self, graph):
        assert graph.snapshot() is graph.snapshot()

    def test_snapshot_of_snapshot_is_itself(self, graph):
        snap = graph.snapshot()
        assert snap.snapshot() is snap

    def test_epoch_and_statistics_pinned(self, graph):
        snap = graph.snapshot()
        assert snap.epoch == graph.statistics.epoch
        assert snap.statistics.node_count == 3
        graph.add_node("function", short_name="d")
        assert snap.statistics.node_count == 3
        assert snap.epoch < graph.statistics.epoch

    def test_missing_ids_raise(self, graph):
        snap = graph.snapshot()
        with pytest.raises(NodeNotFoundError):
            snap.node_labels(99)

    def test_pin_view(self, graph):
        assert isinstance(pin_view(graph), GraphSnapshot)

        class Plain:
            pass

        plain = Plain()
        assert pin_view(plain) is plain


class TestCopyOnWriteIsolation:
    def test_add_node_invisible(self, graph):
        snap = graph.snapshot()
        new = graph.add_node("function", short_name="late")
        assert graph.has_node(new)
        assert not snap.has_node(new)
        assert snap.node_count() == 3

    def test_remove_node_invisible(self, graph):
        snap = graph.snapshot()
        graph.remove_node(0)
        assert not graph.has_node(0)
        assert snap.has_node(0)
        assert list(snap.edges_of(0, Direction.OUT)) == [0]
        assert snap.edge_source(0) == 0

    def test_property_change_invisible(self, graph):
        snap = graph.snapshot()
        graph.set_node_property(0, "short_name", "renamed")
        graph.set_edge_property(0, "line", 99)
        assert snap.node_property(0, "short_name") == "a"
        assert snap.edge_property(0, "line") == 3

    def test_index_isolated(self, graph):
        snap = graph.snapshot()
        graph.set_node_property(0, "short_name", "renamed")
        assert list(snap.indexes.lookup("short_name", "a")) == [0]
        assert list(graph.indexes.lookup("short_name", "a")) == []
        assert list(graph.indexes.lookup("short_name", "renamed")) == [0]

    def test_label_index_isolated(self, graph):
        snap = graph.snapshot()
        graph.add_label(0, "exported")
        assert list(snap.nodes_with_label("exported")) == []
        assert list(graph.nodes_with_label("exported")) == [0]

    def test_adjacency_isolated(self, graph):
        snap = graph.snapshot()
        graph.add_edge(1, 0, "calls")
        assert snap.degree(0, Direction.IN, ("calls",)) == 0
        assert graph.degree(0, Direction.IN, ("calls",)) == 1

    def test_two_epochs_coexist(self, graph):
        first = graph.snapshot()
        graph.add_node("function", short_name="d")
        second = graph.snapshot()
        graph.add_node("function", short_name="e")
        assert first.node_count() == 3
        assert second.node_count() == 4
        assert graph.node_count() == 5
        assert first.epoch < second.epoch < graph.statistics.epoch

    def test_detach_only_pays_once(self, graph):
        snap = graph.snapshot()
        graph.add_node("function")
        labels_after_first_write = graph._node_labels
        graph.add_node("function")
        assert graph._node_labels is labels_after_first_write
        assert snap.node_count() == 3

    def test_statistics_for_snapshot_is_pinned_clone(self, graph):
        snap = graph.snapshot()
        stats = graph_statistics_for(snap)
        assert stats is snap.statistics
        graph.add_edge(0, 1, "calls")
        assert stats.edge_type_count("calls") == 1

    def test_clone_graph_accepts_snapshot(self, graph):
        snap = graph.snapshot()
        graph.remove_node(2)
        copy = clone_graph(snap)
        assert copy.node_count() == 3
        assert copy.node_property(2, "short_name") == "c.c"


class TestWriteLock:
    def test_lock_blocks_snapshot_mid_batch(self, graph):
        # holding the writer lock makes a multi-op batch atomic:
        # snapshot() from another thread must wait for the batch
        import threading

        snapshots = []
        with graph.write_lock:
            taker = threading.Thread(
                target=lambda: snapshots.append(graph.snapshot()))
            taker.start()
            graph.add_node("function", short_name="x")
            graph.add_edge(3, 0, "calls")
            taker.join(timeout=0.2)
            assert snapshots == []  # still blocked
        taker.join(timeout=5.0)
        assert snapshots[0].node_count() == 4
        assert snapshots[0].has_edge(2)
