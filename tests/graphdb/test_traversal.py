"""Traversal framework semantics (the Section 6.1 workaround)."""

import pytest

from repro.graphdb import Direction, PropertyGraph
from repro.graphdb.traversal import (Evaluation, Path, TraversalDescription,
                                     Uniqueness)


@pytest.fixture
def diamond():
    r"""a -> b, a -> c, b -> d, c -> d, d -> e (two paths a..d)."""
    g = PropertyGraph()
    a, b, c, d, e = (g.add_node(short_name=name) for name in "abcde")
    g.add_edge(a, b, "calls")
    g.add_edge(a, c, "calls")
    g.add_edge(b, d, "calls")
    g.add_edge(c, d, "calls")
    g.add_edge(d, e, "calls")
    return g, (a, b, c, d, e)


@pytest.fixture
def cycle():
    g = PropertyGraph()
    a, b, c = (g.add_node(short_name=name) for name in "abc")
    g.add_edge(a, b, "calls")
    g.add_edge(b, c, "calls")
    g.add_edge(c, a, "calls")
    return g, (a, b, c)


class TestPath:
    def test_basic_accessors(self):
        path = Path((1, 2, 3), (10, 11))
        assert path.start_node == 1
        assert path.end_node == 3
        assert path.length == 2
        assert path.last_edge == 11

    def test_single_node_path(self):
        path = Path((5,), ())
        assert path.length == 0
        assert path.last_edge is None

    def test_extend_is_persistent(self):
        path = Path((1,), ())
        longer = path.extend(9, 2)
        assert path.nodes == (1,)
        assert longer.nodes == (1, 2)
        assert longer.edges == (9,)

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            Path((1, 2), ())

    def test_equality_and_hash(self):
        assert Path((1, 2), (5,)) == Path((1, 2), (5,))
        assert hash(Path((1,), ())) == hash(Path((1,), ()))


class TestNodeGlobalTraversal:
    def test_closure_visits_each_node_once(self, diamond):
        g, (a, b, c, d, e) = diamond
        paths = list(TraversalDescription()
                     .relationships("calls", Direction.OUT)
                     .traverse(g, a))
        ends = [path.end_node for path in paths]
        assert sorted(ends) == [a, b, c, d, e]  # d reached once, not twice

    def test_cycle_terminates(self, cycle):
        g, (a, b, c) = cycle
        paths = list(TraversalDescription()
                     .relationships("calls", Direction.OUT)
                     .traverse(g, a))
        assert sorted(path.end_node for path in paths) == [a, b, c]

    def test_incoming_direction(self, diamond):
        g, (a, b, c, d, e) = diamond
        ends = {path.end_node for path in TraversalDescription()
                .relationships("calls", Direction.IN)
                .traverse(g, d)}
        assert ends == {a, b, c, d}


class TestPathUniqueness:
    def test_relationship_path_enumerates_both_routes(self, diamond):
        g, (a, b, c, d, e) = diamond
        paths = [path for path in TraversalDescription()
                 .uniqueness(Uniqueness.RELATIONSHIP_PATH)
                 .relationships("calls", Direction.OUT)
                 .traverse(g, a)
                 if path.end_node == d]
        assert len(paths) == 2  # via b and via c — Cypher's * semantics

    def test_node_path_blocks_cycles(self, cycle):
        g, (a, b, c) = cycle
        paths = list(TraversalDescription()
                     .uniqueness(Uniqueness.NODE_PATH)
                     .relationships("calls", Direction.OUT)
                     .traverse(g, a))
        assert max(path.length for path in paths) == 2

    def test_relationship_global(self, diamond):
        g, (a, _, _, d, _) = diamond
        paths = list(TraversalDescription()
                     .uniqueness(Uniqueness.RELATIONSHIP_GLOBAL)
                     .relationships("calls", Direction.OUT)
                     .traverse(g, a))
        # every edge crossed at most once overall: 5 edges -> <= 6 paths
        assert len(paths) <= 6


class TestDepthBounds:
    def test_max_depth(self, diamond):
        g, (a, b, c, d, e) = diamond
        ends = {path.end_node for path in TraversalDescription()
                .relationships("calls", Direction.OUT)
                .max_depth(1).traverse(g, a)}
        assert ends == {a, b, c}

    def test_min_depth_excludes_start(self, diamond):
        g, (a, b, c, _, _) = diamond
        ends = {path.end_node for path in TraversalDescription()
                .relationships("calls", Direction.OUT)
                .min_depth(1).max_depth(1).traverse(g, a)}
        assert ends == {b, c}


class TestEvaluators:
    def test_prune_on_property(self, diamond):
        g, (a, b, c, d, e) = diamond

        def stop_at_b(view, path):
            if view.node_property(path.end_node, "short_name") == "b":
                return Evaluation.INCLUDE_AND_PRUNE
            return Evaluation.INCLUDE_AND_CONTINUE

        ends = {path.end_node for path in TraversalDescription()
                .relationships("calls", Direction.OUT)
                .evaluator(stop_at_b).traverse(g, a)}
        # d is still reachable through c, but not through b
        assert ends == {a, b, c, d, e}

    def test_exclude_filters_output_only(self, diamond):
        g, (a, b, c, d, e) = diamond

        def exclude_start(view, path):
            if path.length == 0:
                return Evaluation.EXCLUDE_AND_CONTINUE
            return Evaluation.INCLUDE_AND_CONTINUE

        ends = [path.end_node for path in TraversalDescription()
                .relationships("calls", Direction.OUT)
                .evaluator(exclude_start).traverse(g, a)]
        assert a not in ends
        assert sorted(ends) == [b, c, d, e]


class TestOrdering:
    def test_breadth_first_order(self, diamond):
        g, (a, b, c, d, e) = diamond
        paths = list(TraversalDescription()
                     .breadth_first()
                     .relationships("calls", Direction.OUT)
                     .traverse(g, a))
        depths = [path.length for path in paths]
        assert depths == sorted(depths)

    def test_depth_first_reaches_deep_early(self, diamond):
        g, (a, b, c, d, e) = diamond
        paths = list(TraversalDescription()
                     .depth_first()
                     .relationships("calls", Direction.OUT)
                     .traverse(g, a))
        depths = [path.length for path in paths]
        assert depths != sorted(depths) or len(set(depths)) <= 2

    def test_description_is_reusable_and_immutable(self, diamond):
        g, (a, *_rest) = diamond
        base = TraversalDescription().relationships("calls", Direction.OUT)
        bounded = base.max_depth(1)
        full = list(base.traverse(g, a))
        limited = list(bounded.traverse(g, a))
        assert len(full) > len(limited)
        assert len(list(base.traverse(g, a))) == len(full)


class TestMultipleFiltersAndStarts:
    def test_union_of_relationship_rules(self):
        g = PropertyGraph()
        a, b, c = (g.add_node() for _ in range(3))
        g.add_edge(a, b, "calls")
        g.add_edge(a, c, "includes")
        description = (TraversalDescription()
                       .relationships("calls", Direction.OUT)
                       .relationships("includes", Direction.OUT))
        ends = {path.end_node for path in description.traverse(g, a)}
        assert ends == {a, b, c}

    def test_multiple_start_nodes(self, diamond):
        g, (a, b, c, d, e) = diamond
        paths = list(TraversalDescription()
                     .relationships("calls", Direction.OUT)
                     .traverse(g, b, c))
        ends = sorted(path.end_node for path in paths)
        assert ends == [b, c, d, e]
