"""Property value model validation."""

import pytest

from repro.errors import PropertyTypeError
from repro.graphdb import properties as props


class TestValidateValue:
    def test_accepts_scalars(self):
        assert props.validate_value("k", 3) == 3
        assert props.validate_value("k", 3.5) == 3.5
        assert props.validate_value("k", "x") == "x"
        assert props.validate_value("k", True) is True

    def test_accepts_homogeneous_lists(self):
        assert props.validate_value("k", [1, 2, 3]) == [1, 2, 3]
        assert props.validate_value("k", ("a", "b")) == ["a", "b"]
        assert props.validate_value("k", []) == []

    def test_rejects_none(self):
        with pytest.raises(PropertyTypeError):
            props.validate_value("k", None)

    def test_rejects_heterogeneous_list(self):
        with pytest.raises(PropertyTypeError):
            props.validate_value("k", [1, "two"])

    def test_rejects_bool_int_mix(self):
        # bool is an int subclass in Python but a distinct storage kind
        with pytest.raises(PropertyTypeError):
            props.validate_value("k", [True, 2])

    def test_rejects_nested_list(self):
        with pytest.raises(PropertyTypeError):
            props.validate_value("k", [[1], [2]])

    def test_rejects_dict(self):
        with pytest.raises(PropertyTypeError):
            props.validate_value("k", {"a": 1})


class TestValidateProperties:
    def test_empty_and_none(self):
        assert props.validate_properties(None) == {}
        assert props.validate_properties({}) == {}

    def test_returns_fresh_dict(self):
        source = {"a": 1}
        result = props.validate_properties(source)
        result["b"] = 2
        assert "b" not in source

    def test_rejects_empty_key(self):
        with pytest.raises(PropertyTypeError):
            props.validate_properties({"": 1})

    def test_rejects_non_string_key(self):
        with pytest.raises(PropertyTypeError):
            props.validate_properties({3: 1})


class TestPropertiesEqual:
    def test_equal_maps(self):
        assert props.properties_equal({"a": 1, "b": [1, 2]},
                                      {"b": [1, 2], "a": 1})

    def test_different_keys(self):
        assert not props.properties_equal({"a": 1}, {"b": 1})

    def test_list_order_significant(self):
        assert not props.properties_equal({"a": [1, 2]}, {"a": [2, 1]})

    def test_bool_not_equal_int(self):
        assert not props.properties_equal({"a": True}, {"a": 1})


class TestMergeProperties:
    def test_overlay(self):
        merged = props.merge_properties({"a": 1, "b": 2}, {"b": 3, "c": 4})
        assert merged == {"a": 1, "b": 3, "c": 4}

    def test_validates_updates(self):
        with pytest.raises(PropertyTypeError):
            props.merge_properties({}, {"x": None})


def test_estimate_value_bytes_monotone_in_string_length():
    assert (props.estimate_value_bytes("a long string here")
            > props.estimate_value_bytes("ab"))


def test_sorted_items_deterministic():
    assert list(props.sorted_items({"b": 1, "a": 2})) == [("a", 2), ("b", 1)]
