"""Strongly connected components (dependency cycles)."""


from repro.graphdb import PropertyGraph
from repro.graphdb.algo import strongly_connected_components


def graph_with(edges, n):
    g = PropertyGraph()
    for _ in range(n):
        g.add_node()
    for source, target in edges:
        g.add_edge(source, target, "calls")
    return g


class TestScc:
    def test_simple_cycle(self):
        g = graph_with([(0, 1), (1, 2), (2, 0)], 3)
        assert strongly_connected_components(g) == [[0, 1, 2]]

    def test_dag_has_no_cycles(self):
        g = graph_with([(0, 1), (1, 2), (0, 2)], 3)
        assert strongly_connected_components(g) == []

    def test_two_separate_cycles(self):
        g = graph_with([(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)], 4)
        components = sorted(strongly_connected_components(g))
        assert components == [[0, 1], [2, 3]]

    def test_self_loop_counts(self):
        g = graph_with([(0, 0), (1, 2)], 3)
        assert strongly_connected_components(g) == [[0]]

    def test_self_loop_excluded_when_asked(self):
        g = graph_with([(0, 0)], 1)
        assert strongly_connected_components(
            g, include_self_loops=False) == []

    def test_type_filter(self):
        g = PropertyGraph()
        a, b = g.add_node(), g.add_node()
        g.add_edge(a, b, "calls")
        g.add_edge(b, a, "includes")  # mixed-type cycle doesn't count
        assert strongly_connected_components(g, ("calls",)) == []
        assert strongly_connected_components(g, None) == [[a, b]]

    def test_nested_cycle_inside_larger_graph(self):
        # entry -> cycle(1,2,3) -> exit
        g = graph_with([(0, 1), (1, 2), (2, 3), (3, 1), (3, 4)], 5)
        assert strongly_connected_components(g) == [[1, 2, 3]]

    def test_deep_chain_no_recursion_error(self):
        edges = [(i, i + 1) for i in range(5000)]
        edges.append((5000, 0))  # one giant cycle
        g = graph_with(edges, 5001)
        components = strongly_connected_components(g)
        assert len(components) == 1
        assert len(components[0]) == 5001

    def test_empty_graph(self):
        assert strongly_connected_components(PropertyGraph()) == []


class TestFrappeCycles:
    def test_mutual_recursion_found(self):
        from repro.core.frappe import Frappe
        frappe = Frappe.index_sources(
            {"m.c": "int odd(int n);\n"
                    "int even(int n) { return n == 0 ? 1 : odd(n - 1); }\n"
                    "int odd(int n) { return n == 0 ? 0 : even(n - 1); }\n"
                    "int alone(int n) { return n; }\n"},
            "gcc m.c -c -o m.o")
        cycles = frappe.cycles()
        assert len(cycles) == 1
        names = {frappe.view.node_property(n, "short_name")
                 for n in cycles[0]}
        assert names == {"odd", "even"}

    def test_self_recursion_found(self):
        from repro.core.frappe import Frappe
        frappe = Frappe.index_sources(
            {"m.c": "int fact(int n) "
                    "{ return n < 2 ? 1 : n * fact(n - 1); }\n"},
            "gcc m.c -c -o m.o")
        cycles = frappe.cycles()
        assert len(cycles) == 1

    def test_include_cycles(self):
        from repro.core.frappe import Frappe
        from repro.core import model
        frappe = Frappe.index_sources(
            {"a.h": "#ifndef A_H\n#define A_H\n#include \"b.h\"\n"
                    "#endif\n",
             "b.h": "#ifndef B_H\n#define B_H\n#include \"a.h\"\n"
                    "#endif\n",
             "m.c": "#include \"a.h\"\nint x;\n"},
            "gcc m.c -c -o m.o")
        cycles = frappe.cycles((model.INCLUDES,))
        assert len(cycles) == 1
        names = {frappe.view.node_property(n, "short_name")
                 for n in cycles[0]}
        assert names == {"a.h", "b.h"}
