#!/usr/bin/env python3
"""The Figure 5 debugging session, on real extracted C code.

The paper's scenario: "the value stored in the field 'cmd' is known to
be correct at the beginning of the function 'sr_media_change' and
invalid on entering the function 'get_sectorsize'" — so only writers
of the field on call paths between those two points matter.

This example compiles a miniature SCSI driver through the full front
end (preprocessor, parser, sema, linker), then answers the question
twice: with the paper's verbatim Cypher (Figure 5) and with the typed
API, and shows they agree.

Run:  python examples/debugging_invalid_state.py
"""

from repro.core.frappe import Frappe

SOURCES = {
    "scsi.h": """
#ifndef SCSI_H
#define SCSI_H
struct packet_command {
    unsigned char cmd[12];
    int quiet;
};
struct scsi_device { int id; };
int sr_do_ioctl(struct scsi_device *dev, struct packet_command *pc);
int sr_packet(struct scsi_device *dev, struct packet_command *pc);
int get_sectorsize(struct scsi_device *dev);
int sr_media_change(struct scsi_device *dev);
int sr_reset(struct scsi_device *dev);
#endif
""",
    "sr_ioctl.c": """
#include "scsi.h"
int sr_do_ioctl(struct scsi_device *dev, struct packet_command *pc) {
    pc->cmd[0] = 0x25;      /* the write the session is hunting */
    return dev->id;
}
int sr_packet(struct scsi_device *dev, struct packet_command *pc) {
    return sr_do_ioctl(dev, pc);
}
int sr_reset(struct scsi_device *dev) {
    struct packet_command pc;
    pc.quiet = 1;           /* touches the struct but not 'cmd' */
    return dev->id;
}
""",
    "sr.c": """
#include "scsi.h"
int get_sectorsize(struct scsi_device *dev) {
    struct packet_command pc;
    return sr_do_ioctl(dev, &pc);
}
int sr_media_change(struct scsi_device *dev) {
    struct packet_command pc;
    sr_packet(dev, &pc);
    sr_reset(dev);
    if (dev->id > 0) {
        return get_sectorsize(dev);
    }
    return 0;
}
""",
}

BUILD = """
gcc sr_ioctl.c -c -o sr_ioctl.o
gcc sr.c -c -o sr.o
gcc sr_ioctl.o sr.o -o sr_mod
"""


def main() -> None:
    frappe = Frappe.index_sources(SOURCES, BUILD)
    graph = frappe.view

    print("== find-references would drown us ==")
    field = frappe.query(
        "MATCH (s:struct{short_name:'packet_command'}) -[:contains]-> "
        "(f:field{short_name:'cmd'}) RETURN id(f)").value()
    references = frappe.find_references(field)
    print(f"  packet_command.cmd has {len(references)} references "
          "overall")

    print("\n== the Figure 5 query narrows it to the call path ==")
    to_line = frappe.query(
        "MATCH (a{short_name:'sr_media_change'}) "
        "-[r:calls]-> (b{short_name:'get_sectorsize'}) "
        "RETURN r.use_start_line").value()
    cypher = f"""
START from=node:node_auto_index('short_name: sr_media_change'),
 to=node:node_auto_index('short_name: get_sectorsize'),
 b=node:node_auto_index('short_name: packet_command')
MATCH writer -[write:writes_member]-> ({{SHORT_NAME:'cmd'}}) <-[:contains]- b
WITH to, from, writer, write
MATCH direct <-[s:calls]- from -[r:calls{{use_start_line: {to_line}}}]-> to
WHERE r.use_start_line >= s.use_start_line AND direct -[:calls*]-> writer
RETURN distinct writer, write.use_start_line
"""
    result = frappe.query(cypher)
    for row in result:
        name = graph.node_property(row["writer"].id, "short_name")
        print(f"  suspect: {name} writes cmd at line "
              f"{row['write.use_start_line']}")

    print("\n== the typed API agrees ==")
    writers = frappe.writers_of_field_between(
        "sr_media_change", "get_sectorsize", "packet_command", "cmd")
    api_names = {graph.node_property(w.writer_node, "short_name")
                 for w in writers}
    cypher_names = {graph.node_property(row["writer"].id, "short_name")
                    for row in result}
    print(f"  Cypher: {sorted(cypher_names)}")
    print(f"  API:    {sorted(api_names)}")
    assert api_names == cypher_names
    print("\n(sr_reset touches the struct but never writes 'cmd', so "
          "it is correctly absent.)")


if __name__ == "__main__":
    main()
