#!/usr/bin/env python3
"""Temporal graphs: versioned storage and change-impact analysis.

Paper Section 6.3 poses evolving codebases as the open challenge.
This example evolves a synthetic kernel through several releases,
commits every release to both storage modes (isolated snapshots vs
delta chains), compares their footprint, and runs the cross-version
query isolation forgoes: "what has changed between versions and the
wider effects of those changes" (software change impact analysis).

Run:  python examples/impact_analysis.py
"""

import tempfile

from repro.build import Build
from repro.core import extract_build
from repro.lang.source import VirtualFileSystem
from repro.versioned import VersionedGraphStore, align_graph, change_impact
from repro.workloads import generate_codebase
from repro.workloads.synthc import evolve

RELEASES = 5


def extract(codebase):
    build = Build(VirtualFileSystem(codebase.files))
    build.run_script(codebase.build_script)
    return extract_build(build)


def main() -> None:
    print(f"== evolving a synthetic kernel through {RELEASES} "
          "releases ==")
    codebase = generate_codebase(subsystems=4, files_per_subsystem=3,
                                 functions_per_file=4, seed=42)
    graphs = []
    for release in range(RELEASES):
        graph = extract(codebase)
        if graphs:
            # align the re-extracted graph onto the previous release's
            # identity, so deltas reflect the true change
            graph = align_graph(graphs[-1], graph)
        graphs.append(graph)
        print(f"  v{release}: {codebase.line_count} LoC -> "
              f"{graph.node_count()} nodes, {graph.edge_count()} edges")
        codebase = evolve(codebase, change_fraction=0.1)

    with tempfile.TemporaryDirectory() as tmp:
        print("\n== committing to both storage modes ==")
        isolated = VersionedGraphStore(f"{tmp}/isolated",
                                       mode="isolated")
        delta = VersionedGraphStore(f"{tmp}/delta", mode="delta")
        for index, graph in enumerate(graphs):
            isolated.commit(graph, f"v{index}")
            delta.commit(graph, f"v{index}")
        iso_kib = isolated.total_storage_bytes() / 1024
        delta_kib = delta.total_storage_bytes() / 1024
        print(f"  isolated snapshots: {iso_kib:9.1f} KiB")
        print(f"  delta chain:        {delta_kib:9.1f} KiB "
              f"({iso_kib / max(delta_kib, 0.001):.1f}x smaller)")

        print("\n== per-version storage ==")
        for record in delta.versions():
            kind = "snapshot" if record.is_snapshot else "delta"
            print(f"  {record.version_id}: {kind:<8} "
                  f"{record.storage_bytes / 1024:8.1f} KiB")

        print("\n== cross-version change impact: v0 -> "
              f"v{RELEASES - 1} ==")
        old = delta.checkout("v0")
        new = delta.checkout(f"v{RELEASES - 1}")
        report = change_impact(old, new)
        print(f"  directly changed functions: "
              f"{len(report.changed_functions)}")
        print(f"  transitively impacted:      "
              f"{len(report.impacted_functions)}")
        print(f"  amplification:              "
              f"{report.amplification:.2f}x")
        changed_names = sorted(
            new.node_property(node, "short_name")
            for node in report.changed_functions)[:8]
        print(f"  changed (sample): {', '.join(changed_names)}")
    print("\ndone.")


if __name__ == "__main__":
    main()
