#!/usr/bin/env python3
"""Exploring a kernel-scale graph: the paper's Section 4 use cases.

Synthesizes a UEK-shaped dependency graph (default 1% of the paper's
size; pass a scale factor as argv[1]), then walks through each use
case: code search constrained by module (Figure 3), find-references,
the debugging query (Figure 5), program slicing (Figure 6), shortest
paths, and the Table 3 / Figure 7 statistics.

Run:  python examples/kernel_exploration.py [scale]
"""

import sys

from repro.core.frappe import Frappe
from repro.graphdb import stats
from repro.workloads import generate_kernel_graph
from repro.workloads.profiles import UEK_PROFILE


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    print(f"== generating a {scale:g}x UEK-shaped graph ==")
    graph = generate_kernel_graph(UEK_PROFILE.scaled(scale))
    frappe = Frappe(graph)
    metrics = frappe.metrics()
    print(f"  {metrics.node_count} nodes, {metrics.edge_count} edges "
          f"(ratio 1:{metrics.edge_node_ratio:.1f}; paper: 1:8)\n")

    print("== 4.1 code search: fields named 'id' in wakeup.elf ==")
    for node_id in frappe.search("id", node_type="field",
                                 module="wakeup.elf"):
        print(f"  {frappe.describe(node_id)['name']}")

    print("\n== 4.2 find-references: sr_do_ioctl ==")
    target = frappe.search("sr_do_ioctl", node_type="function")[0]
    for reference in frappe.find_references(target)[:5]:
        caller = graph.node_property(reference.from_node, "short_name")
        print(f"  {reference.edge_type:<14} from {caller} "
              f"(line {reference.use_start_line})")

    print("\n== 4.3 debugging: who writes packet_command.cmd on the "
          "path? ==")
    for writer in frappe.writers_of_field_between(
            "sr_media_change", "get_sectorsize", "packet_command",
            "cmd"):
        name = graph.node_property(writer.writer_node, "short_name")
        print(f"  {name} writes at line {writer.use_start_line}")

    print("\n== 4.4 comprehension: backward slice of pci_read_bases ==")
    closure = frappe.backward_slice("pci_read_bases")
    print(f"  {len(closure)} functions reachable "
          f"(sub-second, via the embedded traversal)")

    print("\n== 4.4 shortest path between two planted functions ==")
    path = frappe.path_between("sr_media_change", "sr_do_ioctl")
    if path:
        names = " -> ".join(graph.node_property(n, "short_name")
                            for n in path)
        print(f"  {names}")

    print("\n== Figure 7: the hubs ==")
    for node_id, degree in stats.top_degree_nodes(graph, 5):
        print(f"  degree {degree:>6}  "
              f"{graph.node_property(node_id, 'short_name')}")

    print("\n== macro impact: how much code does NULL touch? ==")
    impacted = frappe.macro_impact("NULL", through_calls=False)
    print(f"  {len(impacted)} entities expand or interrogate NULL")

    print("\n== architectural queries: cycles and dead code ==")
    cycles = frappe.cycles()
    print(f"  {len(cycles)} call-graph cycles (recursion groups)")
    dead = frappe.dead_code(entry_points=("start_kernel",
                                          "pci_read_bases",
                                          "sr_media_change"))
    print(f"  {len(dead)} functions neither called nor address-taken")

    print("\n== Cypher shortestPath (Section 4.4) ==")
    result = frappe.query(
        "MATCH p = shortestPath((a{short_name:'sr_media_change'}) "
        "-[:calls*]-> (b{short_name:'sr_do_ioctl'})) "
        "RETURN length(p), nodes(p)")
    if result:
        row = result.single()
        names = " -> ".join(graph.node_property(node.id, "short_name")
                            for node in row["nodes(p)"])
        print(f"  {row['length(p)']} hops: {names}")

    print("\n== EXPLAIN: why the Figure 6 query is dangerous ==")
    plan = frappe.engine.explain(
        "START n=node:node_auto_index('short_name: pci_read_bases') "
        "MATCH n -[:calls*]-> m RETURN distinct m")
    for line in plan.splitlines():
        print(f"  {line}")
    print("\ndone.")


if __name__ == "__main__":
    main()
