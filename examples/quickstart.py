#!/usr/bin/env python3
"""Quickstart: the paper's Figure 2 program, indexed and queried.

Builds the three-file example from the paper (foo.h / foo.c / main.c),
extracts its dependency graph, runs a few Cypher queries, and round-
trips the graph through an on-disk store.

Run:  python examples/quickstart.py
"""

import tempfile

from repro.core.frappe import Frappe

SOURCES = {
    "foo.h": "int bar(int);\n",
    "foo.c": '#include "foo.h"\n'
             "int bar(int input) { return input; }\n",
    "main.c": '#include "foo.h"\n'
              "int main(int argc, char **argv) { return bar(argc); }\n",
}

BUILD = """
gcc foo.c -c -o foo.o
gcc main.c foo.o -o prog
"""


def main() -> None:
    print("== indexing the Figure 2 program ==")
    frappe = Frappe.index_sources(SOURCES, BUILD)
    metrics = frappe.metrics()
    print(f"graph: {metrics.node_count} nodes, "
          f"{metrics.edge_count} edges\n")

    print("== who calls bar? ==")
    result = frappe.query(
        "MATCH caller -[:calls]-> (callee:function{short_name: 'bar'}) "
        "RETURN caller.short_name")
    for row in result:
        print(f"  {row['caller.short_name']}")

    print("\n== the argv isa_type edge the paper highlights ==")
    result = frappe.query(
        "MATCH (p:parameter{short_name: 'argv'}) -[r:isa_type]-> t "
        "RETURN t.short_name, r.qualifiers")
    row = result.single()
    print(f"  argv -isa_type{{QUALIFIERS: '{row['r.qualifiers']}'}}-> "
          f"{row['t.short_name']}")

    print("\n== how was prog built? ==")
    result = frappe.query(
        "MATCH (m:module{short_name: 'prog'}) -[r]-> x "
        "RETURN type(r) AS how, x.short_name AS what ORDER BY how")
    for row in result:
        print(f"  prog -{row['how']}-> {row['what']}")

    print("\n== save / reopen as a page-cached disk store ==")
    with tempfile.TemporaryDirectory() as tmp:
        directory = f"{tmp}/figure2.store"
        sizes = frappe.save(directory)
        print(f"  store written: {sizes['total']} bytes "
              f"(properties {sizes['properties']}, "
              f"nodes {sizes['nodes']}, "
              f"relationships {sizes['relationships']}, "
              f"indexes {sizes['indexes']})")
        with Frappe.open(directory) as reopened:
            count = reopened.query(
                "MATCH (n:function) RETURN count(*)").value()
            print(f"  reopened store sees {count} function definitions")
    print("\ndone.")


if __name__ == "__main__":
    main()
