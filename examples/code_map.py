#!/usr/bin/env python3
"""The cartographic code map with query-result overlays.

Generates a synthetic codebase, indexes it, lays out the
continent/country/state/city hierarchy as a squarified treemap,
overlays a backward slice onto it, prints an ASCII rendering, and
writes an SVG (default: code_map.svg in the working directory).

Run:  python examples/code_map.py [output.svg]
"""

import sys

from repro.codemap import build_hierarchy, layout_map, render_ascii, render_svg
from repro.codemap.render import overlay_nodes
from repro.core.frappe import Frappe
from repro.workloads import generate_codebase


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "code_map.svg"
    print("== generating and indexing a synthetic codebase ==")
    codebase = generate_codebase(subsystems=5, files_per_subsystem=3,
                                 functions_per_file=4, seed=7)
    frappe = Frappe.index_sources(codebase.files, codebase.build_script,
                                  include_paths=["include"])
    print(f"  {frappe.metrics().node_count} nodes")

    print("\n== building the map hierarchy ==")
    root = build_hierarchy(frappe.view)
    regions = sum(1 for _region in root.walk())
    print(f"  {regions} regions "
          "(continents/countries/states/cities)")

    print("\n== overlay: the backward slice of start_kernel ==")
    closure = frappe.backward_slice("start_kernel")
    highlights = overlay_nodes(frappe.view, root, closure)
    print(f"  {len(closure)} entities -> {len(highlights)} regions "
          "highlighted")

    box = layout_map(root, width=1000, height=700)
    print("\n== ASCII map (states level; '#' marks highlighted "
          "regions) ==")
    print(render_ascii(box, columns=76, rows=22, highlights=highlights))

    svg = render_svg(box, highlights=highlights,
                     title="start_kernel backward slice")
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(svg)
    print(f"\nwrote {out_path} ({len(svg)} bytes)")


if __name__ == "__main__":
    main()
